//! End-to-end smoke test for the `cnnperf serve` daemon: start it on a
//! Unix socket, run a mixed-QoS NDJSON burst that includes malformed,
//! unknown-op, and oversized frames, then SIGTERM it and require a clean
//! graceful drain.
//!
//! ```text
//! cargo build --release && cargo run --release --example serve_smoke
//! ```
//!
//! Assertions: every estimate gets a typed `ok:true` result, every bad
//! frame gets a typed `ok:false` error (the session survives), the
//! daemon exits 0 on SIGTERM with a `drained in` report, and its stderr
//! contains no panic.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The release `cnnperf` binary: `CNNPERF_BIN` overrides; by default it
/// sits two directories above this example (`target/<profile>/cnnperf`).
fn server_binary() -> PathBuf {
    if let Ok(p) = std::env::var("CNNPERF_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let bin = exe
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("cnnperf"))
        .expect("derive binary path");
    if !bin.exists() {
        eprintln!(
            "serve_smoke: {} not found — run `cargo build --release` first \
             (or set CNNPERF_BIN)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin
}

fn wait_for_socket(path: &std::path::Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(
            Instant::now() < deadline,
            "server never created {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let bin = server_binary();
    let sock = std::env::temp_dir().join(format!("cnnperf-smoke-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);

    let mut child = Command::new(&bin)
        .args([
            "serve",
            "--socket",
            sock.to_str().expect("utf8 socket path"),
            "--workers",
            "2",
            "--tiers",
            "analytical",
            "--max-frame-bytes",
            "4096",
            "--deadlines",
            "2000,10000,1000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cnnperf serve");
    // drain stderr concurrently so the daemon can never block on the pipe
    let mut stderr_pipe = child.stderr.take().expect("stderr piped");
    let stderr_thread = std::thread::spawn(move || {
        let mut buf = String::new();
        stderr_pipe.read_to_string(&mut buf).expect("read stderr");
        buf
    });
    wait_for_socket(&sock);

    let stream = UnixStream::connect(&sock).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    // the burst: 30 mixed-QoS estimates with hostile frames interleaved
    let classes = ["interactive", "batch", "best-effort"];
    let models = ["alexnet", "mobilenet"];
    let mut pending: HashSet<String> = HashSet::new();
    for i in 0..30 {
        let id = format!("req-{i}");
        let frame = format!(
            "{{\"id\":\"{id}\",\"model\":\"{}\",\"device\":\"GTX 1080 Ti\",\"qos\":\"{}\"}}\n",
            models[i % models.len()],
            classes[i % classes.len()],
        );
        writer.write_all(frame.as_bytes()).expect("write estimate");
        pending.insert(id);
        match i {
            9 => writer.write_all(b"this is not json\n").expect("malformed"),
            19 => {
                let mut junk = vec![b'x'; 8192];
                junk.push(b'\n');
                writer.write_all(&junk).expect("oversized");
            }
            29 => writer
                .write_all(b"{\"op\":\"frobnicate\",\"id\":\"weird\"}\n")
                .expect("unknown op"),
            _ => {}
        }
    }
    writer
        .write_all(b"{\"op\":\"ping\",\"id\":\"hello\"}\n")
        .expect("ping");

    let (mut malformed, mut oversized, mut unknown, mut pong) = (0, 0, 0, 0);
    let started = Instant::now();
    while !pending.is_empty() || malformed + oversized + unknown == 0 || pong == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "smoke timed out with {} estimates unanswered",
            pending.len()
        );
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response frame");
        let v = serde_json::parse(line.trim()).expect("response frame is valid JSON");
        let id = match v.get("id") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        match v.get("error") {
            Some(serde_json::Value::Str(kind)) => match kind.as_str() {
                "malformed" => malformed += 1,
                "oversized" => oversized += 1,
                "unknown-op" => unknown += 1,
                other => panic!("unexpected error frame `{other}`: {line}"),
            },
            _ => {
                if id == "hello" {
                    assert!(line.contains("pong"), "ping reply: {line}");
                    pong += 1;
                } else {
                    assert!(
                        pending.remove(&id),
                        "unexpected or duplicate result id `{id}`: {line}"
                    );
                    assert!(line.contains("\"ok\":true"), "typed result: {line}");
                }
            }
        }
    }
    assert_eq!(malformed, 1, "exactly one malformed error");
    assert_eq!(oversized, 1, "exactly one oversized error");
    assert_eq!(unknown, 1, "exactly one unknown-op error");
    println!(
        "serve_smoke: 30 estimates answered, hostile frames got typed errors, \
         session survived ({:.1} s)",
        started.elapsed().as_secs_f64()
    );

    // graceful drain on SIGTERM: exit 0, drain report, no panics
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(Instant::now() < deadline, "server did not drain on SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    let stderr = stderr_thread.join().expect("stderr thread");
    assert!(
        status.success(),
        "server exit status {status:?}; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("drained in"),
        "missing drain report in stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "server panicked; stderr:\n{stderr}"
    );
    let _ = std::fs::remove_file(&sock);
    println!("serve_smoke: SIGTERM drained cleanly, exit 0, no panics — OK");
}
