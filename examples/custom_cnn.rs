//! Build a *custom* CNN with the graph builder (not a zoo model), run the
//! full analysis pipeline on it, and predict its performance — the
//! neural-architecture-search use case from the paper's conclusion: score
//! candidate architectures on many GPUs without running any of them.
//!
//! ```text
//! cargo run --release --example custom_cnn
//! ```

use cnn_ir::{
    ActKind, Conv2d, Dense, DepthwiseConv2d, GraphBuilder, Layer, Padding, Pool2d, PoolKind,
    TensorShape,
};
use cnnperf::prelude::*;

/// A hand-rolled mobile-style architecture: stem, four depthwise-separable
/// stages with residuals, classifier.
fn build_candidate(width: u32, depth_per_stage: u32) -> cnn_ir::ModelGraph {
    let name = format!("candidate_w{width}_d{depth_per_stage}");
    let mut b = GraphBuilder::new(name, 4 * depth_per_stage + 2);
    let mut x = b.input(TensorShape::square(224, 3));

    // stem
    x = b.layer(
        Layer::Conv2d(Conv2d::new(width, 3, 2, Padding::Same).no_bias()),
        &[x],
    );
    x = b.layer(Layer::BatchNorm(Default::default()), &[x]);
    x = b.layer(Layer::Activation(ActKind::HardSwish), &[x]);

    let mut channels = width;
    for stage in 0..4u32 {
        let out_c = width << (stage + 1);
        for block in 0..depth_per_stage {
            let stride = if block == 0 { 2 } else { 1 };
            let shortcut = x;
            let mut y = b.layer(
                Layer::DepthwiseConv2d(DepthwiseConv2d::new(3, stride, Padding::Same).no_bias()),
                &[x],
            );
            y = b.layer(Layer::BatchNorm(Default::default()), &[y]);
            y = b.layer(Layer::Activation(ActKind::HardSwish), &[y]);
            y = b.layer(
                Layer::Conv2d(Conv2d::new(out_c, 1, 1, Padding::Same).no_bias()),
                &[y],
            );
            y = b.layer(Layer::BatchNorm(Default::default()), &[y]);
            if stride == 1 && channels == out_c {
                y = b.layer(Layer::Add, &[shortcut, y]);
            }
            x = y;
            channels = out_c;
        }
    }

    x = b.layer(Layer::Pool2d(Pool2d::avg(2, 2, Padding::Valid)), &[x]);
    x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    x = b.layer(Layer::Dense(Dense::new(100)), &[x]);
    x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

fn main() {
    // predictor trained on a zoo subset
    let models: Vec<_> = [
        "mobilenet",
        "MobileNetV2",
        "efficientnetb0",
        "resnet50",
        "densenet121",
        "Xception",
    ]
    .iter()
    .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
    .collect();
    let corpus = build_corpus(&models, &gpu_sim::training_devices()).expect("corpus");
    // KNN rather than the decision tree: it interpolates between training
    // points, giving the sweep a smoother score surface than piecewise-
    // constant tree leaves when all candidates are far smaller than the
    // training CNNs.
    let predictor =
        PerformancePredictor::train(&corpus.dataset, RegressorKind::KNearestNeighbors, 42);

    println!("NAS-style sweep over custom architectures:\n");
    let dev = gpu_sim::specs::tesla_t4();
    for width in [16u32, 32, 64] {
        for depth in [1u32, 2, 3] {
            let model = build_candidate(width, depth);
            let summary = cnn_ir::analyze(&model).expect("static analysis");
            let (profile, _, counts, _) = profile_model(&model).expect("dca");
            let ipc = predictor.predict(&profile, &dev);
            // predicted IPC + counted warp instructions give a latency
            // estimate without ever running the candidate:
            //   cycles = warp_instrs / (ipc * active SMs)
            let cycles = counts.warp_issues as f64 / (ipc * dev.sm_count as f64);
            let latency_ms = cycles / (dev.boost_clock_mhz as f64 * 1e3);
            println!(
                "{:18} params {:>10}  MACs {:>12}  PTX instrs {:>14}  IPC {:.3}  est. latency {:>6.2} ms",
                profile.name,
                thousands(summary.trainable_params),
                thousands(summary.macs),
                thousands(profile.ptx_instructions),
                ipc,
                latency_ms
            );
        }
    }
    println!(
        "\nNone of these candidates was ever executed — scores come from static \
         analysis + PTX slicing + the trained regressor."
    );
}
