//! Design-space exploration: pick an accelerator for an autonomous-driving
//! perception stack under a latency budget — the motivating scenario of the
//! paper's introduction.
//!
//! The estimation path analyzes each candidate CNN once and predicts across
//! the whole GPU fleet (`T_est = t_dca + n * t_pm`), instead of profiling
//! every (CNN, GPU) pair (`T_measur = t_p * n`).
//!
//! ```text
//! cargo run --release --example dse_accelerator_selection
//! ```

use cnnperf::prelude::*;

fn main() {
    // Train the predictor on the paper's corpus subset.
    let models: Vec<_> = [
        "alexnet",
        "mobilenet",
        "resnet50",
        "resnet101",
        "vgg16",
        "densenet121",
        "inceptionv3",
        "efficientnetb0",
        "efficientnetb2",
        "Xception",
    ]
    .iter()
    .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
    .collect();
    let corpus = build_corpus(&models, &gpu_sim::training_devices()).expect("corpus");
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);

    // The perception stack: a detector backbone and a lane-segmentation net.
    let candidates = ["MobileNetV2", "efficientnetb1", "resnet50v2"];
    let fleet = gpu_sim::all_devices();

    println!(
        "DSE over {} candidate CNNs x {} GPGPUs ({} design points)\n",
        candidates.len(),
        fleet.len(),
        candidates.len() * fleet.len()
    );

    let mut total_t_est = 0.0;
    for name in candidates {
        let model = cnn_ir::zoo::build(name).expect("zoo model");
        let outcome = rank_devices(&predictor, &model, &fleet).expect("dse");
        println!(
            "{name}: ranked by predicted IPC (t_dca {:.2}s, t_pm {:.3}ms)",
            outcome.t_dca,
            outcome.t_pm * 1e3
        );
        for (i, r) in outcome.ranking.iter().enumerate() {
            println!(
                "  {}. {:14} predicted IPC {:.3}",
                i + 1,
                r.device,
                r.predicted_ipc
            );
        }
        total_t_est += outcome.t_est;
        println!();
    }

    // What the naive approach would have cost for the same sweep, measured
    // on one (CNN, GPU) pair and extrapolated.
    let probe = cnn_ir::zoo::build(candidates[0]).expect("zoo model");
    let t_p = naive_profile_time(&probe, &fleet[0]).expect("profiling");
    let t_measur = t_p * (candidates.len() * fleet.len()) as f64;
    println!(
        "estimation path: {total_t_est:.1}s total;  naive profiling: ~{t_measur:.1}s  ({:.0}x speedup)",
        t_measur / total_t_est
    );
}
