//! Inspect the PTX side of the pipeline: print a generated kernel exactly
//! as the paper's Fig. 2 shows one, parse it back, build the dependency
//! graph `G = {V,E}`, and report how small the branch slice `G_v*` is —
//! the quantity that makes the dynamic code analysis fast.
//!
//! ```text
//! cargo run --release --example ptx_inspect
//! ```

use ptx_analysis::{branch_slice, slice_fraction, DepGraph};
use ptx_codegen::Template;

fn main() {
    // A Fig. 2-style elementwise kernel.
    let kernel = Template::ActRelu.build();
    println!("--- generated PTX ({}) ---", kernel.name);
    println!("{}", ptx::printer::kernel(&kernel));

    // Round-trip through the text form, like the paper's parser does.
    let mut module = ptx::Module::new("sm_61");
    module.kernels = ptx_codegen::templates::build_all();
    let text = ptx::printer::module(&module);
    let parsed = ptx::parse_module(&text).expect("parse own output");
    println!(
        "module: {} kernels, {} instructions, round-trips through text: {}",
        parsed.kernels.len(),
        parsed.total_instructions(),
        parsed.kernels.len() == module.kernels.len()
    );

    // Dependency graph + slice statistics per kernel.
    println!("\n--- dependency graph and branch slice G_v* per kernel ---");
    println!(
        "{:24} {:>7} {:>7} {:>9} {:>10}",
        "kernel", "instrs", "edges", "slice", "fraction"
    );
    for k in &module.kernels {
        let g = DepGraph::build(k);
        let slice = branch_slice(k);
        println!(
            "{:24} {:>7} {:>7} {:>9} {:>9.0}%",
            k.name,
            g.len(),
            g.num_edges(),
            slice.len(),
            100.0 * slice_fraction(k)
        );
    }
    println!(
        "\nThe dynamic code analysis only *evaluates* the slice; everything else \
         is merely counted. That is the paper's answer to why it beats \
         cycle-level simulation."
    );
}
