//! Dynamic frequency scaling and power estimation — both named as future
//! work in the paper's conclusion ("dynamic frequency scaling" and the
//! authors' companion power-estimation line of work), implemented here.
//!
//! Sweeps a GTX 1080 Ti across clock points, simulating MobileNetV2
//! inference at each, and reports the latency/power/energy trade-off.
//!
//! ```text
//! cargo run --release --example dvfs_power_sweep
//! ```

use cnnperf::prelude::*;
use gpu_sim::{estimate_power, SimMode, Simulator};

fn main() {
    let model = cnn_ir::zoo::build("MobileNetV2").expect("zoo model");
    let base = gpu_sim::specs::gtx_1080_ti();
    let plan = ptx_codegen::lower(&model, &base.sm_target()).expect("lowering");
    let counts = ptx_analysis::count_plan(&plan, true).expect("counts");

    let mut table = Table::new(
        format!("DVFS sweep: {} on {}", model.name(), base.name),
        &[
            "clock scale",
            "boost MHz",
            "latency (ms)",
            "IPC",
            "avg power (W)",
            "energy (mJ)",
            "EDP (mJ*ms)",
        ],
    );

    let mut rows: Vec<(f64, f64, f64)> = Vec::new(); // scale, latency, edp
    let mut rows_ipc = (0.0f64, 0.0f64); // first and last IPC of the sweep
    for scale in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2] {
        let dev = base.with_clock_scale(scale);
        let sim = Simulator::new(dev.clone(), SimMode::Detailed)
            .simulate_plan(&plan)
            .expect("simulation");
        let power = estimate_power(&sim, &counts, &dev);
        table.row(vec![
            format!("x{scale:.1}"),
            dev.boost_clock_mhz.to_string(),
            fixed(sim.latency_ms, 2),
            fixed(sim.ipc, 3),
            fixed(power.avg_power_w, 1),
            fixed(power.energy_mj, 1),
            fixed(power.edp, 1),
        ]);
        if rows.is_empty() {
            rows_ipc.0 = sim.ipc;
        }
        rows_ipc.1 = sim.ipc;
        rows.push((scale, sim.latency_ms, power.edp));
    }
    println!("{table}");

    let best = rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty sweep");
    let max_scale = rows.last().expect("non-empty").0;
    if best.0 < max_scale {
        println!(
            "Minimum energy-delay product at clock scale x{:.1} ({:.2} ms): \
             memory-bound phases stop rewarding higher clocks, so the EDP \
             optimum sits below the maximum frequency.",
            best.0, best.1
        );
    } else {
        println!(
            "EDP keeps improving up to x{max_scale:.1}: this workload is \
             issue/compute-bound across the sweep, so higher clocks pay for \
             themselves — note how IPC *drops* with clock ({:.3} -> {:.3}) as \
             the fixed-bandwidth DRAM costs more cycles per byte, the \
             signature of an emerging memory wall.",
            rows_ipc.0, rows_ipc.1
        );
    }
}
