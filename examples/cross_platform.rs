//! Cross-platform prediction — the capability the paper claims over
//! single-device predictors like Bouzidi et al. [13]: because the model
//! takes GPGPU architectural features as inputs, one trained predictor
//! covers devices it has *never seen*, with no retraining.
//!
//! Here: train on GTX 1080 Ti + V100S only, then predict the same CNNs on
//! a Quadro P1000 and compare against ground truth.
//!
//! ```text
//! cargo run --release --example cross_platform
//! ```

use cnnperf::prelude::*;

fn main() {
    let names = [
        "alexnet",
        "mobilenet",
        "MobileNetV2",
        "resnet50",
        "resnet101",
        "vgg16",
        "densenet121",
        "inceptionv3",
        "Xception",
        "efficientnetb0",
    ];
    let models: Vec<_> = names
        .iter()
        .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
        .collect();

    // train ONLY on the two paper GPUs
    let corpus = build_corpus(&models, &gpu_sim::training_devices()).expect("corpus");
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);

    // evaluate on an unseen device
    let unseen = gpu_sim::specs::quadro_p1000();
    println!(
        "trained on: GTX 1080 Ti, V100S — predicting on unseen device: {}\n",
        unseen.name
    );

    let mut y_true = Vec::new();
    let mut y_pred = Vec::new();
    let mut table = Table::new(
        format!("Cross-platform prediction on {}", unseen.name),
        &["CNN", "measured IPC", "predicted IPC", "APE"],
    )
    .align(0, Align::Left);
    for model in &models {
        let (profile, plan, _, _) = profile_model(model).expect("analysis");
        let truth = gpu_sim::profile(&plan, &unseen).expect("ground truth");
        let pred = predictor.predict(&profile, &unseen);
        let ape = 100.0 * ((truth.ipc - pred) / truth.ipc).abs();
        table.row(vec![
            profile.name.clone(),
            fixed(truth.ipc, 3),
            fixed(pred, 3),
            pct(ape),
        ]);
        y_true.push(truth.ipc);
        y_pred.push(pred);
    }
    println!("{table}");
    println!(
        "cross-platform MAPE: {:.2}%  (R2 {:.3})",
        mlkit::metrics::mape(&y_true, &y_pred),
        mlkit::metrics::r2(&y_true, &y_pred)
    );
    println!(
        "\nA single-device predictor (no hardware features) cannot produce these \
         numbers at all without collecting a new training set on the {}.",
        unseen.name
    );
    println!(
        "Note the honest caveat: trees do not extrapolate, so with only two \
         training devices the unseen-device error is much larger than the \
         in-distribution error — exactly why the paper's conclusion calls for \
         'a more extensive range of GPGPUs for the generation of training data sets'."
    );

    // The remedy the paper proposes: widen the training fleet. Train again
    // with six devices and re-evaluate on the still-unseen P1000.
    let mut fleet = gpu_sim::all_devices();
    fleet.retain(|d| d.name != unseen.name && d.name != "GTX 1050 Ti");
    let wide = build_corpus(&models, &fleet).expect("corpus");
    let predictor6 = PerformancePredictor::train(&wide.dataset, RegressorKind::DecisionTree, 42);
    let mut y_pred6 = Vec::new();
    for model in &models {
        let (profile, _, _, _) = profile_model(model).expect("analysis");
        y_pred6.push(predictor6.predict(&profile, &unseen));
    }
    println!(
        "\nwith 6 training devices instead of 2: cross-platform MAPE {:.2}% (R2 {:.3})",
        mlkit::metrics::mape(&y_true, &y_pred6),
        mlkit::metrics::r2(&y_true, &y_pred6)
    );
}
