//! Quickstart: predict the performance (IPC) of a CNN on a GPGPU without
//! any hardware execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cnnperf::prelude::*;

fn main() {
    // 1. Build a small training corpus: a few zoo CNNs "profiled" on the
    //    two training GPUs (GTX 1080 Ti, V100S). The full 32-model corpus
    //    is `build_paper_corpus()`; this subset keeps the example fast.
    let models: Vec<_> = [
        "alexnet",
        "mobilenet",
        "MobileNetV2",
        "resnet50",
        "vgg16",
        "densenet121",
        "inceptionv3",
        "Xception",
    ]
    .iter()
    .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
    .collect();
    let corpus = build_corpus(&models, &gpu_sim::training_devices()).expect("corpus");
    println!("corpus: {} observations", corpus.dataset.len());

    // 2. Train the paper's final model: a Decision Tree regressor.
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);

    // 3. Analyze a new CNN. Static analysis gives trainable parameters;
    //    the dynamic code analysis counts the executed PTX instructions by
    //    slicing — no GPU and no cycle-level simulation involved.
    let new_cnn = cnn_ir::zoo::build("resnet101v2").expect("zoo model");
    let (profile, _plan, _counts, summary) = profile_model(&new_cnn).expect("analysis");
    println!(
        "\n{}: {} trainable params, {} executed PTX instructions (t_dca = {:.2}s)",
        profile.name,
        thousands(summary.trainable_params),
        thousands(profile.ptx_instructions),
        profile.dca_seconds,
    );

    // 4. Predict its IPC on any device in the database — including ones the
    //    predictor never saw, thanks to the architectural features.
    println!("\npredicted IPC per device:");
    for dev in gpu_sim::all_devices() {
        let ipc = predictor.predict(&profile, &dev);
        println!("  {:14} {:.3}", dev.name, ipc);
    }

    // 5. Sanity check: compare against the ground-truth profiler on one
    //    device (this is the step the predictor lets you skip).
    let dev = gpu_sim::specs::gtx_1080_ti();
    let plan = ptx_codegen::lower(&new_cnn, &dev.sm_target()).expect("lowering");
    let truth = gpu_sim::profile(&plan, &dev).expect("profiling");
    let pred = predictor.predict(&profile, &dev);
    println!(
        "\n{} on {}: predicted {:.3} vs measured {:.3} ({:.1}% error)",
        profile.name,
        dev.name,
        pred,
        truth.ipc,
        100.0 * ((truth.ipc - pred) / truth.ipc).abs()
    );
}
