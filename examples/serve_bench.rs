//! Load test for the `cnnperf serve` daemon: 10k+ concurrent pipelined
//! NDJSON requests with a mixed QoS population, measured end to end over
//! a Unix socket.
//!
//! ```text
//! cargo build --release && cargo run --release --example serve_bench
//! ```
//!
//! Acceptance: the interactive class's p99 latency stays under its
//! configured deadline, load shedding hits best-effort first (and never
//! interactive), and the daemon drains cleanly on SIGTERM afterwards.
//!
//! Shape of the run: a warm-up pass primes the analysis cache one key at
//! a time, then `CONNS` client threads each pipeline `REQS_PER_CONN`
//! requests before reading a single response — so the server really holds
//! the whole burst concurrently. The best-effort queue quota is set to 1,
//! which is what forces visible shedding at this scale.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const CONNS: usize = 16;
const REQS_PER_CONN: usize = 640; // 16 * 640 = 10_240 concurrent requests
const INTERACTIVE_DEADLINE_MS: f64 = 2000.0;

/// (class, model, device) population: 50% interactive, 30% batch, 20%
/// best-effort. Key spaces are disjoint across classes so best-effort
/// cannot ride along by coalescing into an interactive job.
fn populate(i: usize) -> (&'static str, &'static str, &'static str) {
    let devices = ["GTX 1080 Ti", "Titan Xp"];
    let d = devices[i % 2];
    match i % 10 {
        0..=4 => ("interactive", ["alexnet", "mobilenet"][(i / 2) % 2], d),
        5..=7 => ("batch", "resnet50", d),
        _ => (
            "best-effort",
            ["MobileNetV2", "resnet50v2", "squeezenet1.1"][(i / 2) % 3],
            d,
        ),
    }
}

fn server_binary() -> PathBuf {
    if let Ok(p) = std::env::var("CNNPERF_BIN") {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let bin = exe
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("cnnperf"))
        .expect("derive binary path");
    if !bin.exists() {
        eprintln!(
            "serve_bench: {} not found — run `cargo build --release` first \
             (or set CNNPERF_BIN)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin
}

fn connect(sock: &std::path::Path) -> UnixStream {
    let s = UnixStream::connect(sock).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    s
}

struct ClassStats {
    latencies_ms: Vec<f64>,
    shed: usize,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64) * p).ceil() as usize;
    sorted_ms[idx.clamp(1, sorted_ms.len()) - 1]
}

fn main() {
    let bin = server_binary();
    let sock = std::env::temp_dir().join(format!("cnnperf-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);

    let mut child = Command::new(&bin)
        .args([
            "serve",
            "--socket",
            sock.to_str().expect("utf8 socket path"),
            "--workers",
            "4",
            "--tiers",
            "analytical",
            "--deadlines",
            "2000,10000,1000",
            "--quotas",
            "256,128,1",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cnnperf serve");
    let mut stderr_pipe = child.stderr.take().expect("stderr piped");
    let stderr_thread = std::thread::spawn(move || {
        let mut buf = String::new();
        stderr_pipe.read_to_string(&mut buf).expect("read stderr");
        buf
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server never bound its socket");
        std::thread::sleep(Duration::from_millis(20));
    }

    // warm-up: one request per distinct key, sequentially, so the burst
    // below measures steady-state service rather than cold DCA analysis
    {
        let stream = connect(&sock);
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut keys: Vec<(&str, &str)> = (0..10)
            .map(|i| {
                let (_, m, d) = populate(i);
                (m, d)
            })
            .collect();
        keys.sort();
        keys.dedup();
        let warm_started = Instant::now();
        for (i, (m, d)) in keys.iter().enumerate() {
            writer
                .write_all(
                    format!("{{\"id\":\"warm-{i}\",\"model\":\"{m}\",\"device\":\"{d}\",\"qos\":\"batch\"}}\n")
                        .as_bytes(),
                )
                .expect("write warm-up");
            let mut line = String::new();
            reader.read_line(&mut line).expect("warm-up response");
            assert!(line.contains("\"ok\":true"), "warm-up failed: {line}");
        }
        println!(
            "serve_bench: warmed {} keys in {:.1} s",
            keys.len(),
            warm_started.elapsed().as_secs_f64()
        );
    }

    // the burst: every connection pipelines its full share before reading
    let burst_started = Instant::now();
    let handles: Vec<_> = (0..CONNS)
        .map(|conn| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let stream = connect(&sock);
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut sent: HashMap<String, (usize, Instant)> = HashMap::new();
                let mut payload = String::new();
                for i in 0..REQS_PER_CONN {
                    let (class, model, device) = populate(i);
                    let id = format!("c{conn}-r{i}");
                    payload.push_str(&format!(
                        "{{\"id\":\"{id}\",\"model\":\"{model}\",\"device\":\"{device}\",\"qos\":\"{class}\"}}\n"
                    ));
                    sent.insert(id, (i, Instant::now()));
                }
                writer.write_all(payload.as_bytes()).expect("write burst");
                let mut stats: [ClassStats; 3] = std::array::from_fn(|_| ClassStats {
                    latencies_ms: Vec::new(),
                    shed: 0,
                });
                for _ in 0..REQS_PER_CONN {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read burst response");
                    let v = serde_json::parse(line.trim()).expect("valid JSON frame");
                    let id = match v.get("id") {
                        Some(serde_json::Value::Str(s)) => s.clone(),
                        other => panic!("frame without id ({other:?}): {line}"),
                    };
                    let (i, sent_at) = sent.remove(&id).expect("unknown or duplicate id");
                    let (class, _, _) = populate(i);
                    let slot = ["interactive", "batch", "best-effort"]
                        .iter()
                        .position(|c| *c == class)
                        .expect("class slot");
                    match v.get("error") {
                        Some(serde_json::Value::Str(kind)) => {
                            assert_eq!(kind, "overloaded", "only shedding may fail: {line}");
                            stats[slot].shed += 1;
                        }
                        _ => {
                            assert!(line.contains("\"ok\":true"), "typed result: {line}");
                            stats[slot]
                                .latencies_ms
                                .push(sent_at.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                }
                assert!(sent.is_empty(), "every request got exactly one response");
                stats
            })
        })
        .collect();

    let mut totals: [ClassStats; 3] = std::array::from_fn(|_| ClassStats {
        latencies_ms: Vec::new(),
        shed: 0,
    });
    for h in handles {
        let per_conn = h.join().expect("client thread must not panic");
        for (t, c) in totals.iter_mut().zip(per_conn) {
            t.latencies_ms.extend(c.latencies_ms);
            t.shed += c.shed;
        }
    }
    let elapsed = burst_started.elapsed().as_secs_f64();
    let total = CONNS * REQS_PER_CONN;
    println!(
        "serve_bench: {total} concurrent requests over {CONNS} connections \
         in {elapsed:.1} s ({:.0} req/s)",
        total as f64 / elapsed
    );
    for (slot, class) in ["interactive", "batch", "best-effort"].iter().enumerate() {
        let t = &mut totals[slot];
        t.latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {class:<12} served {:>5}  shed {:>5}  p50 {:>8.1} ms  p99 {:>8.1} ms",
            t.latencies_ms.len(),
            t.shed,
            percentile(&t.latencies_ms, 0.50),
            percentile(&t.latencies_ms, 0.99),
        );
    }

    let p99_interactive = percentile(&totals[0].latencies_ms, 0.99);
    assert!(
        p99_interactive <= INTERACTIVE_DEADLINE_MS,
        "interactive p99 {p99_interactive:.1} ms exceeds the {INTERACTIVE_DEADLINE_MS} ms deadline"
    );
    assert_eq!(totals[0].shed, 0, "interactive must never be shed");
    assert!(
        totals[2].shed > 0,
        "best-effort must shed first under a 10k burst with quota 1"
    );

    // pull the daemon's own accounting before shutdown
    {
        let stream = connect(&sock);
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"{\"op\":\"stats\",\"id\":\"final\"}\n")
            .expect("stats frame");
        let mut line = String::new();
        reader.read_line(&mut line).expect("stats response");
        for key in ["server.admitted", "server.coalesced", "server.shed"] {
            let needle = format!("\"{key}\":");
            let val = line
                .find(&needle)
                .map(|at| {
                    line[at + needle.len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect::<String>()
                })
                .unwrap_or_default();
            println!("  {key} = {val}");
        }
    }

    // clean SIGTERM drain
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(Instant::now() < deadline, "server did not drain on SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    let stderr = stderr_thread.join().expect("stderr thread");
    assert!(
        status.success() && stderr.contains("drained in") && !stderr.contains("panicked"),
        "unclean shutdown (status {status:?}); stderr:\n{stderr}"
    );
    let _ = std::fs::remove_file(&sock);
    println!("serve_bench: SIGTERM drained cleanly — OK");
}
