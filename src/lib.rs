//! # cnnperf — fast and accurate performance estimation of CNNs for GPGPUs
//!
//! Umbrella crate re-exporting the full pipeline. See the individual crates
//! for details:
//!
//! - [`cnn_ir`] — CNN graph IR, static analyzer, 32-model zoo (Table I)
//! - [`ptx`] — PTX ISA subset: kernels, parser, printer, builder
//! - [`ptx_codegen`] — CNN graph → PTX module + launch plan
//! - [`ptx_analysis`] — dependency graph, slicing, executed-instruction counts
//! - [`gpu_sim`] — GPGPU performance simulator (the "hardware" stand-in)
//! - [`mlkit`] — from-scratch regressors (Table II) and metrics
//! - [`core`] (as [`cnnperf_core`]) — dataset pipeline, predictor, DSE

pub use cnn_ir;
pub use cnnperf_core;
pub use gpu_sim;
pub use mlkit;
pub use ptx;
pub use ptx_analysis;
pub use ptx_codegen;

pub use cnnperf_core::prelude::*;

/// One-stop import for applications: the core prelude plus the substrate
/// crates' entry points.
pub mod prelude {
    pub use cnnperf_core::prelude::*;
}
