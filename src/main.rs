//! `cnnperf` — command-line interface to the estimation pipeline.
//!
//! ```text
//! cnnperf list                          # models and devices
//! cnnperf analyze resnet50              # static + dynamic analysis
//! cnnperf profile resnet50 "V100S"      # ground-truth simulation + power
//! cnnperf predict resnet50 --all-devices
//! cnnperf rank MobileNetV2              # DSE over the device fleet
//! cnnperf ptx mobilenet                 # dump the generated PTX module
//! cnnperf dot alexnet                   # Graphviz of the model graph
//! ```

use cnnperf::prelude::*;
use cnnperf_core::{
    build_corpus_robust_with, BuildMeta, BuildOptions, Journal, JournalError, Replay,
    SuperviseConfig, Supervisor, DEFAULT_SM_TARGET, JOURNAL_SCHEMA,
};
use gpu_sim::{estimate_power, ChaosProfile, SimMode, Simulator};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Exit-code taxonomy (documented in the README): `0` success, `1`
/// generic failure, then one code per distinguishable operational
/// condition so scripts and CI can branch without scraping stderr.
const EXIT_USAGE: u8 = 2;
/// The estimation engine shed load at admission (queue over capacity).
const EXIT_OVERLOADED: u8 = 3;
/// Requests missed the deadline (unserved, but not load-shed).
const EXIT_DEADLINE: u8 = 4;
/// A crash-safe artifact (corpus cache or cell journal) was corrupt and
/// the command was not allowed to degrade around it (`--strict`).
const EXIT_CORRUPT: u8 = 5;
/// The server failed to bind its Unix socket or metrics endpoint.
const EXIT_BIND: u8 = 6;
/// The snapshot model store could not be initialised (`--model-dir` is
/// not a usable directory, or a `models` action failed against it).
const EXIT_MODELSTORE: u8 = 7;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cnnperf <command> [args]\n\
         commands:\n\
           list                          list zoo models, variants and devices\n\
           analyze <model>               static analyzer + executed-instruction count\n\
           profile <model> <device>      ground-truth simulation (IPC, latency, power)\n\
           predict <model> [<device>|--all-devices] [--regressor dt|knn|rf|xgb|lr]\n\
           rank <model> [--journal-dir DIR] [--resume] [--cell-timeout-ms N]\n\
                [--stats json|prom]      rank all devices by predicted IPC (warm: the\n\
                                         analysis cache skips repeated DCA; a corpus\n\
                                         cache miss rebuilds under the given journal)\n\
           corpus [--strict] [--runs N] [--fault-profile none|light|harsh|k=v,..]\n\
                  [--models m1,m2,..] [--devices d1,d2,..]\n\
                  [--journal-dir DIR] [--resume] [--cell-timeout-ms N]\n\
                  [--chaos none|k=v,..] [--out FILE]\n\
                  [--stats json|prom]    build the training corpus under the robust\n\
                                         measurement protocol and print its health\n\
                                         report; --journal-dir checkpoints every cell\n\
                                         so --resume skips completed work after a\n\
                                         crash, --cell-timeout-ms arms the watchdog\n\
                                         that cancels silent cells, --out writes the\n\
                                         canonical (wall-clock-free) corpus JSON\n\
           estimate <models> <devices|--all-devices> [--deadline-ms N] [--tiers t1,t2,..]\n\
                    [--chaos none|k=v,..] [--queue-capacity N] [--stats json|prom]\n\
                                         deadline-bounded batch estimation through the\n\
                                         tiered engine (detailed > analytical > regressor\n\
                                         > stale-cache); models/devices comma-separated\n\
           serve [--socket PATH] [--metrics ADDR] [--workers N]\n\
                 [--deadlines I,B,E] [--quotas I,B,E] [--max-retries N]\n\
                 [--retry-backoff-ms N] [--no-revalidate] [--tiers t1,t2,..]\n\
                 [--chaos none|k=v,..] [--max-frame-bytes N] [--frame-stall-ms N]\n\
                 [--drain-deadline-ms N] [--stats-dump json|prom]\n\
                 [--model-dir DIR] [--retrain-interval-s N] [--shadow-window N]\n\
                 [--promotion-threshold F] [--drift-window N] [--drift-threshold F]\n\
                                         persistent NDJSON estimation server over a\n\
                                         Unix socket (or stdin/stdout without\n\
                                         --socket); per-client QoS classes\n\
                                         (interactive|batch|best-effort) with\n\
                                         admission control and request coalescing;\n\
                                         --metrics serves live Prometheus from the\n\
                                         same loop; SIGTERM drains gracefully;\n\
                                         --model-dir arms the predictor lifecycle:\n\
                                         cold-start from the newest valid snapshot,\n\
                                         background retraining from served ground\n\
                                         truth, shadow-gated promotion, drift\n\
                                         rollback, crash-safe snapshots\n\
           models <list|inspect V|pin V|unpin|rollback> --model-dir DIR\n\
                                         inspect and steer the snapshot store:\n\
                                         `pin` freezes cold-starts to a version,\n\
                                         `rollback` demotes the newest snapshot so\n\
                                         the previous one serves\n\
           stats-check <file>            validate the metrics snapshot emitted by\n\
                                         `--stats json` (last JSON line of <file>):\n\
                                         schema, shape, and counter invariants\n\
           ptx <model>                   print the generated PTX module\n\
           dot <model>                   print the model graph as Graphviz\n\
         global flags (any command):\n\
           --count-mode auto|poly|interp|bruteforce\n\
                                         how the dynamic code analysis counts\n\
                                         executed instructions: `auto` (default)\n\
                                         compiles kernels to closed-form trip-count\n\
                                         polynomials and falls back to the dense\n\
                                         interpreter per kernel/launch; `poly` makes\n\
                                         a fallback a hard error (diagnostics);\n\
                                         `interp` forces the interpreter;\n\
                                         `bruteforce` executes every thread\n\
                                         (validation only — exponentially slower)\n\
         exit codes: 0 ok, 1 failure, 2 usage/config error, 3 overloaded,\n\
                     4 deadline exceeded, 5 corrupt cache/journal,\n\
                     6 server bind/socket error, 7 model store init failure"
    );
    ExitCode::from(EXIT_USAGE)
}

fn model_or_exit(name: &str) -> cnn_ir::ModelGraph {
    match cnn_ir::zoo::build_any(name) {
        Some(m) => m,
        None => {
            eprintln!("unknown model '{name}' — see `cnnperf list`");
            std::process::exit(EXIT_USAGE as i32);
        }
    }
}

/// Run the full model analysis, exiting cleanly on failure — reachable
/// from the CLI via `--count-mode poly` when the strict tier refuses a
/// kernel it cannot compile.
fn analysis_or_exit(
    model: &cnn_ir::ModelGraph,
) -> (
    cnnperf_core::CnnProfile,
    ptx::kernel::LaunchPlan,
    ptx_analysis::PlanCount,
    cnn_ir::ModelSummary,
) {
    match profile_model(model) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    }
}

fn device_or_exit(name: &str) -> gpu_sim::DeviceSpec {
    match gpu_sim::device_by_name(name) {
        Some(d) => d,
        None => {
            eprintln!("unknown device '{name}' — see `cnnperf list`");
            std::process::exit(EXIT_USAGE as i32);
        }
    }
}

fn regressor_of(flag: Option<&str>) -> RegressorKind {
    match flag.unwrap_or("dt") {
        "dt" => RegressorKind::DecisionTree,
        "knn" => RegressorKind::KNearestNeighbors,
        "rf" => RegressorKind::RandomForest,
        "xgb" => RegressorKind::XgBoost,
        "lr" => RegressorKind::LinearRegression,
        other => {
            eprintln!("unknown regressor '{other}' (dt|knn|rf|xgb|lr)");
            std::process::exit(EXIT_USAGE as i32);
        }
    }
}

/// Output format for the end-of-run metrics snapshot (`--stats`).
#[derive(Clone, Copy)]
enum StatsFormat {
    Json,
    Prom,
}

impl StatsFormat {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(StatsFormat::Json),
            "prom" => Some(StatsFormat::Prom),
            _ => None,
        }
    }
}

/// Emit the global metrics snapshot to stdout. The JSON form is a single
/// line (always the *last* stdout line of the command) so scripts and
/// `stats-check` can grab it without parsing the human-readable report
/// above it.
fn emit_stats(fmt: StatsFormat) {
    let snap = obs::global().snapshot();
    match fmt {
        StatsFormat::Json => println!("{}", snap.to_json()),
        StatsFormat::Prom => print!("{}", snap.to_prometheus()),
    }
}

/// Location of the crash-safe corpus cache (shared with the bench
/// harness; override with `CNNPERF_CORPUS`).
fn corpus_cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("CNNPERF_CORPUS") {
        return PathBuf::from(p);
    }
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("cnnperf-paper-corpus-v2.json")
}

/// Load the corpus from the crash-safe cache without building on a miss.
fn corpus_if_cached() -> Option<Corpus> {
    match load_corpus(&corpus_cache_path()) {
        Ok(c) if c.dataset.feature_names == feature_names() => Some(c),
        Ok(_) => {
            eprintln!("corpus cache stale (feature layout changed)");
            None
        }
        // Absent is a clean miss; Quarantined already warned on stderr
        Err(_) => None,
    }
}

/// Load or build the full paper corpus, cached crash-safely next to the
/// bench harness's cache.
fn corpus() -> Corpus {
    if let Some(c) = corpus_if_cached() {
        return c;
    }
    eprintln!("building training corpus (32 CNNs x 2 GPUs, ~1 min, cached afterwards)...");
    let c = build_paper_corpus().expect("corpus build");
    if let Err(e) = store_corpus(&corpus_cache_path(), &c) {
        eprintln!("warning: corpus cache write failed: {e}");
    }
    c
}

fn cmd_list() {
    println!("Table I zoo ({} models):", cnn_ir::zoo::all().len());
    for e in cnn_ir::zoo::all() {
        println!("  {}", e.name);
    }
    println!("\nvariants:");
    for (name, _) in cnn_ir::zoo::variants::all_variants() {
        println!("  {name}");
    }
    println!("\ndevices:");
    for d in gpu_sim::all_devices() {
        println!(
            "  {:14} {:4} SMs, {:5} cores, {:6.0} GB/s, {:5} KB L2, sm_{}{}",
            d.name,
            d.sm_count,
            d.cuda_cores(),
            d.mem_bandwidth_gbs,
            d.l2_cache_kb,
            d.compute_capability.0,
            d.compute_capability.1
        );
    }
}

fn cmd_analyze(name: &str) {
    let model = model_or_exit(name);
    let (profile, plan, counts, summary) = analysis_or_exit(&model);
    println!("model: {}", profile.name);
    println!(
        "  input:                {}x{}",
        summary.input_size.0, summary.input_size.1
    );
    println!("  graph nodes:          {}", summary.num_nodes);
    println!("  weighted layers:      {}", summary.weighted_layers);
    println!(
        "  trainable params:     {}",
        thousands(summary.trainable_params)
    );
    println!(
        "  non-trainable params: {}",
        thousands(summary.non_trainable_params)
    );
    println!("  neurons:              {}", thousands(summary.neurons));
    println!("  MACs:                 {}", thousands(summary.macs));
    println!("  FLOPs:                {}", thousands(summary.flops));
    println!("  kernel launches:      {}", plan.launches.len());
    println!(
        "  executed PTX instructions: {} (thread-level), {} (warp-level)",
        thousands(counts.thread_instructions),
        thousands(counts.warp_issues)
    );
    println!("  dynamic code analysis time: {:.2}s", profile.dca_seconds);
}

fn cmd_profile(name: &str, device: &str) {
    let model = model_or_exit(name);
    let dev = device_or_exit(device);
    let plan = ptx_codegen::lower(&model, &dev.sm_target()).expect("lowering");
    let sim = Simulator::new(dev.clone(), SimMode::Detailed)
        .simulate_plan(&plan)
        .expect("simulation");
    let counts = ptx_analysis::count_plan(&plan, true).expect("counts");
    let power = estimate_power(&sim, &counts, &dev);
    println!("{} on {} (detailed simulation):", sim.model_name, dev.name);
    println!("  cycles:       {:.3e}", sim.cycles);
    println!("  latency:      {:.2} ms", sim.latency_ms);
    println!("  IPC:          {:.3}", sim.ipc);
    println!(
        "  DRAM traffic: {:.1} MB (avg L2 hit {:.0}%)",
        sim.dram_bytes / 1e6,
        sim.l2_hit * 100.0
    );
    println!("  avg power:    {:.1} W", power.avg_power_w);
    println!(
        "  energy:       {:.1} mJ (EDP {:.1} mJ*ms)",
        power.energy_mj, power.edp
    );
}

fn cmd_predict(name: &str, device: Option<&str>, all: bool, kind: RegressorKind) {
    let model = model_or_exit(name);
    let corpus = corpus();
    let predictor = PerformancePredictor::train(&corpus.dataset, kind, 42);
    let (profile, ..) = analysis_or_exit(&model);
    let devices: Vec<_> = if all {
        gpu_sim::all_devices()
    } else {
        vec![device_or_exit(device.unwrap_or("GTX 1080 Ti"))]
    };
    println!("predicted IPC for {} ({}):", profile.name, kind.name());
    for dev in devices {
        println!("  {:14} {:.3}", dev.name, predictor.predict(&profile, &dev));
    }
}

/// Like [`corpus`], but a cache miss rebuilds under the given journal
/// (checkpointing every cell) and watchdog, so a killed `rank` warm-up can
/// be resumed instead of restarted. Uses the paper's strict single-run
/// protocol — the same corpus the cache would have held.
fn corpus_with_journal(
    journal_dir: Option<&Path>,
    resume: bool,
    cell_timeout_ms: Option<u64>,
) -> Result<Corpus, ExitCode> {
    if let Some(c) = corpus_if_cached() {
        return Ok(c);
    }
    eprintln!("building training corpus (32 CNNs x 2 GPUs, ~1 min, cached afterwards)...");
    let cfg = RobustConfig::strict_single_run();
    let journal_state = match journal_dir {
        Some(dir) => Some(open_journal_or_exit(dir, &cfg, resume)?),
        None => None,
    };
    let supervisor =
        cell_timeout_ms.map(|ms| Supervisor::start(SuperviseConfig::with_timeout_ms(ms)));
    let opts = BuildOptions {
        journal: journal_state.as_ref().map(|(j, _)| j),
        replay: journal_state.as_ref().map(|(_, r)| r),
        supervisor: supervisor.as_ref(),
        chaos: ChaosProfile::none(),
    };
    let models = cnn_ir::zoo::build_all();
    let devices = gpu_sim::training_devices();
    let (c, _report) = build_corpus_robust_with(&models, &devices, &cfg, &opts).map_err(|e| {
        eprintln!("corpus build failed: {e}");
        ExitCode::FAILURE
    })?;
    if let Err(e) = store_corpus(&corpus_cache_path(), &c) {
        eprintln!("warning: corpus cache write failed: {e}");
    }
    Ok(c)
}

fn cmd_rank(
    name: &str,
    stats: Option<StatsFormat>,
    journal_dir: Option<&Path>,
    resume: bool,
    cell_timeout_ms: Option<u64>,
) -> ExitCode {
    let model = model_or_exit(name);
    let corpus = match corpus_with_journal(journal_dir, resume, cell_timeout_ms) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let devices = gpu_sim::all_devices();
    let outcome = rank_devices(&predictor, &model, &devices).expect("dse");
    println!(
        "device ranking for {} (t_dca {:.2}s, t_pm {:.3}ms):",
        outcome.model,
        outcome.t_dca,
        outcome.t_pm * 1e3
    );
    for (i, r) in outcome.ranking.iter().enumerate() {
        println!(
            "  {}. {:14} predicted IPC {:.3}",
            i + 1,
            r.device,
            r.predicted_ipc
        );
    }
    let (entries, capacity) = cnnperf_core::cache_stats();
    println!("analysis cache: {entries}/{capacity} entries");
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
    ExitCode::SUCCESS
}

/// Build fingerprint for the cell journal: any of these differing between
/// a journal and a resuming build makes the journaled cells meaningless.
fn build_meta_for(cfg: &RobustConfig) -> BuildMeta {
    BuildMeta {
        schema: JOURNAL_SCHEMA,
        sm_target: DEFAULT_SM_TARGET.to_string(),
        runs: cfg.runs,
        retry: cfg.retry.clone(),
        faults: cfg.faults.clone(),
        strict: cfg.strict,
    }
}

/// Open (or resume) the cell journal at `dir`, mapping the failure modes
/// to the exit-code taxonomy: a configuration mismatch is a usage error
/// ([`EXIT_USAGE`]), corrupt segments under `--strict` are
/// [`EXIT_CORRUPT`] (a lax build recomputes the quarantined cells and
/// continues).
fn open_journal_or_exit(
    dir: &Path,
    cfg: &RobustConfig,
    resume: bool,
) -> Result<(Journal, Replay), ExitCode> {
    match Journal::open(dir, &build_meta_for(cfg), resume) {
        Ok((journal, replay)) => {
            if replay.corrupt_segments > 0 {
                eprintln!(
                    "journal: quarantined {} corrupt segment(s) to `.corrupt`",
                    replay.corrupt_segments
                );
                if cfg.strict {
                    eprintln!("strict build refuses a journal with corrupt segments");
                    return Err(ExitCode::from(EXIT_CORRUPT));
                }
            }
            if resume {
                eprintln!("journal: replayed {} record(s)", replay.records);
            }
            Ok((journal, replay))
        }
        Err(e @ JournalError::ConfigMismatch { .. }) => {
            eprintln!("cannot resume: {e}");
            Err(ExitCode::from(EXIT_USAGE))
        }
        Err(e) => {
            eprintln!("journal open failed: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_corpus(args: &[&str]) -> ExitCode {
    let mut cfg = RobustConfig::default();
    let mut stats: Option<StatsFormat> = None;
    let mut models_spec: Option<&str> = None;
    let mut devices_spec: Option<&str> = None;
    let mut journal_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut cell_timeout_ms: Option<u64> = None;
    let mut chaos = ChaosProfile::none();
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--strict" => cfg.strict = true,
            "--resume" => resume = true,
            "--stats" => match it.next().copied().and_then(StatsFormat::parse) {
                Some(f) => stats = Some(f),
                None => {
                    eprintln!("--stats needs `json` or `prom`");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--runs" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => cfg.runs = n,
                _ => {
                    eprintln!("--runs needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--fault-profile" => match it.next() {
                Some(spec) => match gpu_sim::FaultProfile::parse(spec) {
                    Ok(p) => cfg.faults = p,
                    Err(e) => {
                        eprintln!("bad --fault-profile: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                },
                None => {
                    eprintln!("--fault-profile needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--models" => match it.next() {
                Some(spec) => models_spec = Some(spec),
                None => {
                    eprintln!("--models needs a comma-separated list");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--devices" => match it.next() {
                Some(spec) => devices_spec = Some(spec),
                None => {
                    eprintln!("--devices needs a comma-separated list");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--journal-dir" => match it.next() {
                Some(dir) => journal_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--journal-dir needs a directory");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--cell-timeout-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => cell_timeout_ms = Some(n),
                _ => {
                    eprintln!("--cell-timeout-ms needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--chaos" => match it.next().map(|s| gpu_sim::ChaosProfile::parse(s)) {
                Some(Ok(p)) => chaos = p,
                Some(Err(e)) => {
                    eprintln!("bad --chaos: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                None => {
                    eprintln!("--chaos needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            other => {
                eprintln!("unknown corpus flag `{other}`");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if resume && journal_dir.is_none() {
        eprintln!("--resume needs --journal-dir (nothing to resume from)");
        return ExitCode::from(EXIT_USAGE);
    }
    if chaos.hang_rate > 0.0 && cell_timeout_ms.is_none() {
        eprintln!(
            "--chaos with hang>0 needs --cell-timeout-ms (an unwatched hang wedges the build)"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    let models: Vec<cnn_ir::ModelGraph> = match models_spec {
        Some(spec) => spec.split(',').map(|n| model_or_exit(n.trim())).collect(),
        None => cnn_ir::zoo::build_all(),
    };
    let devices: Vec<gpu_sim::DeviceSpec> = match devices_spec {
        Some(spec) => spec.split(',').map(|n| device_or_exit(n.trim())).collect(),
        None => gpu_sim::training_devices(),
    };

    let journal_state = match &journal_dir {
        Some(dir) => match open_journal_or_exit(dir, &cfg, resume) {
            Ok(state) => Some(state),
            Err(code) => return code,
        },
        None => None,
    };
    let supervisor =
        cell_timeout_ms.map(|ms| Supervisor::start(SuperviseConfig::with_timeout_ms(ms)));
    let opts = BuildOptions {
        journal: journal_state.as_ref().map(|(j, _)| j),
        replay: journal_state.as_ref().map(|(_, r)| r),
        supervisor: supervisor.as_ref(),
        chaos,
    };

    eprintln!(
        "building corpus ({} CNNs x {} GPUs, {} run(s)/cell, strict={}) ...",
        models.len(),
        devices.len(),
        cfg.runs,
        cfg.strict
    );
    let code = match build_corpus_robust_with(&models, &devices, &cfg, &opts) {
        Ok((corpus, report)) => {
            println!(
                "corpus: {} rows, {} models",
                corpus.dataset.len(),
                corpus.profiles.len()
            );
            println!("report: {}", report.summary());
            for cell in &report.cells {
                match &cell.status {
                    CellStatus::Ok => {}
                    CellStatus::Degraded {
                        transient_retries,
                        hangs,
                        rejected_outliers,
                        failed_runs,
                    } => println!(
                        "  degraded {}@{}: {} retries, {} hangs, {} outliers, {} dead runs ({} kept)",
                        cell.model,
                        cell.device,
                        transient_retries,
                        hangs,
                        rejected_outliers,
                        failed_runs,
                        cell.runs_retained
                    ),
                    CellStatus::Failed { error } => {
                        println!("  FAILED {}@{}: {error}", cell.model, cell.device)
                    }
                    CellStatus::TimedOut { waited_ms } => println!(
                        "  TIMEOUT {}@{}: silent for {waited_ms} ms, cancelled by watchdog",
                        cell.model, cell.device
                    ),
                }
            }
            match &out {
                Some(path) => match std::fs::write(path, corpus.canonical_json()) {
                    Ok(()) => {
                        eprintln!("canonical corpus written to {}", path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot write --out {}: {e}", path.display());
                        ExitCode::FAILURE
                    }
                },
                None => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!(
                "corpus build failed ({}): {e}",
                if e.transient() {
                    "transient"
                } else {
                    "permanent"
                }
            );
            ExitCode::FAILURE
        }
    };
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
    code
}

fn cmd_estimate(args: &[&str]) -> ExitCode {
    let mut config = EngineConfig::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut all_devices = false;
    let mut stats: Option<StatsFormat> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--all-devices" => all_devices = true,
            "--stats" => match it.next().copied().and_then(StatsFormat::parse) {
                Some(f) => stats = Some(f),
                None => {
                    eprintln!("--stats needs `json` or `prom`");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--deadline-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => config.deadline_ms = n,
                _ => {
                    eprintln!("--deadline-ms needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--tiers" => match it.next().map(|s| Tier::parse_ladder(s)) {
                Some(Ok(tiers)) => config.tiers = tiers,
                Some(Err(e)) => {
                    eprintln!("bad --tiers: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                None => {
                    eprintln!("--tiers needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--chaos" => match it.next().map(|s| gpu_sim::ChaosProfile::parse(s)) {
                Some(Ok(p)) => config.chaos = p,
                Some(Err(e)) => {
                    eprintln!("bad --chaos: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                None => {
                    eprintln!("--chaos needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--queue-capacity" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => config.queue_capacity = n,
                _ => {
                    eprintln!("--queue-capacity needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown estimate flag `{flag}`");
                return ExitCode::from(EXIT_USAGE);
            }
            value => positional.push(value),
        }
    }
    let (models_spec, devices_spec) = match (positional.first(), positional.get(1)) {
        (Some(m), Some(d)) => (*m, Some(*d)),
        (Some(m), None) if all_devices => (*m, None),
        _ => {
            eprintln!("estimate needs <models> and <devices> (or --all-devices)");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let models: Vec<String> = models_spec
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let devices: Vec<String> = if all_devices {
        gpu_sim::all_devices()
            .iter()
            .map(|d| d.name.clone())
            .collect()
    } else {
        devices_spec
            .unwrap_or_default()
            .split(',')
            .map(|s| s.trim().to_string())
            .collect()
    };
    let requests: Vec<(String, String)> = models
        .iter()
        .flat_map(|m| devices.iter().map(move |d| (m.clone(), d.clone())))
        .collect();

    let mut engine = ResilientEngine::new(config.clone());
    // a cached corpus arms the regressor and stale-cache tiers; estimation
    // is deadline-bounded, so a cache miss must not trigger a minute-long
    // corpus build here — the tiers simply degrade
    if let Some(corpus) = corpus_if_cached() {
        engine.warm_from_corpus(&corpus);
        engine = engine.with_predictor(PerformancePredictor::train(
            &corpus.dataset,
            RegressorKind::DecisionTree,
            42,
        ));
        eprintln!(
            "corpus cache armed regressor + stale-cache tiers ({} entries)",
            engine.cache_len()
        );
    } else if config.tiers.contains(&Tier::Regressor) || config.tiers.contains(&Tier::StaleCache) {
        eprintln!(
            "no corpus cache: regressor/stale-cache tiers will degrade (run `cnnperf corpus` to arm them)"
        );
    }

    println!(
        "estimating {} request(s), deadline {} ms, tiers [{}]:",
        requests.len(),
        config.deadline_ms,
        config
            .tiers
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let outcomes = engine.estimate_batch(&requests);
    let mut served = 0;
    for out in &outcomes {
        if out.served() {
            served += 1;
        }
        println!("  {} elapsed_ms={:.1}", out.canonical(), out.elapsed_ms);
    }
    println!("served {served}/{} within deadline", outcomes.len());
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
    if served == outcomes.len() {
        ExitCode::SUCCESS
    } else if outcomes
        .iter()
        .any(|o| matches!(o.kind, OutcomeKind::Overloaded))
    {
        // load shed at admission outranks a mere deadline miss: the
        // caller's remedy (back off / raise capacity) is different
        ExitCode::from(EXIT_OVERLOADED)
    } else {
        ExitCode::from(EXIT_DEADLINE)
    }
}

/// Parse `--deadlines I,B,E` / `--quotas I,B,E` triples (interactive,
/// batch, best-effort).
fn parse_triple<T: std::str::FromStr>(spec: &str) -> Option<[T; 3]> {
    let parts: Vec<&str> = spec.split(',').map(|s| s.trim()).collect();
    if parts.len() != 3 {
        return None;
    }
    let a = parts[0].parse().ok()?;
    let b = parts[1].parse().ok()?;
    let c = parts[2].parse().ok()?;
    Some([a, b, c])
}

fn cmd_serve(args: &[&str]) -> ExitCode {
    use cnnperf_core::{
        ColdStart, LifecycleConfig, LifecycleManager, ModelStore, PredictorSlot, ServeError,
        Server, ServerConfig,
    };
    use std::sync::Arc;

    let mut cfg = ServerConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut metrics: Option<String> = None;
    let mut stats_dump: Option<StatsFormat> = None;
    let mut model_dir: Option<PathBuf> = None;
    let mut lc = LifecycleConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--socket" => match it.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--socket needs a path");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--metrics" => match it.next() {
                Some(a) => metrics = Some(a.to_string()),
                None => {
                    eprintln!("--metrics needs an address (e.g. 127.0.0.1:9095)");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--workers" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => cfg.workers = n,
                _ => {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--deadlines" => match it.next().and_then(|s| parse_triple::<u64>(s)) {
                Some(t) if t.iter().all(|v| *v >= 1) => cfg.policy.deadline_ms = t,
                _ => {
                    eprintln!("--deadlines needs three positive integers: interactive,batch,best-effort (ms)");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--quotas" => match it.next().and_then(|s| parse_triple::<usize>(s)) {
                Some(t) if t.iter().all(|v| *v >= 1) => cfg.policy.queue_quota = t,
                _ => {
                    eprintln!(
                        "--quotas needs three positive integers: interactive,batch,best-effort"
                    );
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--max-retries" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => cfg.max_retries = n,
                _ => {
                    eprintln!("--max-retries needs an integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--retry-backoff-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => cfg.retry_backoff_ms = n,
                _ => {
                    eprintln!("--retry-backoff-ms needs an integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--no-revalidate" => cfg.revalidate_stale = false,
            "--tiers" => match it.next().map(|s| Tier::parse_ladder(s)) {
                Some(Ok(tiers)) => cfg.engine.tiers = tiers,
                Some(Err(e)) => {
                    eprintln!("bad --tiers: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                None => {
                    eprintln!("--tiers needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--chaos" => match it.next().map(|s| gpu_sim::ChaosProfile::parse(s)) {
                Some(Ok(p)) => cfg.engine.chaos = p,
                Some(Err(e)) => {
                    eprintln!("bad --chaos: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                None => {
                    eprintln!("--chaos needs a value");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--max-frame-bytes" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 64 => cfg.max_frame_bytes = n,
                _ => {
                    eprintln!("--max-frame-bytes needs an integer >= 64");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--frame-stall-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => cfg.frame_stall_ms = n,
                _ => {
                    eprintln!("--frame-stall-ms needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--drain-deadline-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => cfg.drain_deadline_ms = n,
                _ => {
                    eprintln!("--drain-deadline-ms needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--stats-dump" => match it.next().copied().and_then(StatsFormat::parse) {
                Some(f) => stats_dump = Some(f),
                None => {
                    eprintln!("--stats-dump needs `json` or `prom`");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--model-dir" => match it.next() {
                Some(p) => model_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--model-dir needs a directory path");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--retrain-interval-s" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => lc.retrain_interval = std::time::Duration::from_secs(n),
                _ => {
                    eprintln!("--retrain-interval-s needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--shadow-window" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => lc.shadow_window = n,
                _ => {
                    eprintln!("--shadow-window needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--promotion-threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if f.is_finite() && f >= 0.0 => lc.promotion_threshold = f,
                _ => {
                    eprintln!("--promotion-threshold needs a non-negative number");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--drift-window" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => lc.drift_window = n,
                _ => {
                    eprintln!("--drift-window needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--drift-threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if f.is_finite() && f > 0.0 => lc.drift_threshold = f,
                _ => {
                    eprintln!("--drift-threshold needs a positive number");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            other => {
                eprintln!("unknown serve flag `{other}`");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if metrics.is_some() && socket.is_none() {
        eprintln!("--metrics needs --socket (the endpoint is served from the socket accept loop)");
        return ExitCode::from(EXIT_USAGE);
    }

    // a cached corpus arms every shard's regressor + stale-cache tiers;
    // like `estimate`, a cache miss degrades instead of blocking startup
    // on a minute-long corpus build
    let corpus = corpus_if_cached().map(Arc::new);
    match &corpus {
        Some(c) => eprintln!(
            "serve: corpus cache armed regressor + stale-cache tiers ({} samples)",
            c.samples.len()
        ),
        None => eprintln!(
            "serve: no corpus cache — regressor/stale-cache tiers degrade (run `cnnperf corpus` to arm them)"
        ),
    }

    let server = match &model_dir {
        Some(dir) => {
            let store = match ModelStore::open(dir) {
                Ok((store, report)) => {
                    eprintln!(
                        "serve: model store {} ({} valid, {} quarantined, {} temp swept)",
                        dir.display(),
                        report.loaded,
                        report.quarantined,
                        report.tmp_swept
                    );
                    store
                }
                Err(e) => {
                    eprintln!("serve: model store init failed: {e}");
                    return ExitCode::from(EXIT_MODELSTORE);
                }
            };
            let base = corpus.as_ref().map(|c| c.dataset.clone());
            let manager = Arc::new(LifecycleManager::new(
                lc,
                Arc::new(PredictorSlot::new()),
                Some(store),
                base,
            ));
            match manager.cold_start() {
                ColdStart::Snapshot {
                    version,
                    generation,
                } => eprintln!(
                    "serve: lifecycle cold-start from snapshot v{version} (generation {generation})"
                ),
                ColdStart::Trained {
                    generation,
                    version,
                } => eprintln!(
                    "serve: lifecycle cold-start trained from corpus (generation {generation}{})",
                    match version {
                        Some(v) => format!(", snapshotted as v{v}"),
                        None => String::new(),
                    }
                ),
                ColdStart::Empty => eprintln!(
                    "serve: lifecycle cold-start empty — no snapshot, no corpus cache; the \
                     regressor tier stays dark until ground truth accrues"
                ),
            }
            Server::with_lifecycle(cfg, corpus, manager)
        }
        None => {
            let predictor = corpus.as_ref().map(|c| {
                Arc::new(PerformancePredictor::train(
                    &c.dataset,
                    RegressorKind::DecisionTree,
                    42,
                ))
            });
            Server::new(cfg, predictor, corpus)
        }
    };
    let result = match &socket {
        Some(path) => {
            eprintln!(
                "serve: listening on {} ({} workers){}",
                path.display(),
                server.config().workers,
                match &metrics {
                    Some(a) => format!(", metrics on http://{a}/metrics"),
                    None => String::new(),
                }
            );
            server.run_unix(path, metrics.as_deref())
        }
        None => {
            eprintln!(
                "serve: NDJSON on stdin/stdout ({} workers), EOF drains",
                server.config().workers
            );
            server.run_stdio()
        }
    };
    let code = match result {
        Ok(report) => {
            eprintln!(
                "serve: drained in {:.1} ms ({} flushed{})",
                report.elapsed.as_secs_f64() * 1e3,
                report.flushed,
                if report.forced {
                    ", deadline forced"
                } else {
                    ""
                }
            );
            ExitCode::SUCCESS
        }
        Err(e @ ServeError::Bind { .. }) => {
            eprintln!("serve: {e}");
            ExitCode::from(EXIT_BIND)
        }
    };
    if let Some(fmt) = stats_dump {
        emit_stats(fmt);
    }
    code
}

/// Inspect and steer the snapshot model store (`cnnperf models ...`).
/// Every action opens the store first, so orphaned temp files are swept
/// and corrupt snapshots quarantined as a side effect of any invocation.
fn cmd_models(args: &[&str]) -> ExitCode {
    use cnnperf_core::ModelStore;

    let action = match args.first() {
        Some(a) if !a.starts_with("--") => *a,
        _ => {
            eprintln!("models needs an action: list | inspect V | pin V | unpin | rollback");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let dir = match args.iter().position(|a| *a == "--model-dir") {
        Some(i) => match args.get(i + 1) {
            Some(p) => PathBuf::from(p),
            None => {
                eprintln!("--model-dir needs a directory path");
                return ExitCode::from(EXIT_USAGE);
            }
        },
        None => {
            eprintln!("models needs --model-dir DIR");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let version_arg = || -> Option<u64> { args.get(1).and_then(|v| v.parse().ok()) };

    let (mut store, report) = match ModelStore::open(&dir) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("models: store init failed: {e}");
            return ExitCode::from(EXIT_MODELSTORE);
        }
    };
    match action {
        "list" => {
            println!(
                "model store {} — {} valid snapshot(s), {} quarantined, {} temp swept",
                dir.display(),
                report.loaded,
                report.quarantined,
                report.tmp_swept
            );
            let pinned = store.pinned();
            for info in store.list() {
                println!(
                    "  v{:06}  {:<4}  {:>5} rows  checksum {:016x}  {}{}",
                    info.meta.version,
                    info.meta.kind,
                    info.meta.train_rows,
                    info.checksum,
                    info.meta.note,
                    if pinned == Some(info.meta.version) {
                        "  [pinned]"
                    } else {
                        ""
                    }
                );
            }
            if store.list().is_empty() {
                println!("  (empty)");
            }
            ExitCode::SUCCESS
        }
        "inspect" => {
            let Some(v) = version_arg() else {
                eprintln!("models inspect needs a version number");
                return ExitCode::from(EXIT_USAGE);
            };
            match store.load_version(v) {
                Ok((info, predictor)) => {
                    println!("version:    v{:06}", info.meta.version);
                    println!("path:       {}", info.path.display());
                    println!("kind:       {}", info.meta.kind);
                    println!("train rows: {}", info.meta.train_rows);
                    println!("note:       {}", info.meta.note);
                    println!("checksum:   {:016x}", info.checksum);
                    println!("features:   {}", predictor.feature_names.len());
                    println!(
                        "pinned:     {}",
                        if store.pinned() == Some(v) {
                            "yes"
                        } else {
                            "no"
                        }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("models: {e}");
                    ExitCode::from(EXIT_MODELSTORE)
                }
            }
        }
        "pin" => {
            let Some(v) = version_arg() else {
                eprintln!("models pin needs a version number");
                return ExitCode::from(EXIT_USAGE);
            };
            match store.pin(v) {
                Ok(()) => {
                    println!("pinned v{v} — cold starts serve it until unpin/rollback");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("models: {e}");
                    ExitCode::from(EXIT_MODELSTORE)
                }
            }
        }
        "unpin" => {
            store.unpin();
            println!("unpinned — cold starts return to the newest valid snapshot");
            ExitCode::SUCCESS
        }
        "rollback" => match store.demote_latest() {
            Ok((demoted, now_newest)) => {
                match now_newest {
                    Some(v) => println!("demoted v{demoted}; newest valid is now v{v}"),
                    None => println!("demoted v{demoted}; store is now empty"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("models: {e}");
                ExitCode::from(EXIT_MODELSTORE)
            }
        },
        other => {
            eprintln!(
                "unknown models action `{other}` (list | inspect V | pin V | unpin | rollback)"
            );
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Parse a non-negative integer out of a snapshot `Value`.
fn stat_u64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Validate a `--stats json` snapshot: find the last JSON line of `file`,
/// check the schema version and overall shape, and enforce the counter
/// invariants the instrumentation promises (tier outcomes sum to requests,
/// cache hits + misses == lookups). Exits non-zero with a reason on any
/// violation, so CI can gate on it.
fn cmd_stats_check(file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stats-check: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(line) = text.lines().rev().find(|l| l.trim_start().starts_with('{')) else {
        eprintln!("stats-check: no JSON line found in {file}");
        return ExitCode::FAILURE;
    };
    let snap = match serde_json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("stats-check: snapshot line is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match snap.get("schema").and_then(stat_u64) {
        Some(1) => {}
        other => {
            eprintln!("stats-check: bad schema version {other:?} (want 1)");
            return ExitCode::FAILURE;
        }
    }
    let Some(serde_json::Value::Obj(counters)) = snap.get("counters") else {
        eprintln!("stats-check: `counters` object missing");
        return ExitCode::FAILURE;
    };
    let Some(serde_json::Value::Obj(histograms)) = snap.get("histograms") else {
        eprintln!("stats-check: `histograms` object missing");
        return ExitCode::FAILURE;
    };
    let counter = |name: &str| -> Option<u64> {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| stat_u64(v))
    };
    let mut failures = 0u32;
    fn check(failures: &mut u32, label: &str, lhs: u64, rhs: u64) {
        if lhs != rhs {
            eprintln!("stats-check: invariant violated: {label}: {lhs} != {rhs}");
            *failures += 1;
        }
    }
    if let Some(requests) = counter("engine.requests") {
        let outcomes = counter("engine.outcome.served").unwrap_or(0)
            + counter("engine.outcome.exhausted").unwrap_or(0)
            + counter("engine.outcome.overloaded").unwrap_or(0);
        check(
            &mut failures,
            "served+exhausted+overloaded == engine.requests",
            outcomes,
            requests,
        );
    }
    if let Some(lookups) = counter("engine.cache.lookups") {
        let traffic =
            counter("engine.cache.hits").unwrap_or(0) + counter("engine.cache.misses").unwrap_or(0);
        check(
            &mut failures,
            "hits+misses == engine.cache.lookups",
            traffic,
            lookups,
        );
    }
    if let Some(lookups) = counter("analysis.cache.lookups") {
        let traffic = counter("analysis.cache.hits").unwrap_or(0)
            + counter("analysis.cache.misses").unwrap_or(0);
        check(
            &mut failures,
            "hits+misses == analysis.cache.lookups",
            traffic,
            lookups,
        );
        // eviction can never outpace insertion
        let misses = counter("analysis.cache.misses").unwrap_or(0);
        if counter("analysis.cache.evictions").unwrap_or(0) > misses {
            eprintln!("stats-check: invariant violated: analysis.cache.evictions > misses");
            failures += 1;
        }
    }
    // poly counting tier: every compile attempt either produced a
    // polynomial or fell back to the interpreter — the split is exhaustive
    if let Some(attempts) = counter("ptx.poly.attempts") {
        let resolved =
            counter("ptx.poly.compiled").unwrap_or(0) + counter("ptx.poly.fallbacks").unwrap_or(0);
        check(
            &mut failures,
            "compiled+fallbacks == ptx.poly.attempts",
            resolved,
            attempts,
        );
        // a compiled kernel is always evaluated at least once (compilation
        // only happens on the counting path), so warm poly traffic shows up
        if counter("ptx.poly.compiled").unwrap_or(0) > 0
            && counter("ptx.poly.evals").unwrap_or(0) == 0
        {
            eprintln!("stats-check: invariant violated: ptx.poly.compiled > 0 but evals == 0");
            failures += 1;
        }
        // an evaluation-time fallback is a subset of evaluations
        if counter("ptx.poly.eval_fallbacks").unwrap_or(0) > counter("ptx.poly.evals").unwrap_or(0)
        {
            eprintln!("stats-check: invariant violated: ptx.poly.eval_fallbacks > evals");
            failures += 1;
        }
    }
    // every corpus cell is either replayed from the journal or computed;
    // the split must account for all of them
    if counter("journal.replayed").is_some() || counter("journal.computed").is_some() {
        let replayed = counter("journal.replayed").unwrap_or(0);
        let computed = counter("journal.computed").unwrap_or(0);
        let cells = counter("corpus.cells.ok").unwrap_or(0)
            + counter("corpus.cells.degraded").unwrap_or(0)
            + counter("corpus.cells.failed").unwrap_or(0)
            + counter("corpus.cells.timeout").unwrap_or(0);
        if cells > 0 {
            check(
                &mut failures,
                "journal.replayed + journal.computed == corpus cells",
                replayed + computed,
                cells,
            );
        }
    }
    // a journaling build appends at least one record per computed cell
    if let Some(appends) = counter("journal.appends") {
        if appends < counter("journal.computed").unwrap_or(0) {
            eprintln!("stats-check: invariant violated: journal.appends < journal.computed");
            failures += 1;
        }
    }
    // every scanned snapshot is either loaded or quarantined — the store
    // validates exclusively inside scan(), so the split is exhaustive
    if let Some(scanned) = counter("modelstore.snapshots.scanned") {
        let resolved = counter("modelstore.snapshots.loaded").unwrap_or(0)
            + counter("modelstore.snapshots.quarantined").unwrap_or(0);
        check(
            &mut failures,
            "loaded+quarantined == modelstore.snapshots.scanned",
            resolved,
            scanned,
        );
    }
    // lifecycle: every retrain that reaches the shadow gate is promoted
    // or rejected, never both; cycles skipped for lack of data or lost
    // races don't reach the gate, so the sum is bounded by retrains
    if let Some(retrains) = counter("lifecycle.retrains") {
        let gated = counter("lifecycle.promotions").unwrap_or(0)
            + counter("lifecycle.rejections").unwrap_or(0);
        if gated > retrains {
            eprintln!(
                "stats-check: invariant violated: lifecycle.promotions + rejections > retrains"
            );
            failures += 1;
        }
        // a shadow evaluation precedes every gate decision
        if gated > counter("lifecycle.shadow.evals").unwrap_or(0) {
            eprintln!("stats-check: invariant violated: gate decisions > lifecycle.shadow.evals");
            failures += 1;
        }
    }
    // a rollback only ever follows a drift trip
    if counter("lifecycle.rollbacks").unwrap_or(0) > counter("lifecycle.drift.trips").unwrap_or(0) {
        eprintln!("stats-check: invariant violated: lifecycle.rollbacks > lifecycle.drift.trips");
        failures += 1;
    }
    // every promotion that has a store attached writes a snapshot (and
    // cold-start training writes one too), so written >= promotions
    // whenever a store was in play
    if let Some(written) = counter("modelstore.snapshots.written") {
        if counter("lifecycle.promotions").unwrap_or(0) > written {
            eprintln!(
                "stats-check: invariant violated: lifecycle.promotions > modelstore.snapshots.written"
            );
            failures += 1;
        }
    }
    // the watchdog only fires tokens of cells it first declared stale
    if counter("supervise.cancelled").unwrap_or(0) > counter("supervise.stale_cells").unwrap_or(0) {
        eprintln!("stats-check: invariant violated: supervise.cancelled > supervise.stale_cells");
        failures += 1;
    }
    // server admission: every request is admitted, shed, or rejected while
    // draining — same determinism contract as the engine.* counters
    if let Some(requests) = counter("server.requests") {
        let admitted = counter("server.admitted").unwrap_or(0);
        let shed = counter("server.shed").unwrap_or(0);
        check(
            &mut failures,
            "admitted+shed+rejected.draining == server.requests",
            admitted + shed + counter("server.rejected.draining").unwrap_or(0),
            requests,
        );
        let shed_by_class = counter("server.shed.interactive").unwrap_or(0)
            + counter("server.shed.batch").unwrap_or(0)
            + counter("server.shed.best-effort").unwrap_or(0);
        check(
            &mut failures,
            "sum(server.shed.<class>) == server.shed",
            shed_by_class,
            shed,
        );
        // a coalesced request is by definition an admitted one
        if counter("server.coalesced").unwrap_or(0) > admitted {
            eprintln!("stats-check: invariant violated: server.coalesced > server.admitted");
            failures += 1;
        }
        // every admitted request resolves at most once: computed or
        // drain-flushed, never both
        let resolved =
            counter("server.completed").unwrap_or(0) + counter("server.drain.flushed").unwrap_or(0);
        if resolved > admitted {
            eprintln!(
                "stats-check: invariant violated: server.completed + server.drain.flushed > server.admitted"
            );
            failures += 1;
        }
        // drain-phase resolutions are a subset of all resolutions
        if counter("server.drained").unwrap_or(0) > resolved {
            eprintln!(
                "stats-check: invariant violated: server.drained > completed + drain.flushed"
            );
            failures += 1;
        }
    }
    for (name, v) in histograms {
        let (count, sum) = (
            v.get("count").and_then(stat_u64),
            v.get("sum").and_then(stat_u64),
        );
        if count.is_none() || sum.is_none() {
            eprintln!("stats-check: histogram `{name}` missing count/sum");
            failures += 1;
            continue;
        }
        let bucket_total: u64 = match v.get("buckets") {
            Some(serde_json::Value::Obj(buckets)) => {
                buckets.iter().filter_map(|(_, c)| stat_u64(c)).sum()
            }
            _ => {
                eprintln!("stats-check: histogram `{name}` missing buckets");
                failures += 1;
                continue;
            }
        };
        check(
            &mut failures,
            &format!("histogram `{name}` bucket sum == count"),
            bucket_total,
            count.unwrap_or(0),
        );
    }
    if failures > 0 {
        eprintln!("stats-check: {failures} failure(s) in {file}");
        return ExitCode::FAILURE;
    }
    println!(
        "stats OK: {} counters, {} histograms",
        counters.len(),
        histograms.len()
    );
    ExitCode::SUCCESS
}

/// Strip the global `--count-mode <mode>` flag (valid anywhere on the
/// command line) and install the mode process-wide before dispatch, so
/// every counting entry point — engine tiers, corpus builds, one-shot
/// analyses — inherits it without plumbing.
fn take_count_mode(args: &mut Vec<String>) -> Result<(), String> {
    while let Some(i) = args.iter().position(|a| a == "--count-mode") {
        let Some(v) = args.get(i + 1) else {
            return Err("--count-mode needs a value (auto|poly|interp|bruteforce)".into());
        };
        let mode: ptx_analysis::CountMode = v.parse()?;
        ptx_analysis::set_default_count_mode(mode);
        args.drain(i..=i + 1);
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = take_count_mode(&mut args) {
        eprintln!("{e}");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut it = args.iter().map(|s| s.as_str());
    match it.next() {
        Some("list") => cmd_list(),
        Some("analyze") => match it.next() {
            Some(m) => cmd_analyze(m),
            None => return usage(),
        },
        Some("profile") => match (it.next(), it.next()) {
            (Some(m), Some(d)) => cmd_profile(m, d),
            _ => return usage(),
        },
        Some("predict") => {
            let rest: Vec<&str> = it.collect();
            let Some(model) = rest.first() else {
                return usage();
            };
            let all = rest.contains(&"--all-devices");
            let kind = regressor_of(
                rest.iter()
                    .position(|a| *a == "--regressor")
                    .and_then(|i| rest.get(i + 1).copied()),
            );
            let device = rest.get(1).filter(|d| !d.starts_with("--")).copied();
            cmd_predict(model, device, all, kind);
        }
        Some("rank") => {
            let rest: Vec<&str> = it.collect();
            let Some(model) = rest.first().filter(|m| !m.starts_with("--")) else {
                return usage();
            };
            let flag_value = |flag: &str| {
                rest.iter()
                    .position(|a| *a == flag)
                    .and_then(|i| rest.get(i + 1).copied())
            };
            let stats = flag_value("--stats").and_then(StatsFormat::parse);
            let journal_dir = flag_value("--journal-dir").map(Path::new);
            let resume = rest.contains(&"--resume");
            if resume && journal_dir.is_none() {
                eprintln!("--resume needs --journal-dir (nothing to resume from)");
                return ExitCode::from(EXIT_USAGE);
            }
            let cell_timeout_ms = match flag_value("--cell-timeout-ms") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--cell-timeout-ms needs a positive integer");
                        return ExitCode::from(EXIT_USAGE);
                    }
                },
                None => None,
            };
            return cmd_rank(model, stats, journal_dir, resume, cell_timeout_ms);
        }
        Some("corpus") => {
            let rest: Vec<&str> = it.collect();
            return cmd_corpus(&rest);
        }
        Some("estimate") => {
            let rest: Vec<&str> = it.collect();
            return cmd_estimate(&rest);
        }
        Some("serve") => {
            let rest: Vec<&str> = it.collect();
            return cmd_serve(&rest);
        }
        Some("models") => {
            let rest: Vec<&str> = it.collect();
            return cmd_models(&rest);
        }
        Some("stats-check") => match it.next() {
            Some(f) => return cmd_stats_check(f),
            None => return usage(),
        },
        Some("ptx") => match it.next() {
            Some(m) => {
                let model = model_or_exit(m);
                let plan = ptx_codegen::lower(&model, "sm_61").expect("lowering");
                print!("{}", ptx::printer::module(&plan.module));
            }
            None => return usage(),
        },
        Some("dot") => match it.next() {
            Some(m) => print!("{}", cnn_ir::to_dot(&model_or_exit(m))),
            None => return usage(),
        },
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
