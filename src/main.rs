//! `cnnperf` — command-line interface to the estimation pipeline.
//!
//! ```text
//! cnnperf list                          # models and devices
//! cnnperf analyze resnet50              # static + dynamic analysis
//! cnnperf profile resnet50 "V100S"      # ground-truth simulation + power
//! cnnperf predict resnet50 --all-devices
//! cnnperf rank MobileNetV2              # DSE over the device fleet
//! cnnperf ptx mobilenet                 # dump the generated PTX module
//! cnnperf dot alexnet                   # Graphviz of the model graph
//! ```

use cnnperf::prelude::*;
use gpu_sim::{estimate_power, SimMode, Simulator};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cnnperf <command> [args]\n\
         commands:\n\
           list                          list zoo models, variants and devices\n\
           analyze <model>               static analyzer + executed-instruction count\n\
           profile <model> <device>      ground-truth simulation (IPC, latency, power)\n\
           predict <model> [<device>|--all-devices] [--regressor dt|knn|rf|xgb|lr]\n\
           rank <model> [--stats json|prom]\n\
                                         rank all devices by predicted IPC (warm: the\n\
                                         analysis cache skips repeated DCA; --stats shows\n\
                                         analysis.cache.* traffic)\n\
           corpus [--strict] [--runs N] [--fault-profile none|light|harsh|k=v,..]\n\
                  [--stats json|prom]    build the training corpus under the robust\n\
                                         measurement protocol and print its health report\n\
           estimate <models> <devices|--all-devices> [--deadline-ms N] [--tiers t1,t2,..]\n\
                    [--chaos none|k=v,..] [--queue-capacity N] [--stats json|prom]\n\
                                         deadline-bounded batch estimation through the\n\
                                         tiered engine (detailed > analytical > regressor\n\
                                         > stale-cache); models/devices comma-separated\n\
           stats-check <file>            validate the metrics snapshot emitted by\n\
                                         `--stats json` (last JSON line of <file>):\n\
                                         schema, shape, and counter invariants\n\
           ptx <model>                   print the generated PTX module\n\
           dot <model>                   print the model graph as Graphviz"
    );
    ExitCode::from(2)
}

fn model_or_exit(name: &str) -> cnn_ir::ModelGraph {
    match cnn_ir::zoo::build_any(name) {
        Some(m) => m,
        None => {
            eprintln!("unknown model '{name}' — see `cnnperf list`");
            std::process::exit(2);
        }
    }
}

fn device_or_exit(name: &str) -> gpu_sim::DeviceSpec {
    match gpu_sim::device_by_name(name) {
        Some(d) => d,
        None => {
            eprintln!("unknown device '{name}' — see `cnnperf list`");
            std::process::exit(2);
        }
    }
}

fn regressor_of(flag: Option<&str>) -> RegressorKind {
    match flag.unwrap_or("dt") {
        "dt" => RegressorKind::DecisionTree,
        "knn" => RegressorKind::KNearestNeighbors,
        "rf" => RegressorKind::RandomForest,
        "xgb" => RegressorKind::XgBoost,
        "lr" => RegressorKind::LinearRegression,
        other => {
            eprintln!("unknown regressor '{other}' (dt|knn|rf|xgb|lr)");
            std::process::exit(2);
        }
    }
}

/// Output format for the end-of-run metrics snapshot (`--stats`).
#[derive(Clone, Copy)]
enum StatsFormat {
    Json,
    Prom,
}

impl StatsFormat {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(StatsFormat::Json),
            "prom" => Some(StatsFormat::Prom),
            _ => None,
        }
    }
}

/// Emit the global metrics snapshot to stdout. The JSON form is a single
/// line (always the *last* stdout line of the command) so scripts and
/// `stats-check` can grab it without parsing the human-readable report
/// above it.
fn emit_stats(fmt: StatsFormat) {
    let snap = obs::global().snapshot();
    match fmt {
        StatsFormat::Json => println!("{}", snap.to_json()),
        StatsFormat::Prom => print!("{}", snap.to_prometheus()),
    }
}

/// Location of the crash-safe corpus cache (shared with the bench
/// harness; override with `CNNPERF_CORPUS`).
fn corpus_cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("CNNPERF_CORPUS") {
        return PathBuf::from(p);
    }
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("cnnperf-paper-corpus-v2.json")
}

/// Load the corpus from the crash-safe cache without building on a miss.
fn corpus_if_cached() -> Option<Corpus> {
    match load_corpus(&corpus_cache_path()) {
        Ok(c) if c.dataset.feature_names == feature_names() => Some(c),
        Ok(_) => {
            eprintln!("corpus cache stale (feature layout changed)");
            None
        }
        // Absent is a clean miss; Quarantined already warned on stderr
        Err(_) => None,
    }
}

/// Load or build the full paper corpus, cached crash-safely next to the
/// bench harness's cache.
fn corpus() -> Corpus {
    if let Some(c) = corpus_if_cached() {
        return c;
    }
    eprintln!("building training corpus (32 CNNs x 2 GPUs, ~1 min, cached afterwards)...");
    let c = build_paper_corpus().expect("corpus build");
    if let Err(e) = store_corpus(&corpus_cache_path(), &c) {
        eprintln!("warning: corpus cache write failed: {e}");
    }
    c
}

fn cmd_list() {
    println!("Table I zoo ({} models):", cnn_ir::zoo::all().len());
    for e in cnn_ir::zoo::all() {
        println!("  {}", e.name);
    }
    println!("\nvariants:");
    for (name, _) in cnn_ir::zoo::variants::all_variants() {
        println!("  {name}");
    }
    println!("\ndevices:");
    for d in gpu_sim::all_devices() {
        println!(
            "  {:14} {:4} SMs, {:5} cores, {:6.0} GB/s, {:5} KB L2, sm_{}{}",
            d.name,
            d.sm_count,
            d.cuda_cores(),
            d.mem_bandwidth_gbs,
            d.l2_cache_kb,
            d.compute_capability.0,
            d.compute_capability.1
        );
    }
}

fn cmd_analyze(name: &str) {
    let model = model_or_exit(name);
    let (profile, plan, counts, summary) = profile_model(&model).expect("analysis");
    println!("model: {}", profile.name);
    println!(
        "  input:                {}x{}",
        summary.input_size.0, summary.input_size.1
    );
    println!("  graph nodes:          {}", summary.num_nodes);
    println!("  weighted layers:      {}", summary.weighted_layers);
    println!(
        "  trainable params:     {}",
        thousands(summary.trainable_params)
    );
    println!(
        "  non-trainable params: {}",
        thousands(summary.non_trainable_params)
    );
    println!("  neurons:              {}", thousands(summary.neurons));
    println!("  MACs:                 {}", thousands(summary.macs));
    println!("  FLOPs:                {}", thousands(summary.flops));
    println!("  kernel launches:      {}", plan.launches.len());
    println!(
        "  executed PTX instructions: {} (thread-level), {} (warp-level)",
        thousands(counts.thread_instructions),
        thousands(counts.warp_issues)
    );
    println!("  dynamic code analysis time: {:.2}s", profile.dca_seconds);
}

fn cmd_profile(name: &str, device: &str) {
    let model = model_or_exit(name);
    let dev = device_or_exit(device);
    let plan = ptx_codegen::lower(&model, &dev.sm_target()).expect("lowering");
    let sim = Simulator::new(dev.clone(), SimMode::Detailed)
        .simulate_plan(&plan)
        .expect("simulation");
    let counts = ptx_analysis::count_plan(&plan, true).expect("counts");
    let power = estimate_power(&sim, &counts, &dev);
    println!("{} on {} (detailed simulation):", sim.model_name, dev.name);
    println!("  cycles:       {:.3e}", sim.cycles);
    println!("  latency:      {:.2} ms", sim.latency_ms);
    println!("  IPC:          {:.3}", sim.ipc);
    println!(
        "  DRAM traffic: {:.1} MB (avg L2 hit {:.0}%)",
        sim.dram_bytes / 1e6,
        sim.l2_hit * 100.0
    );
    println!("  avg power:    {:.1} W", power.avg_power_w);
    println!(
        "  energy:       {:.1} mJ (EDP {:.1} mJ*ms)",
        power.energy_mj, power.edp
    );
}

fn cmd_predict(name: &str, device: Option<&str>, all: bool, kind: RegressorKind) {
    let model = model_or_exit(name);
    let corpus = corpus();
    let predictor = PerformancePredictor::train(&corpus.dataset, kind, 42);
    let (profile, ..) = profile_model(&model).expect("analysis");
    let devices: Vec<_> = if all {
        gpu_sim::all_devices()
    } else {
        vec![device_or_exit(device.unwrap_or("GTX 1080 Ti"))]
    };
    println!("predicted IPC for {} ({}):", profile.name, kind.name());
    for dev in devices {
        println!("  {:14} {:.3}", dev.name, predictor.predict(&profile, &dev));
    }
}

fn cmd_rank(name: &str, stats: Option<StatsFormat>) {
    let model = model_or_exit(name);
    let corpus = corpus();
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let devices = gpu_sim::all_devices();
    let outcome = rank_devices(&predictor, &model, &devices).expect("dse");
    println!(
        "device ranking for {} (t_dca {:.2}s, t_pm {:.3}ms):",
        outcome.model,
        outcome.t_dca,
        outcome.t_pm * 1e3
    );
    for (i, r) in outcome.ranking.iter().enumerate() {
        println!(
            "  {}. {:14} predicted IPC {:.3}",
            i + 1,
            r.device,
            r.predicted_ipc
        );
    }
    let (entries, capacity) = cnnperf_core::cache_stats();
    println!("analysis cache: {entries}/{capacity} entries");
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
}

fn cmd_corpus(args: &[&str]) -> ExitCode {
    let mut cfg = RobustConfig::default();
    let mut stats: Option<StatsFormat> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--strict" => cfg.strict = true,
            "--stats" => match it.next().copied().and_then(StatsFormat::parse) {
                Some(f) => stats = Some(f),
                None => {
                    eprintln!("--stats needs `json` or `prom`");
                    return ExitCode::from(2);
                }
            },
            "--runs" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => cfg.runs = n,
                _ => {
                    eprintln!("--runs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--fault-profile" => match it.next() {
                Some(spec) => match gpu_sim::FaultProfile::parse(spec) {
                    Ok(p) => cfg.faults = p,
                    Err(e) => {
                        eprintln!("bad --fault-profile: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--fault-profile needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown corpus flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "building corpus (32 CNNs x 2 GPUs, {} run(s)/cell, strict={}) ...",
        cfg.runs, cfg.strict
    );
    let code = match build_paper_corpus_robust(&cfg) {
        Ok((corpus, report)) => {
            println!(
                "corpus: {} rows, {} models",
                corpus.dataset.len(),
                corpus.profiles.len()
            );
            println!("report: {}", report.summary());
            for cell in &report.cells {
                match &cell.status {
                    CellStatus::Ok => {}
                    CellStatus::Degraded {
                        transient_retries,
                        hangs,
                        rejected_outliers,
                        failed_runs,
                    } => println!(
                        "  degraded {}@{}: {} retries, {} hangs, {} outliers, {} dead runs ({} kept)",
                        cell.model,
                        cell.device,
                        transient_retries,
                        hangs,
                        rejected_outliers,
                        failed_runs,
                        cell.runs_retained
                    ),
                    CellStatus::Failed { error } => {
                        println!("  FAILED {}@{}: {error}", cell.model, cell.device)
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!(
                "corpus build failed ({}): {e}",
                if e.transient() {
                    "transient"
                } else {
                    "permanent"
                }
            );
            ExitCode::FAILURE
        }
    };
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
    code
}

fn cmd_estimate(args: &[&str]) -> ExitCode {
    let mut config = EngineConfig::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut all_devices = false;
    let mut stats: Option<StatsFormat> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--all-devices" => all_devices = true,
            "--stats" => match it.next().copied().and_then(StatsFormat::parse) {
                Some(f) => stats = Some(f),
                None => {
                    eprintln!("--stats needs `json` or `prom`");
                    return ExitCode::from(2);
                }
            },
            "--deadline-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => config.deadline_ms = n,
                _ => {
                    eprintln!("--deadline-ms needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--tiers" => match it.next().map(|s| Tier::parse_ladder(s)) {
                Some(Ok(tiers)) => config.tiers = tiers,
                Some(Err(e)) => {
                    eprintln!("bad --tiers: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--tiers needs a value");
                    return ExitCode::from(2);
                }
            },
            "--chaos" => match it.next().map(|s| gpu_sim::ChaosProfile::parse(s)) {
                Some(Ok(p)) => config.chaos = p,
                Some(Err(e)) => {
                    eprintln!("bad --chaos: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--chaos needs a value");
                    return ExitCode::from(2);
                }
            },
            "--queue-capacity" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => config.queue_capacity = n,
                _ => {
                    eprintln!("--queue-capacity needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown estimate flag `{flag}`");
                return ExitCode::from(2);
            }
            value => positional.push(value),
        }
    }
    let (models_spec, devices_spec) = match (positional.first(), positional.get(1)) {
        (Some(m), Some(d)) => (*m, Some(*d)),
        (Some(m), None) if all_devices => (*m, None),
        _ => {
            eprintln!("estimate needs <models> and <devices> (or --all-devices)");
            return ExitCode::from(2);
        }
    };
    let models: Vec<String> = models_spec
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let devices: Vec<String> = if all_devices {
        gpu_sim::all_devices()
            .iter()
            .map(|d| d.name.clone())
            .collect()
    } else {
        devices_spec
            .unwrap_or_default()
            .split(',')
            .map(|s| s.trim().to_string())
            .collect()
    };
    let requests: Vec<(String, String)> = models
        .iter()
        .flat_map(|m| devices.iter().map(move |d| (m.clone(), d.clone())))
        .collect();

    let mut engine = ResilientEngine::new(config.clone());
    // a cached corpus arms the regressor and stale-cache tiers; estimation
    // is deadline-bounded, so a cache miss must not trigger a minute-long
    // corpus build here — the tiers simply degrade
    if let Some(corpus) = corpus_if_cached() {
        engine.warm_from_corpus(&corpus);
        engine = engine.with_predictor(PerformancePredictor::train(
            &corpus.dataset,
            RegressorKind::DecisionTree,
            42,
        ));
        eprintln!(
            "corpus cache armed regressor + stale-cache tiers ({} entries)",
            engine.cache_len()
        );
    } else if config.tiers.contains(&Tier::Regressor) || config.tiers.contains(&Tier::StaleCache) {
        eprintln!(
            "no corpus cache: regressor/stale-cache tiers will degrade (run `cnnperf corpus` to arm them)"
        );
    }

    println!(
        "estimating {} request(s), deadline {} ms, tiers [{}]:",
        requests.len(),
        config.deadline_ms,
        config
            .tiers
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let outcomes = engine.estimate_batch(&requests);
    let mut served = 0;
    for out in &outcomes {
        if out.served() {
            served += 1;
        }
        println!("  {} elapsed_ms={:.1}", out.canonical(), out.elapsed_ms);
    }
    println!("served {served}/{} within deadline", outcomes.len());
    if let Some(fmt) = stats {
        emit_stats(fmt);
    }
    if served == outcomes.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parse a non-negative integer out of a snapshot `Value`.
fn stat_u64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Validate a `--stats json` snapshot: find the last JSON line of `file`,
/// check the schema version and overall shape, and enforce the counter
/// invariants the instrumentation promises (tier outcomes sum to requests,
/// cache hits + misses == lookups). Exits non-zero with a reason on any
/// violation, so CI can gate on it.
fn cmd_stats_check(file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stats-check: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(line) = text.lines().rev().find(|l| l.trim_start().starts_with('{')) else {
        eprintln!("stats-check: no JSON line found in {file}");
        return ExitCode::FAILURE;
    };
    let snap = match serde_json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("stats-check: snapshot line is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match snap.get("schema").and_then(stat_u64) {
        Some(1) => {}
        other => {
            eprintln!("stats-check: bad schema version {other:?} (want 1)");
            return ExitCode::FAILURE;
        }
    }
    let Some(serde_json::Value::Obj(counters)) = snap.get("counters") else {
        eprintln!("stats-check: `counters` object missing");
        return ExitCode::FAILURE;
    };
    let Some(serde_json::Value::Obj(histograms)) = snap.get("histograms") else {
        eprintln!("stats-check: `histograms` object missing");
        return ExitCode::FAILURE;
    };
    let counter = |name: &str| -> Option<u64> {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| stat_u64(v))
    };
    let mut failures = 0u32;
    fn check(failures: &mut u32, label: &str, lhs: u64, rhs: u64) {
        if lhs != rhs {
            eprintln!("stats-check: invariant violated: {label}: {lhs} != {rhs}");
            *failures += 1;
        }
    }
    if let Some(requests) = counter("engine.requests") {
        let outcomes = counter("engine.outcome.served").unwrap_or(0)
            + counter("engine.outcome.exhausted").unwrap_or(0)
            + counter("engine.outcome.overloaded").unwrap_or(0);
        check(
            &mut failures,
            "served+exhausted+overloaded == engine.requests",
            outcomes,
            requests,
        );
    }
    if let Some(lookups) = counter("engine.cache.lookups") {
        let traffic =
            counter("engine.cache.hits").unwrap_or(0) + counter("engine.cache.misses").unwrap_or(0);
        check(
            &mut failures,
            "hits+misses == engine.cache.lookups",
            traffic,
            lookups,
        );
    }
    if let Some(lookups) = counter("analysis.cache.lookups") {
        let traffic = counter("analysis.cache.hits").unwrap_or(0)
            + counter("analysis.cache.misses").unwrap_or(0);
        check(
            &mut failures,
            "hits+misses == analysis.cache.lookups",
            traffic,
            lookups,
        );
        // eviction can never outpace insertion
        let misses = counter("analysis.cache.misses").unwrap_or(0);
        if counter("analysis.cache.evictions").unwrap_or(0) > misses {
            eprintln!("stats-check: invariant violated: analysis.cache.evictions > misses");
            failures += 1;
        }
    }
    for (name, v) in histograms {
        let (count, sum) = (
            v.get("count").and_then(stat_u64),
            v.get("sum").and_then(stat_u64),
        );
        if count.is_none() || sum.is_none() {
            eprintln!("stats-check: histogram `{name}` missing count/sum");
            failures += 1;
            continue;
        }
        let bucket_total: u64 = match v.get("buckets") {
            Some(serde_json::Value::Obj(buckets)) => {
                buckets.iter().filter_map(|(_, c)| stat_u64(c)).sum()
            }
            _ => {
                eprintln!("stats-check: histogram `{name}` missing buckets");
                failures += 1;
                continue;
            }
        };
        check(
            &mut failures,
            &format!("histogram `{name}` bucket sum == count"),
            bucket_total,
            count.unwrap_or(0),
        );
    }
    if failures > 0 {
        eprintln!("stats-check: {failures} failure(s) in {file}");
        return ExitCode::FAILURE;
    }
    println!(
        "stats OK: {} counters, {} histograms",
        counters.len(),
        histograms.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(|s| s.as_str());
    match it.next() {
        Some("list") => cmd_list(),
        Some("analyze") => match it.next() {
            Some(m) => cmd_analyze(m),
            None => return usage(),
        },
        Some("profile") => match (it.next(), it.next()) {
            (Some(m), Some(d)) => cmd_profile(m, d),
            _ => return usage(),
        },
        Some("predict") => {
            let rest: Vec<&str> = it.collect();
            let Some(model) = rest.first() else {
                return usage();
            };
            let all = rest.contains(&"--all-devices");
            let kind = regressor_of(
                rest.iter()
                    .position(|a| *a == "--regressor")
                    .and_then(|i| rest.get(i + 1).copied()),
            );
            let device = rest.get(1).filter(|d| !d.starts_with("--")).copied();
            cmd_predict(model, device, all, kind);
        }
        Some("rank") => {
            let rest: Vec<&str> = it.collect();
            let Some(model) = rest.first().filter(|m| !m.starts_with("--")) else {
                return usage();
            };
            let stats = rest
                .iter()
                .position(|a| *a == "--stats")
                .and_then(|i| rest.get(i + 1).copied())
                .and_then(StatsFormat::parse);
            cmd_rank(model, stats);
        }
        Some("corpus") => {
            let rest: Vec<&str> = it.collect();
            return cmd_corpus(&rest);
        }
        Some("estimate") => {
            let rest: Vec<&str> = it.collect();
            return cmd_estimate(&rest);
        }
        Some("stats-check") => match it.next() {
            Some(f) => return cmd_stats_check(f),
            None => return usage(),
        },
        Some("ptx") => match it.next() {
            Some(m) => {
                let model = model_or_exit(m);
                let plan = ptx_codegen::lower(&model, "sm_61").expect("lowering");
                print!("{}", ptx::printer::module(&plan.module));
            }
            None => return usage(),
        },
        Some("dot") => match it.next() {
            Some(m) => print!("{}", cnn_ir::to_dot(&model_or_exit(m))),
            None => return usage(),
        },
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
