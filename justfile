# Development tasks. `just ci` is what the GitHub Actions workflow runs.

default: ci

# Format check + lints + tests: the merge gate.
ci: fmt-check clippy test

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all -- --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test -q --workspace

# Fault/chaos acceptance suites. Seeds are fixed in the test sources, so a
# pass is reproducible byte-for-byte; `timeout` is the last-resort watchdog
# should the deadline machinery itself wedge.
chaos:
    timeout 600 cargo test -q --test chaos_engine --test fault_tolerance
    timeout 300 cargo test -q -p cnnperf-core --test breaker_props

build:
    cargo build --release --workspace

# End-to-end acceptance drill for the estimation server: start the daemon
# on a Unix socket, run a mixed-QoS NDJSON burst that includes malformed /
# oversized / unknown-op frames, then SIGTERM it and require a clean
# graceful drain (exit 0, typed outcomes throughout, no panics). The
# seeded protocol/scheduler chaos suite rides along.
serve-smoke:
    cargo build --release
    timeout 300 cargo run --release --example serve_smoke
    timeout 600 cargo test -q --test server_robustness --test server_coalesce

# Load test: 16 connections pipeline 10k+ concurrent requests at the
# daemon. Asserts interactive p99 stays under its deadline and that load
# shedding hits best-effort first (never interactive), then drains.
serve-bench:
    cargo build --release
    timeout 900 cargo run --release --example serve_bench

# Regenerate every paper table/figure (writes CSVs under target/figures/).
tables:
    cargo run --release -p cnnperf-bench --bin table1_model_zoo
    cargo run --release -p cnnperf-bench --bin table2_regressors
    cargo run --release -p cnnperf-bench --bin table3_importance
    cargo run --release -p cnnperf-bench --bin fig4_pred_vs_actual
    cargo run --release -p cnnperf-bench --bin table4_speedup

# Robust corpus build under the harsh fault preset, with health report.
corpus-harsh:
    cargo run --release -- corpus --runs 5 --fault-profile harsh

# End-to-end observability smoke: run a small estimation batch with
# `--stats json`, then validate the snapshot's schema and counter
# invariants with `stats-check`. Two Pascal (sm_61) devices guarantee
# warm analysis-cache traffic, so the `analysis.cache.*` invariants
# (hits + misses == lookups, evictions <= misses) are exercised for real.
stats-smoke:
    mkdir -p target
    cargo run --release -- estimate "alexnet,mobilenet" "GTX 1080 Ti,Titan Xp,V100S" \
        --tiers analytical --deadline-ms 60000 --stats json > target/stats-smoke.out
    cargo run --release -- stats-check target/stats-smoke.out

# Kill-resume smoke: SIGKILL a journaled corpus build mid-flight, resume
# it, and require the resumed canonical corpus to be byte-identical to an
# uninterrupted build's. `stats-check` gates the journal.* / supervise.*
# counter invariants on the resumed run's snapshot.
resume-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo build --release
    bin=target/release/cnnperf
    dir=target/resume-smoke
    rm -rf "$dir" && mkdir -p "$dir"
    "$bin" corpus --journal-dir "$dir/journal" --out "$dir/interrupted.json" &
    pid=$!
    sleep 5
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo "--- resuming after SIGKILL ---"
    "$bin" corpus --journal-dir "$dir/journal" --resume --cell-timeout-ms 60000 \
        --out "$dir/resumed.json" --stats json > "$dir/resume.out"
    "$bin" stats-check "$dir/resume.out"
    grep -q '"journal.replayed":' "$dir/resume.out" || { echo "no cells replayed"; exit 1; }
    echo "--- clean uninterrupted build ---"
    "$bin" corpus --out "$dir/clean.json"
    cmp "$dir/resumed.json" "$dir/clean.json"
    echo "resume-smoke OK: resumed corpus is byte-identical to a clean build"

# Lifecycle smoke: serve with a snapshot store, then replay the crash
# story of a SIGKILL landing mid-snapshot-write (a torn next-version file
# plus an orphaned temp file). The restarted server must quarantine the
# torn snapshot, cold-start from the previous valid version, and answer
# byte-identically to the pre-crash run — generation attribution
# included. `stats-check` gates the modelstore.* / lifecycle.* invariants
# on the restarted run's snapshot.
lifecycle-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo build --release
    bin=target/release/cnnperf
    dir=target/lifecycle-smoke
    mdir="$dir/models"
    rm -rf "$dir" && mkdir -p "$dir"
    # arm the shared corpus cache (full paper corpus; instant when warm)
    "$bin" predict alexnet "GTX 1080 Ti" > /dev/null
    req='{"id":"smoke","model":"alexnet","device":"GTX 1080 Ti"}'
    echo "--- first run: cold-start trains from corpus, snapshots v1 ---"
    echo "$req" | "$bin" serve --model-dir "$mdir" --tiers regressor --stats-dump json \
        > "$dir/first.out" 2> "$dir/first.err"
    grep -q 'cold-start trained from corpus' "$dir/first.err"
    "$bin" models list --model-dir "$mdir" | grep -q 'v000001'
    echo "--- crash story: snapshot write torn by SIGKILL ---"
    head -c 100 "$mdir/predictor-v000001.json" > "$mdir/predictor-v000002.json"
    printf '{"torn":' > "$mdir/predictor-v000002.json.tmp.99999"
    echo "--- restart: torn file quarantined, v1 serves byte-identically ---"
    echo "$req" | "$bin" serve --model-dir "$mdir" --tiers regressor --stats-dump json \
        > "$dir/second.out" 2> "$dir/second.err"
    grep -q 'cold-start from snapshot v1' "$dir/second.err"
    test -f "$mdir/predictor-v000002.json.corrupt"
    test ! -e "$mdir/predictor-v000002.json.tmp.99999"
    grep '"id":"smoke"' "$dir/first.out" > "$dir/first.resp"
    grep '"id":"smoke"' "$dir/second.out" > "$dir/second.resp"
    cmp "$dir/first.resp" "$dir/second.resp"
    grep -q '"generation":1' "$dir/second.resp"
    "$bin" stats-check "$dir/second.out"
    "$bin" models pin 1 --model-dir "$mdir"
    "$bin" models list --model-dir "$mdir" | grep -q 'pinned'
    "$bin" models unpin --model-dir "$mdir"
    echo "lifecycle-smoke OK: torn snapshot quarantined, v1 served byte-identically"

# Decode-reuse ablation for the DCA interpreter. Besides the criterion
# groups, emits target/figures/dca_counting.bench.json (the BENCH
# artifact: decode-per-count vs shared dense program, plus the poly
# counting-tier group) and the obs stats sidecar.
bench-dca:
    cargo bench -p cnnperf-bench --bench dca_counting

# Regenerate the poly counting-tier artifact: per-launch interpreter vs
# compiled trip-count polynomial timings with the median speedup headline
# (target/figures/dca_counting.bench.json, `dca_poly_counting` line).
bench-poly:
    cargo bench -p cnnperf-bench --bench dca_counting -- counting/poly

# Poly counting-tier equivalence gate: the zoo-wide bit-identical
# PlanCount matrix, the randomized kernel property suite, and the
# ptx.poly.* counter invariants over real estimation traffic.
poly-equivalence:
    cargo test -q --test counting_equivalence
    cargo test -q -p ptx-analysis --test poly_prop
    cargo run --release -- estimate "alexnet,mobilenet" "GTX 1080 Ti,V100S" \
        --tiers analytical --deadline-ms 60000 --stats json > target/poly-smoke.out
    cargo run --release -- stats-check target/poly-smoke.out
    grep -q '"ptx.poly.compiled":' target/poly-smoke.out
