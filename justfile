# Development tasks. `just ci` is what the GitHub Actions workflow runs.

default: ci

# Format check + lints + tests: the merge gate.
ci: fmt-check clippy test

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all -- --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test -q --workspace

# Fault/chaos acceptance suites. Seeds are fixed in the test sources, so a
# pass is reproducible byte-for-byte; `timeout` is the last-resort watchdog
# should the deadline machinery itself wedge.
chaos:
    timeout 600 cargo test -q --test chaos_engine --test fault_tolerance
    timeout 300 cargo test -q -p cnnperf-core --test breaker_props

build:
    cargo build --release --workspace

# End-to-end acceptance drill for the estimation server: start the daemon
# on a Unix socket, run a mixed-QoS NDJSON burst that includes malformed /
# oversized / unknown-op frames, then SIGTERM it and require a clean
# graceful drain (exit 0, typed outcomes throughout, no panics). The
# seeded protocol/scheduler chaos suite rides along.
serve-smoke:
    cargo build --release
    timeout 300 cargo run --release --example serve_smoke
    timeout 600 cargo test -q --test server_robustness --test server_coalesce

# Load test: 16 connections pipeline 10k+ concurrent requests at the
# daemon. Asserts interactive p99 stays under its deadline and that load
# shedding hits best-effort first (never interactive), then drains.
serve-bench:
    cargo build --release
    timeout 900 cargo run --release --example serve_bench

# Regenerate every paper table/figure (writes CSVs under target/figures/).
tables:
    cargo run --release -p cnnperf-bench --bin table1_model_zoo
    cargo run --release -p cnnperf-bench --bin table2_regressors
    cargo run --release -p cnnperf-bench --bin table3_importance
    cargo run --release -p cnnperf-bench --bin fig4_pred_vs_actual
    cargo run --release -p cnnperf-bench --bin table4_speedup

# Robust corpus build under the harsh fault preset, with health report.
corpus-harsh:
    cargo run --release -- corpus --runs 5 --fault-profile harsh

# End-to-end observability smoke: run a small estimation batch with
# `--stats json`, then validate the snapshot's schema and counter
# invariants with `stats-check`. Two Pascal (sm_61) devices guarantee
# warm analysis-cache traffic, so the `analysis.cache.*` invariants
# (hits + misses == lookups, evictions <= misses) are exercised for real.
stats-smoke:
    mkdir -p target
    cargo run --release -- estimate "alexnet,mobilenet" "GTX 1080 Ti,Titan Xp,V100S" \
        --tiers analytical --deadline-ms 60000 --stats json > target/stats-smoke.out
    cargo run --release -- stats-check target/stats-smoke.out

# Kill-resume smoke: SIGKILL a journaled corpus build mid-flight, resume
# it, and require the resumed canonical corpus to be byte-identical to an
# uninterrupted build's. `stats-check` gates the journal.* / supervise.*
# counter invariants on the resumed run's snapshot.
resume-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo build --release
    bin=target/release/cnnperf
    dir=target/resume-smoke
    rm -rf "$dir" && mkdir -p "$dir"
    "$bin" corpus --journal-dir "$dir/journal" --out "$dir/interrupted.json" &
    pid=$!
    sleep 5
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo "--- resuming after SIGKILL ---"
    "$bin" corpus --journal-dir "$dir/journal" --resume --cell-timeout-ms 60000 \
        --out "$dir/resumed.json" --stats json > "$dir/resume.out"
    "$bin" stats-check "$dir/resume.out"
    grep -q '"journal.replayed":' "$dir/resume.out" || { echo "no cells replayed"; exit 1; }
    echo "--- clean uninterrupted build ---"
    "$bin" corpus --out "$dir/clean.json"
    cmp "$dir/resumed.json" "$dir/clean.json"
    echo "resume-smoke OK: resumed corpus is byte-identical to a clean build"

# Decode-reuse ablation for the DCA interpreter. Besides the criterion
# groups, emits target/figures/dca_counting.bench.json (the BENCH
# artifact: decode-per-count vs shared dense program) and the obs stats
# sidecar with the ptx.exec.decodes counter.
bench-dca:
    cargo bench -p cnnperf-bench --bench dca_counting
