//! The CLI's exit-code taxonomy is a contract with scripts and CI: each
//! distinguishable operational condition maps to its own code, so callers
//! branch on `$?` instead of scraping stderr. One test per code.
//!
//! 0 success | 1 failure | 2 usage/config | 3 overloaded |
//! 4 deadline exceeded | 5 corrupt cache/journal | 6 server bind error |
//! 7 model store init failure

use std::path::PathBuf;
use std::process::Command;

fn cnnperf() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cnnperf"));
    // point the corpus cache somewhere absent so estimate's tiers degrade
    // deterministically instead of picking up a developer's warm cache
    cmd.env("CNNPERF_CORPUS", scratch("no-corpus-cache.json"));
    cmd
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cnnperf-exit-test-{}-{name}", std::process::id()))
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output()
        .expect("spawn cnnperf")
        .status
        .code()
        .expect("exit code (not signal-killed)")
}

#[test]
fn no_arguments_is_usage_error() {
    assert_eq!(exit_code(&mut cnnperf()), 2);
}

#[test]
fn unknown_flag_is_usage_error() {
    assert_eq!(exit_code(cnnperf().args(["corpus", "--bogus"])), 2);
}

#[test]
fn unknown_model_is_usage_error() {
    assert_eq!(exit_code(cnnperf().args(["analyze", "nonexistent-net"])), 2);
}

#[test]
fn hang_chaos_without_watchdog_is_config_error() {
    // an unwatched hang would wedge the build forever; the CLI refuses
    let code = exit_code(cnnperf().args(["corpus", "--models", "alexnet", "--chaos", "hang=1.0"]));
    assert_eq!(code, 2);
}

#[test]
fn resume_without_journal_dir_is_usage_error() {
    assert_eq!(exit_code(cnnperf().args(["corpus", "--resume"])), 2);
}

#[test]
fn overloaded_batch_exits_3() {
    // queue capacity 1 against a 3-request batch: the engine sheds load
    let code = exit_code(cnnperf().args([
        "estimate",
        "alexnet,mobilenet,vgg16",
        "GTX 1080 Ti",
        "--queue-capacity",
        "1",
        "--tiers",
        "analytical",
    ]));
    assert_eq!(code, 3);
}

#[test]
fn deadline_exceeded_exits_4() {
    // a 1 ms deadline with only the detailed tier cannot be served, and
    // nothing is load-shed, so the failure is a deadline miss
    let code = exit_code(cnnperf().args([
        "estimate",
        "vgg16",
        "GTX 1080 Ti",
        "--deadline-ms",
        "1",
        "--tiers",
        "detailed",
    ]));
    assert_eq!(code, 4);
}

#[test]
fn serve_bind_failure_exits_6() {
    // the socket's parent directory does not exist, so bind must fail
    let sock = scratch("no-such-dir").join("server.sock");
    let code = exit_code(cnnperf().args(["serve", "--socket", sock.to_str().expect("utf8 path")]));
    assert_eq!(code, 6);
}

#[test]
fn serve_metrics_bind_failure_exits_6() {
    // an unresolvable metrics address fails the second bind
    let sock = scratch("serve-metrics.sock");
    let _ = std::fs::remove_file(&sock);
    let code = exit_code(cnnperf().args([
        "serve",
        "--socket",
        sock.to_str().expect("utf8 path"),
        "--metrics",
        "999.999.999.999:0",
    ]));
    let _ = std::fs::remove_file(&sock);
    assert_eq!(code, 6);
}

#[test]
fn serve_metrics_without_socket_is_usage_error() {
    assert_eq!(
        exit_code(cnnperf().args(["serve", "--metrics", "127.0.0.1:9095"])),
        2
    );
}

#[test]
fn serve_unusable_model_dir_exits_7() {
    // a path under a file cannot become a directory, so store init fails
    let blocker = scratch("modelstore-blocker");
    std::fs::write(&blocker, "not a directory").expect("write blocker");
    let dir = blocker.join("store");
    let code =
        exit_code(cnnperf().args(["serve", "--model-dir", dir.to_str().expect("utf8 path")]));
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(code, 7);
}

#[test]
fn models_unusable_model_dir_exits_7() {
    let blocker = scratch("models-blocker");
    std::fs::write(&blocker, "not a directory").expect("write blocker");
    let dir = blocker.join("store");
    let code = exit_code(cnnperf().args([
        "models",
        "list",
        "--model-dir",
        dir.to_str().expect("utf8 path"),
    ]));
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(code, 7);
}

#[test]
fn models_rollback_of_empty_store_exits_7() {
    let dir = scratch("empty-store");
    let _ = std::fs::remove_dir_all(&dir);
    let code = exit_code(cnnperf().args([
        "models",
        "rollback",
        "--model-dir",
        dir.to_str().expect("utf8 path"),
    ]));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(code, 7);
}

#[test]
fn models_without_action_is_usage_error() {
    assert_eq!(exit_code(cnnperf().args(["models"])), 2);
    assert_eq!(exit_code(cnnperf().args(["models", "list"])), 2); // no --model-dir
}

#[test]
fn strict_resume_from_corrupt_journal_exits_5() {
    let dir = scratch("corrupt-journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    // a record that cannot possibly pass the checksum
    std::fs::write(
        dir.join("segment-00000.jsonl"),
        "deadbeefdeadbeef {\"garbage\"\n",
    )
    .expect("write corrupt segment");
    let code = exit_code(cnnperf().args([
        "corpus",
        "--models",
        "alexnet",
        "--journal-dir",
        dir.to_str().expect("utf8 dir"),
        "--resume",
        "--strict",
    ]));
    assert_eq!(code, 5);
}
