//! Chaos suite for the deadline-aware tiered estimation engine.
//!
//! The availability contract under test: **every** request returns a
//! classified [`EstimateOutcome`] within deadline + 10%, no matter which
//! tiers hang, panic or crawl — and a fixed chaos seed replays the exact
//! same outcomes byte for byte (wall time excluded).
//!
//! All chaos here is deterministic: fault draws are pure functions of
//! `(seed, model, device, tier)`, the circuit breakers run on logical
//! request ticks, and the storm avoids borderline time races by keeping
//! injected delays far from the per-tier slices.

use cnnperf_core::prelude::*;
use cnnperf_core::{OutcomeKind, TierFailure};
use gpu_sim::{ChaosInjector, ChaosProfile, TierFaultKind};

const DEADLINE_MS: u64 = 2500;
const CHAOS_SEED: u64 = 20260807;

/// Small, fast models only: tier work must fit its slice with a wide
/// margin so timing noise can never flip a success into a timeout.
fn storm_requests() -> Vec<(String, String)> {
    let models = ["mobilenet", "alexnet", "efficientnetb0", "nasnetmobile"];
    let devices = ["GTX 1080 Ti", "V100S"];
    models
        .iter()
        .flat_map(|m| devices.iter().map(move |d| (m.to_string(), d.to_string())))
        .collect()
}

fn storm_config() -> EngineConfig {
    EngineConfig {
        deadline_ms: DEADLINE_MS,
        // the detailed tier is exercised by the targeted tests below; the
        // storm runs the cheap tiers so every non-faulted invocation
        // finishes orders of magnitude inside its slice
        tiers: vec![Tier::Analytical, Tier::Regressor, Tier::StaleCache],
        chaos: ChaosProfile {
            hang_rate: 0.3,
            panic_rate: 0.3,
            slow_rate: 0.2,
            slow_ms: 25,
            seed: CHAOS_SEED,
        },
        ..EngineConfig::default()
    }
}

#[test]
fn chaos_storm_every_request_classified_within_deadline() {
    let requests = storm_requests();
    let mut engine = ResilientEngine::new(storm_config());
    let outcomes = engine.estimate_batch(&requests);
    assert_eq!(outcomes.len(), requests.len(), "no request may vanish");
    let budget_ms = DEADLINE_MS as f64 * 1.1;
    let mut degradations = 0;
    for out in &outcomes {
        assert!(
            out.elapsed_ms <= budget_ms,
            "{}@{} blew the deadline: {:.1} ms > {budget_ms} ms",
            out.model,
            out.device,
            out.elapsed_ms
        );
        match &out.kind {
            OutcomeKind::Served { .. } => {
                assert!(out.ipc.unwrap_or(0.0) > 0.0, "served without a value");
            }
            OutcomeKind::Exhausted => {
                assert!(
                    !out.attempts.is_empty(),
                    "exhausted outcome must explain itself"
                );
            }
            OutcomeKind::Overloaded => panic!("storm batch fits the queue"),
        }
        degradations += out.attempts.len();
    }
    assert!(
        degradations > 0,
        "a 0.8 total fault rate storm must cause visible degradations"
    );
}

#[test]
fn fixed_seed_chaos_runs_are_byte_identical() {
    let requests = storm_requests();
    let render = || {
        let mut engine = ResilientEngine::new(storm_config());
        engine
            .estimate_batch(&requests)
            .iter()
            .map(|o| o.canonical())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "fixed-seed chaos replay diverged");
    assert!(!first.is_empty());
}

/// Find a chaos seed whose fault draw hangs one tier and leaves another
/// clean for the given (model, device) — a deterministic way to target
/// faults at a single tier through the rate-based injector.
fn seed_with(
    model: &str,
    device: &str,
    hung_tier: Tier,
    clean_tier: Tier,
    profile: fn(u64) -> ChaosProfile,
) -> u64 {
    (0..10_000u64)
        .find(|&seed| {
            let inj = ChaosInjector::new(profile(seed));
            inj.tier_fault(model, device, hung_tier.name()) == TierFaultKind::Hang
                && inj.tier_fault(model, device, clean_tier.name()) == TierFaultKind::None
        })
        .expect("no suitable seed in 10k — rates too extreme?")
}

#[test]
fn hung_detailed_tier_degrades_to_analytical_within_deadline() {
    let (model, device) = ("mobilenet", "V100S");
    let profile = |seed| ChaosProfile {
        hang_rate: 0.5,
        panic_rate: 0.0,
        slow_rate: 0.0,
        slow_ms: 0,
        seed,
    };
    let seed = seed_with(model, device, Tier::Detailed, Tier::Analytical, profile);
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: DEADLINE_MS,
        tiers: vec![Tier::Detailed, Tier::Analytical],
        chaos: profile(seed),
        ..EngineConfig::default()
    });
    let out = engine.estimate(model, device);
    assert_eq!(
        out.kind,
        OutcomeKind::Served {
            tier: Tier::Analytical
        },
        "expected analytical fallback, path {:?}",
        out.attempts
    );
    assert_eq!(out.attempts.len(), 1);
    assert_eq!(out.attempts[0].tier, Tier::Detailed);
    assert_eq!(out.attempts[0].failure, TierFailure::Timeout);
    assert!(
        out.elapsed_ms <= DEADLINE_MS as f64 * 1.1,
        "degradation took {:.1} ms",
        out.elapsed_ms
    );
    assert!(out.ipc.unwrap() > 0.0);
}

#[test]
fn injected_panics_are_contained_not_fatal() {
    // every worker tier panics; the batch must still finish, classified
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: DEADLINE_MS,
        tiers: vec![Tier::Analytical, Tier::StaleCache],
        chaos: ChaosProfile {
            hang_rate: 0.0,
            panic_rate: 1.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: CHAOS_SEED,
        },
        ..EngineConfig::default()
    });
    let requests: Vec<(String, String)> = vec![
        ("mobilenet".into(), "V100S".into()),
        ("alexnet".into(), "V100S".into()),
    ];
    let outcomes = engine.estimate_batch(&requests);
    assert_eq!(outcomes.len(), 2);
    for out in &outcomes {
        assert_eq!(out.kind, OutcomeKind::Exhausted);
        assert!(
            matches!(&out.attempts[0].failure, TierFailure::Panic(m) if m.contains("injected")),
            "path {:?}",
            out.attempts
        );
        assert_eq!(out.attempts[1].failure, TierFailure::CacheMiss);
    }
}

#[test]
fn breaker_opens_under_sustained_tier_failure_and_saves_deadline_budget() {
    // all-hang chaos on the analytical tier: after min_samples failures
    // the breaker opens and later requests skip the tier without burning
    // their slice waiting on it
    let breaker = BreakerConfig::default();
    let min_samples = breaker.min_samples;
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: 400,
        tiers: vec![Tier::Analytical, Tier::StaleCache],
        breaker,
        chaos: ChaosProfile {
            hang_rate: 1.0,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: CHAOS_SEED,
        },
        ..EngineConfig::default()
    });
    let requests: Vec<(String, String)> = (0..8)
        .map(|i| (format!("m{i}"), "V100S".to_string()))
        .collect();
    let outcomes = engine.estimate_batch(&requests);
    // early requests time out against the hung tier...
    for out in &outcomes[..min_samples] {
        assert_eq!(
            out.attempts[0].failure,
            TierFailure::Timeout,
            "{:?}",
            out.kind
        );
    }
    // ...then the breaker opens and the remainder fail fast
    assert_eq!(engine.breaker_state(Tier::Analytical), BreakerState::Open);
    for out in &outcomes[min_samples..] {
        assert_eq!(
            out.attempts[0].failure,
            TierFailure::BreakerOpen,
            "path {:?}",
            out.attempts
        );
        assert!(
            out.elapsed_ms < 100.0,
            "breaker-open path must not wait on the tier: {:.1} ms",
            out.elapsed_ms
        );
    }
}

#[test]
fn overload_is_shed_with_explicit_outcome() {
    let mut engine = ResilientEngine::new(EngineConfig {
        queue_capacity: 2,
        tiers: vec![Tier::StaleCache],
        ..EngineConfig::default()
    });
    let requests: Vec<(String, String)> = (0..5)
        .map(|i| (format!("m{i}"), "V100S".to_string()))
        .collect();
    let outcomes = engine.estimate_batch(&requests);
    let overloaded = outcomes
        .iter()
        .filter(|o| o.kind == OutcomeKind::Overloaded)
        .count();
    assert_eq!(overloaded, 3, "3 of 5 requests exceed capacity 2");
    for out in &outcomes[2..] {
        assert_eq!(out.kind, OutcomeKind::Overloaded);
        assert!(out.canonical().contains("overloaded"));
    }
}

#[test]
fn regressor_tier_serves_with_trained_predictor() {
    // a tiny corpus arms the regressor tier; with the expensive tiers
    // disabled the ladder serves from the paper's model
    let models: Vec<cnn_ir::ModelGraph> = ["mobilenet", "alexnet"]
        .iter()
        .map(|m| cnn_ir::zoo::build(m).unwrap())
        .collect();
    let devices = vec![gpu_sim::specs::quadro_p1000()];
    let corpus = build_corpus(&models, &devices).unwrap();
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: 30_000,
        tiers: vec![Tier::Regressor],
        ..EngineConfig::default()
    })
    .with_predictor(predictor);
    let out = engine.estimate("mobilenet", "Quadro P1000");
    assert_eq!(
        out.kind,
        OutcomeKind::Served {
            tier: Tier::Regressor
        },
        "path {:?}",
        out.attempts
    );
    assert!(out.ipc.unwrap() > 0.0);
    assert!(out.latency_ms.is_none(), "the regressor predicts IPC only");
}

#[test]
fn stale_cache_is_the_floor_under_total_tier_failure() {
    // warm the cache, then hang everything above it: requests degrade all
    // the way down but still return a (stale) value
    let models: Vec<cnn_ir::ModelGraph> = vec![cnn_ir::zoo::build("mobilenet").unwrap()];
    let devices = vec![gpu_sim::specs::v100s()];
    let corpus = build_corpus(&models, &devices).unwrap();
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: 1200,
        tiers: vec![Tier::Analytical, Tier::StaleCache],
        chaos: ChaosProfile {
            hang_rate: 1.0,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: CHAOS_SEED,
        },
        ..EngineConfig::default()
    });
    engine.warm_from_corpus(&corpus);
    let out = engine.estimate("mobilenet", "V100S");
    assert_eq!(
        out.kind,
        OutcomeKind::Served {
            tier: Tier::StaleCache
        },
        "path {:?}",
        out.attempts
    );
    assert_eq!(out.attempts[0].failure, TierFailure::Timeout);
    assert_eq!(out.ipc.unwrap(), corpus.samples[0].ipc);
    assert!(out.elapsed_ms <= 1200.0 * 1.1);
}
