//! Deterministic chaos harness for the estimation server (the issue's
//! acceptance suite): malformed / oversized / slow-loris input, client
//! disconnects mid-request, hung tiers, queue-full storms, and forced
//! drains. The oracle throughout: **no panics, no wedges, every admitted
//! request gets exactly one typed outcome**, and fixed-seed chaos replays
//! produce byte-identical result payloads.

use cnnperf_core::server::protocol::EstimateRequest;
use cnnperf_core::server::{
    run_session, QosClass, QosPolicy, Scheduler, ServerConfig, SessionEnd, SubmitError,
};
use cnnperf_core::Tier;
use gpu_sim::ChaosProfile;
use std::io::Write;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn request(id: &str, model: &str, device: &str, qos: QosClass) -> EstimateRequest {
    EstimateRequest {
        id: id.to_string(),
        model: model.to_string(),
        device: device.to_string(),
        qos,
        deadline_ms: None,
    }
}

/// Single worker, analytical tier only, tight class deadlines.
fn fast_config() -> ServerConfig {
    let mut cfg = ServerConfig {
        workers: 1,
        max_retries: 0,
        revalidate_stale: false,
        ..ServerConfig::default()
    };
    cfg.engine.tiers = vec![Tier::Analytical];
    cfg.policy = QosPolicy {
        deadline_ms: [400, 400, 400],
        queue_quota: [8, 4, 2],
    };
    cfg
}

/// Every tier invocation sleeps `ms` first (cancellably): jobs become
/// slow enough to observe mid-flight without being flaky.
fn slow_chaos(ms: u64) -> ChaosProfile {
    ChaosProfile {
        hang_rate: 0.0,
        panic_rate: 0.0,
        slow_rate: 1.0,
        slow_ms: ms,
        seed: 1,
    }
}

fn counter(name: &str) -> u64 {
    obs::global().snapshot().counter(name)
}

fn recv_all(rx: &Receiver<String>, n: usize, per_frame: Duration) -> Vec<String> {
    (0..n)
        .map(|i| {
            rx.recv_timeout(per_frame)
                .unwrap_or_else(|e| panic!("response {i}/{n} never arrived: {e}"))
        })
        .collect()
}

/// Extract the `"id"` of a response frame (they arrive in completion
/// order, not submission order).
fn frame_id(frame: &str) -> String {
    let v = serde_json::parse(frame).expect("response frame is valid JSON");
    match v.get("id") {
        Some(serde_json::Value::Str(s)) => s.clone(),
        other => panic!("frame without string id ({other:?}): {frame}"),
    }
}

/// Spin until the scheduler's queues are empty (the worker has popped
/// everything submitted so far) so subsequent quota math is exact.
fn wait_for_empty_queues(scheduler: &Scheduler) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while scheduler.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never picked up the job");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn storm_sheds_best_effort_before_interactive() {
    // one worker and 1.5 s-slow jobs: a blocker occupies the worker while
    // the storm arrives, so every quota decision sees the queues as built
    let mut cfg = fast_config();
    cfg.engine.chaos = slow_chaos(1_500);
    cfg.policy = QosPolicy {
        deadline_ms: [5_000, 5_000, 5_000],
        queue_quota: [8, 4, 2],
    };
    let shed_interactive_before = counter("server.shed.interactive");
    let shed_best_effort_before = counter("server.shed.best-effort");
    let scheduler = Scheduler::start(&cfg, None, None);

    let (blocker_tx, _blocker_rx) = channel();
    scheduler
        .submit(
            request("blocker", "vgg16", "GTX 1080 Ti", QosClass::Batch),
            blocker_tx,
        )
        .expect("blocker admitted");
    wait_for_empty_queues(&scheduler);

    // 12 distinct (model, device) keys per class — distinct *across*
    // classes too, so nothing coalesces and quota math is exact
    let models = ["alexnet", "mobilenet", "resnet50", "squeezenet1.0"];
    let devices = ["GTX 1080 Ti", "Tesla K40", "GTX TITAN X"];
    let (tx, _rx) = channel();
    let mut shed = [0usize; 3];
    let mut admitted = [0usize; 3];
    for class in [QosClass::Interactive, QosClass::BestEffort] {
        let mut j = 0;
        for m in models {
            for d in devices {
                let id = format!("{}-{j}", class.name());
                // suffixing the device keeps the two classes' key spaces
                // disjoint; an unknown device still yields a typed outcome
                let device = format!("{d}#{}", class.name());
                j += 1;
                match scheduler.submit(request(&id, m, &device, class), tx.clone()) {
                    Ok(()) => admitted[class.priority()] += 1,
                    Err(SubmitError::Shed { class: c }) => {
                        assert_eq!(c, class);
                        shed[class.priority()] += 1;
                    }
                    Err(other) => panic!("unexpected rejection: {other:?}"),
                }
            }
        }
    }

    // interactive (quota 8) keeps most of its 12; best-effort (quota 2)
    // sheds nearly everything — strictly more, and first
    assert_eq!(admitted[QosClass::Interactive.priority()], 8);
    assert_eq!(shed[QosClass::Interactive.priority()], 4);
    assert_eq!(admitted[QosClass::BestEffort.priority()], 2);
    assert_eq!(shed[QosClass::BestEffort.priority()], 10);
    assert!(shed[QosClass::BestEffort.priority()] > shed[QosClass::Interactive.priority()]);

    // the per-class shed counters the stats-check gate validates
    assert_eq!(
        counter("server.shed.interactive") - shed_interactive_before,
        4
    );
    assert_eq!(
        counter("server.shed.best-effort") - shed_best_effort_before,
        10
    );

    // queued jobs are 1.5 s each on one worker: force the flush and make
    // sure the storm's waiters all get typed outcomes
    let report = scheduler.drain(Duration::from_millis(20));
    assert!(
        report.forced,
        "20 ms budget must force the flush: {report:?}"
    );
    assert!(report.flushed >= 10, "queued waiters flushed: {report:?}");
}

#[test]
fn hung_tiers_yield_typed_outcomes_and_deterministic_replays() {
    let run_once = || {
        let mut cfg = fast_config();
        cfg.engine.chaos = ChaosProfile {
            hang_rate: 1.0, // every tier invocation hangs until cancelled
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: 42,
        };
        cfg.max_retries = 1;
        cfg.retry_backoff_ms = 1;
        let scheduler = Scheduler::start(&cfg, None, None);
        let (tx, rx) = channel();
        scheduler
            .submit(
                request("h1", "alexnet", "GTX 1080 Ti", QosClass::Interactive),
                tx,
            )
            .expect("admitted");
        let frame = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("hung tier still resolves to a typed outcome");
        scheduler.drain(Duration::from_secs(5));
        frame
    };
    let frame = run_once();
    assert!(
        frame.contains("\"ok\":true") && frame.contains("\"outcome\":\"exhausted\""),
        "expected a typed exhausted outcome, got: {frame}"
    );
    assert!(
        frame.contains("analytical:timeout"),
        "the hang must surface as a tier timeout: {frame}"
    );
    assert!(
        frame.contains("\"retries\":1"),
        "a transient exhaustion retries once: {frame}"
    );
    // same seed, same config -> byte-identical response (the retry
    // backoff jitter and chaos draws are all deterministic)
    assert_eq!(
        frame,
        run_once(),
        "fixed-seed chaos replay must be identical"
    );
}

#[test]
fn client_disconnect_mid_request_does_not_wedge_workers() {
    // jobs take >= 200 ms, so the client is guaranteed to be gone before
    // its result is ready
    let mut cfg = fast_config();
    cfg.engine.chaos = slow_chaos(200);
    let scheduler = Scheduler::start(&cfg, None, None);

    let disconnects_before = counter("server.disconnects");

    // a real socket session whose client vanishes right after asking
    let (client, server_side) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    server_side
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("timeout");
    let writer = server_side.try_clone().expect("clone");
    let sched = Arc::clone(&scheduler);
    let scfg = cfg.clone();
    let session = std::thread::spawn(move || run_session(server_side, writer, &sched, &scfg));

    {
        let mut c = &client;
        c.write_all(b"{\"id\":\"gone\",\"model\":\"alexnet\",\"device\":\"GTX 1080 Ti\"}\n")
            .expect("request written");
    }
    drop(client); // disconnect before the result can be delivered

    let end = session.join().expect("session thread must not panic");
    assert_eq!(end, SessionEnd::Eof);

    // the worker must still be alive and serving new clients
    let (tx, rx) = channel();
    scheduler
        .submit(
            request("after", "mobilenet", "GTX 1080 Ti", QosClass::Interactive),
            tx,
        )
        .expect("admitted after disconnect");
    let frame = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker survived the disconnect");
    assert!(frame.contains("\"id\":\"after\""));

    // the orphaned result was written into a dead socket and counted
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter("server.disconnects") == disconnects_before {
        assert!(Instant::now() < deadline, "orphaned response never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    scheduler.drain(Duration::from_secs(5));
}

#[test]
fn malformed_oversized_and_slow_loris_input_is_typed_never_fatal() {
    let mut cfg = fast_config();
    cfg.max_frame_bytes = 128;
    cfg.frame_stall_ms = 100;
    let scheduler = Scheduler::start(&cfg, None, None);

    let (client, server_side) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    server_side
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("timeout");
    let writer = server_side.try_clone().expect("clone");
    let sched = Arc::clone(&scheduler);
    let scfg = cfg.clone();
    let session = std::thread::spawn(move || run_session(server_side, writer, &sched, &scfg));

    let mut c = client.try_clone().expect("clone client");
    c.write_all(b"this is not json\n").expect("malformed");
    c.write_all(&vec![b'x'; 4096]).expect("oversized");
    c.write_all(b"\n").expect("newline");
    c.write_all(b"{\"op\":\"ping\",\"id\":\"still-alive\"}\n")
        .expect("ping");
    // finally: a partial frame that never completes (slow loris)
    c.write_all(b"{\"id\":\"never").expect("partial");

    use std::io::{BufRead, BufReader};
    let mut reader = BufReader::new(client);
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line
    };
    let malformed = read_line();
    assert!(
        malformed.contains("\"error\":\"malformed\""),
        "typed malformed error, got: {malformed}"
    );
    let oversized = read_line();
    assert!(
        oversized.contains("\"error\":\"oversized\""),
        "typed oversized error, got: {oversized}"
    );
    let pong = read_line();
    assert!(
        pong.contains("\"id\":\"still-alive\"") && pong.contains("pong"),
        "session must survive bad frames, got: {pong}"
    );
    let stalled = read_line();
    assert!(
        stalled.contains("\"error\":\"stalled\""),
        "slow loris must be reported, got: {stalled}"
    );
    let end = session.join().expect("session must not panic");
    assert_eq!(end, SessionEnd::Stalled, "loris connection is closed");
    scheduler.drain(Duration::from_secs(5));
}

#[test]
fn forced_drain_flushes_every_waiter_with_a_typed_outcome() {
    // 500 ms-slow jobs against a 1 ms drain budget: everything must be
    // flushed with a typed outcome, and nobody gets two frames
    let mut cfg = fast_config();
    cfg.engine.chaos = slow_chaos(500);
    cfg.policy = QosPolicy {
        deadline_ms: [30_000, 30_000, 30_000],
        queue_quota: [64, 64, 64],
    };
    let scheduler = Scheduler::start(&cfg, None, None);

    let (tx, rx) = channel();
    let ids = ["d0", "d1", "d2", "d3"];
    let models = ["vgg16", "alexnet", "mobilenet", "resnet50"];
    for (id, model) in ids.iter().zip(models) {
        scheduler
            .submit(
                request(id, model, "GTX 1080 Ti", QosClass::Batch),
                tx.clone(),
            )
            .expect("admitted");
    }
    drop(tx);

    let report = scheduler.drain(Duration::from_millis(1));
    assert!(report.forced, "1 ms budget must force the flush");
    assert!(report.flushed >= 3, "queued waiters flushed: {report:?}");

    let frames = recv_all(&rx, ids.len(), Duration::from_secs(30));
    let mut seen: Vec<String> = frames.iter().map(|f| frame_id(f)).collect();
    seen.sort();
    let mut want: Vec<String> = ids.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(seen, want, "exactly one frame per admitted request");
    for f in &frames {
        let typed = f.contains("\"error\":\"drain-deadline\"") || f.contains("\"ok\":true");
        assert!(typed, "drain outcome must be typed: {f}");
    }
    // nothing else may arrive afterwards — in particular, the worker
    // finishing its flushed in-flight job (~500 ms out) must NOT deliver
    // a second frame to an already-flushed waiter
    assert!(
        rx.recv_timeout(Duration::from_millis(900)).is_err(),
        "no waiter may receive a second frame"
    );
}

#[test]
fn mixed_storm_every_admitted_request_resolves_exactly_once() {
    let mut cfg = fast_config();
    cfg.workers = 2;
    cfg.engine.chaos = ChaosProfile {
        hang_rate: 0.2,
        panic_rate: 0.2,
        slow_rate: 0.2,
        slow_ms: 20,
        seed: 7,
    };
    cfg.max_retries = 1;
    cfg.retry_backoff_ms = 1;
    cfg.policy = QosPolicy {
        deadline_ms: [500, 500, 500],
        queue_quota: [64, 64, 64],
    };
    let scheduler = Scheduler::start(&cfg, None, None);

    let classes = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];
    let models = ["alexnet", "mobilenet", "resnet50"];
    let devices = ["GTX 1080 Ti", "Tesla K40"];
    let (tx, rx) = channel();
    let mut admitted_ids: Vec<String> = Vec::new();
    let mut n = 0;
    for class in classes {
        for m in models {
            for d in devices {
                let id = format!("s{n}");
                n += 1;
                match scheduler.submit(request(&id, m, d, class), tx.clone()) {
                    Ok(()) => admitted_ids.push(id),
                    Err(SubmitError::Shed { .. }) => {} // typed shed is a valid outcome
                    Err(e) => panic!("unexpected rejection: {e:?}"),
                }
            }
        }
    }
    drop(tx);

    let frames = recv_all(&rx, admitted_ids.len(), Duration::from_secs(60));
    let mut seen: Vec<String> = frames.iter().map(|f| frame_id(f)).collect();
    seen.sort();
    admitted_ids.sort();
    assert_eq!(
        seen, admitted_ids,
        "exactly one typed outcome per admitted id"
    );
    for f in &frames {
        // under chaos an outcome may be served or exhausted — but it is
        // always a well-formed, typed frame
        serde_json::parse(f).expect("every outcome frame is valid JSON");
        assert!(
            f.contains("\"ok\":true"),
            "chaos outcomes are results, not protocol errors: {f}"
        );
    }
    assert!(
        rx.recv_timeout(Duration::from_millis(200)).is_err(),
        "no duplicate outcomes"
    );
    let report = scheduler.drain(Duration::from_secs(10));
    assert!(!report.forced);
}
