//! Integration test for the fault-tolerant profiling pipeline (the
//! ISSUE's acceptance scenario): a hostile fault profile — 20% transient
//! failures, 5% heavy-tailed outliers — over a 3-model mini-corpus must
//! degrade gracefully, stay accurate, replay deterministically, and still
//! fail fast in strict mode.

use cnnperf_core::pipeline::{build_corpus_robust, CellStatus, RobustConfig};
use cnnperf_core::Corpus;
use gpu_sim::{DeviceSpec, FaultProfile, RetryPolicy};

fn mini_models() -> Vec<cnn_ir::ModelGraph> {
    ["alexnet", "mobilenet", "vgg16"]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).unwrap())
        .collect()
}

fn devices() -> Vec<DeviceSpec> {
    gpu_sim::training_devices()
}

fn hostile() -> RobustConfig {
    RobustConfig {
        runs: 5,
        retry: RetryPolicy::no_backoff(),
        faults: FaultProfile::parse("transient=0.2,outlier=0.05,seed=7").expect("valid fault spec"),
        strict: false,
    }
}

fn ipc_of(corpus: &Corpus, model: &str, device: &str) -> Option<f64> {
    corpus
        .samples
        .iter()
        .find(|s| s.model == model && s.device == device)
        .map(|s| s.ipc)
}

#[test]
fn hostile_faults_degrade_gracefully_and_stay_accurate() {
    let models = mini_models();
    let devices = devices();

    let (faulty, report) =
        build_corpus_robust(&models, &devices, &hostile()).expect("non-strict build completes");
    let (clean, clean_report) = build_corpus_robust(
        &models,
        &devices,
        &RobustConfig {
            runs: 5,
            retry: RetryPolicy::no_backoff(),
            ..RobustConfig::default()
        },
    )
    .expect("fault-free build");

    // the fault-free protocol sees nothing to degrade
    assert_eq!(clean_report.ok_count(), clean_report.cells.len());
    assert_eq!(clean.dataset.len(), models.len() * devices.len());

    // under 20% transients + 5% outliers the build still completes, and
    // the report is honest about what happened
    assert_eq!(report.cells.len(), models.len() * devices.len());
    assert!(
        report.degraded_count() + report.failed_count() > 0,
        "a 20%-transient profile must leave marks: {}",
        report.summary()
    );
    // sanity: summary string reflects the counts
    assert!(report
        .summary()
        .contains(&format!("{} cells", report.cells.len())));

    // every retained cell's robust IPC is within 2% of the fault-free value
    for cell in &report.cells {
        if matches!(cell.status, CellStatus::Failed { .. }) {
            assert!(
                ipc_of(&faulty, &cell.model, &cell.device).is_none(),
                "failed cell {}@{} must not contribute a dataset row",
                cell.model,
                cell.device
            );
            continue;
        }
        let got =
            ipc_of(&faulty, &cell.model, &cell.device).expect("retained cell has a dataset row");
        let want = ipc_of(&clean, &cell.model, &cell.device).expect("clean row");
        let rel = ((got - want) / want).abs();
        assert!(
            rel < 0.02,
            "{}@{}: robust IPC {got} drifted {:.2}% from fault-free {want}",
            cell.model,
            cell.device,
            rel * 100.0
        );
    }
}

#[test]
fn same_fault_seed_replays_byte_identical_report() {
    let models = mini_models();
    let devices = devices();

    let (_, a) = build_corpus_robust(&models, &devices, &hostile()).unwrap();
    let (_, b) = build_corpus_robust(&models, &devices, &hostile()).unwrap();
    assert_eq!(a, b);
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(ja, jb, "same seed must serialize byte-identically");

    // a different seed is a different universe
    let mut other = hostile();
    other.faults = other.faults.with_seed(8);
    let (_, c) = build_corpus_robust(&models, &devices, &other).unwrap();
    assert_ne!(a, c);
}

#[test]
fn strict_mode_fails_fast_under_faults() {
    let models = mini_models();
    let cfg = RobustConfig {
        strict: true,
        ..hostile()
    };
    let err = build_corpus_robust(&models, &devices(), &cfg)
        .expect_err("strict build under 20% transients must abort");
    // the abort reason is part of the retry contract: transient faults are
    // exhausted into a permanent degradation, never silently absorbed
    let msg = err.to_string();
    assert!(!msg.is_empty());
}

#[test]
fn strict_mode_without_faults_matches_plain_build() {
    let models = mini_models();
    let devices = devices();
    let plain = cnnperf_core::build_corpus(&models, &devices).unwrap();
    let (robust, report) =
        build_corpus_robust(&models, &devices, &RobustConfig::strict_single_run()).unwrap();
    assert_eq!(plain.dataset.y, robust.dataset.y);
    assert_eq!(report.ok_count(), report.cells.len());
}
