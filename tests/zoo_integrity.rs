//! Zoo-wide integrity: every Table I model must build, analyze, lower and
//! stay close to the paper's trainable-parameter count.

use rayon::prelude::*;

/// Per-model tolerance on trainable parameters vs the paper's Table I.
/// Most models are exact; NASNet is a faithful-structure approximation and
/// AlexNet uses the original grouped weights (documented in DESIGN.md).
fn tolerance(name: &str) -> f64 {
    match name {
        "alexnet" => 0.05,
        "nasnetmobile" | "nasnetlarge" => 0.01,
        _ => 1e-12,
    }
}

#[test]
fn all_models_match_paper_parameters_within_tolerance() {
    let failures: Vec<String> = cnn_ir::zoo::all()
        .par_iter()
        .filter_map(|e| {
            let model = (e.build)();
            let s = cnn_ir::analyze(&model).expect("analyzes");
            let paper = e.paper.trainable_params as f64;
            let rel = (s.trainable_params as f64 - paper).abs() / paper;
            if rel > tolerance(e.name) {
                Some(format!(
                    "{}: ours {} vs paper {} (rel {:.4})",
                    e.name, s.trainable_params, e.paper.trainable_params, rel
                ))
            } else {
                None
            }
        })
        .collect();
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn all_models_lower_to_nonempty_plans() {
    let bad: Vec<String> = cnn_ir::zoo::all()
        .par_iter()
        .filter_map(|e| {
            let model = (e.build)();
            match ptx_codegen::lower(&model, "sm_61") {
                Ok(plan) if !plan.launches.is_empty() => None,
                Ok(_) => Some(format!("{}: empty plan", e.name)),
                Err(err) => Some(format!("{}: {err}", e.name)),
            }
        })
        .collect();
    assert!(bad.is_empty(), "{bad:#?}");
}

#[test]
fn plans_count_without_analysis_errors() {
    // counting the three largest-graph models exercises every kernel
    // template and the memoization path
    for name in ["nasnetmobile", "InceptionResNetV2", "efficientnetb0"] {
        let model = cnn_ir::zoo::build(name).expect("model");
        let plan = ptx_codegen::lower(&model, "sm_61").expect("lowering");
        let counts =
            ptx_analysis::count_plan(&plan, true).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(counts.thread_instructions > 0);
        assert!(counts.warp_issues > 0);
        assert!(counts.warp_issues < counts.thread_instructions);
    }
}

#[test]
fn instruction_counts_scale_with_macs() {
    // models ordered by MACs should be ordered by instruction count too
    // (coarse monotonicity, pairwise on a clear-cut pair)
    let count_of = |name: &str| {
        let model = cnn_ir::zoo::build(name).expect("model");
        let plan = ptx_codegen::lower(&model, "sm_61").expect("lowering");
        ptx_analysis::count_plan(&plan, true)
            .expect("counts")
            .thread_instructions
    };
    assert!(count_of("vgg19") > count_of("vgg16"));
    assert!(count_of("resnet101") > count_of("resnet50"));
    assert!(count_of("densenet201") > count_of("densenet121"));
}
