//! Property tests for the median/MAD outlier filter behind the robust
//! profiling protocol: a minority of arbitrarily large outliers must never
//! drag the estimate outside the clean sample's range, and the filter must
//! not depend on the order measurements arrive in.

use gpu_sim::{mad, median, robust_filter, MAD_K};
use proptest::prelude::*;

/// Clean measurements: a tight band around IPC ~1.5, as repeated profiler
/// runs of one (model, device) cell would produce.
fn clean_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((1000u32..2000).prop_map(|m| m as f64 / 1000.0), 5..16)
}

/// Outliers at least 5x beyond the clean band: hiccup runs whose timers
/// caught a context switch, a thermal event, a co-tenant.
fn outlier_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((10_000u32..100_000).prop_map(|m| m as f64 / 1000.0), 0..3)
}

fn rotate(xs: &[f64], k: usize) -> Vec<f64> {
    let n = xs.len();
    let k = k % n;
    let mut out = xs[k..].to_vec();
    out.extend_from_slice(&xs[..k]);
    out
}

proptest! {
    /// Fewer outliers than half the sample (here: <=2 among >=5 clean)
    /// never move the robust estimate outside the clean band — the
    /// breakdown-point guarantee the protocol leans on.
    #[test]
    fn outliers_never_shift_estimate_beyond_clean_range(
        clean in clean_sample(),
        outliers in outlier_sample(),
    ) {
        let mut xs = clean.clone();
        xs.extend_from_slice(&outliers);
        let f = robust_filter(&xs, MAD_K);
        let lo = clean.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = clean.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            f.estimate >= lo && f.estimate <= hi,
            "estimate {} escaped clean range [{}, {}] with outliers {:?}",
            f.estimate, lo, hi, outliers
        );
        // the estimate never degrades past the clean sample's own spread
        prop_assert!((f.estimate - median(&clean)).abs() <= hi - lo);
    }

    /// The filter is a function of the sample as a multiset: estimate,
    /// MAD and the number of rejected points are permutation-invariant.
    #[test]
    fn filter_is_permutation_invariant(
        clean in clean_sample(),
        outliers in outlier_sample(),
        k in 0usize..64,
    ) {
        let mut xs = clean;
        xs.extend_from_slice(&outliers);
        let base = robust_filter(&xs, MAD_K);

        let mut reversed = xs.clone();
        reversed.reverse();
        let rotated = rotate(&xs, k);

        for perm in [reversed, rotated] {
            let f = robust_filter(&perm, MAD_K);
            prop_assert_eq!(f.estimate, base.estimate);
            prop_assert_eq!(f.mad, base.mad);
            prop_assert_eq!(
                f.keep.iter().filter(|&&kept| !kept).count(),
                base.keep.iter().filter(|&&kept| !kept).count()
            );
        }
    }

    /// Median and MAD themselves are permutation-invariant and the median
    /// always lies inside the sample's hull.
    #[test]
    fn median_is_order_free_and_bounded(xs in clean_sample(), k in 0usize..64) {
        let m = median(&xs);
        prop_assert_eq!(m, median(&rotate(&xs, k)));
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
        prop_assert_eq!(mad(&xs, m), mad(&rotate(&xs, k), m));
    }

    /// Degenerate samples (too small, or zero spread) retain everything:
    /// the filter refuses to call anything an outlier without evidence.
    #[test]
    fn degenerate_samples_retain_everything(
        x in (1u32..1000).prop_map(|m| m as f64 / 100.0),
        n in 1usize..4,
        m in 4usize..12,
    ) {
        // fewer than 4 samples
        let small = vec![x; n];
        prop_assert!(robust_filter(&small, MAD_K).keep.iter().all(|&k| k));
        // zero MAD (identical measurements)
        let flat = vec![x; m];
        let f = robust_filter(&flat, MAD_K);
        prop_assert!(f.keep.iter().all(|&k| k));
        prop_assert_eq!(f.estimate, x);
    }
}
