//! Integration tests for the paper's headline claims, at reduced scale so
//! they run inside the normal test suite (the full-scale regenerations
//! live in `crates/bench/src/bin/`).

use cnnperf::prelude::*;
use mlkit::repeated_split_eval;

/// A mid-size corpus: 8 models x 2 GPUs = 16 rows.
fn corpus() -> Corpus {
    let models: Vec<_> = [
        "alexnet",
        "mobilenet",
        "MobileNetV2",
        "resnet50",
        "vgg16",
        "densenet121",
        "inceptionv3",
        "Xception",
    ]
    .iter()
    .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
    .collect();
    build_corpus(&models, &gpu_sim::training_devices()).expect("corpus")
}

/// Paper Table II's underlying conclusion: "the R² and adjusted R² of the
/// Linear Regression indicate no linear dependencies between output and
/// predictors". The robust, sample-size-independent form of that claim is
/// a fit gap: a decision tree can fit the (features -> IPC) relationship
/// that linear regression cannot, even on the training data itself.
///
/// (The full Table II generalization comparison needs the complete
/// 32-model corpus and lives in `crates/bench/src/bin/table2_regressors`;
/// at 8-model scale trees are data-starved and repeated-split rankings are
/// dominated by sample-size effects.)
#[test]
fn ipc_relationship_is_nonlinear() {
    let corpus = corpus();
    let lin = RegressorKind::LinearRegression.fit(&corpus.dataset, 42);
    let tree = RegressorKind::DecisionTree.fit(&corpus.dataset, 42);
    let r2_of =
        |m: &mlkit::Model| mlkit::metrics::r2(&corpus.dataset.y, &m.predict(&corpus.dataset));
    let r2_lin = r2_of(&lin);
    let r2_tree = r2_of(&tree);
    assert!(
        r2_tree > r2_lin + 0.1,
        "tree should out-fit linear regression: tree {r2_tree:.3} vs linear {r2_lin:.3}"
    );
    assert!(
        r2_lin < 0.9,
        "linear regression fits suspiciously well (r2 {r2_lin:.3}) — the \
         target should not be a linear function of the predictors"
    );
}

/// Repeated-split evaluation must run end-to-end on pipeline output for
/// every model kind (smoke for the Table II protocol machinery).
#[test]
fn repeated_split_protocol_runs_for_all_models() {
    let corpus = corpus();
    let seeds: Vec<u64> = (0..5).collect();
    for kind in RegressorKind::ALL {
        let (per, agg) = repeated_split_eval(&corpus.dataset, kind, 0.7, &seeds);
        assert_eq!(per.len(), 5);
        assert!(agg.mape.mean.is_finite(), "{}", kind.name());
    }
}

/// Paper Table III: the decision tree's top features must include the
/// paper's predictors (instructions / params / a GPU feature).
#[test]
fn decision_tree_importances_cover_paper_features() {
    let corpus = corpus();
    let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let imps = p.feature_importances().expect("tree importances");
    let nonzero: Vec<&str> = imps
        .iter()
        .filter(|(_, v)| *v > 0.0)
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(
        nonzero.contains(&"ptx_instructions") || nonzero.contains(&"trainable_params"),
        "no CNN feature carries importance: {imps:?}"
    );
    let total: f64 = imps.iter().map(|(_, v)| v).sum();
    assert!((total - 1.0).abs() < 1e-9, "importances must normalize");
}

/// Paper Table IV: the estimation path must beat naive profiling, and the
/// advantage must grow with the number of candidate devices.
#[test]
fn estimation_is_faster_than_naive_and_scales_with_n() {
    let corpus = corpus();
    let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let model = cnn_ir::zoo::build("resnet50v2").expect("zoo model");
    let devices = gpu_sim::all_devices();

    let outcome = rank_devices(&p, &model, &devices).expect("dse");
    let t_p = naive_profile_time(&model, &devices[0]).expect("profiling");

    let n = devices.len() as f64;
    let speedup_1 = t_p / (outcome.t_dca + outcome.t_pm);
    let speedup_n = n * t_p / (outcome.t_dca + n * outcome.t_pm);
    assert!(speedup_1 > 1.0, "no speedup at n=1: {speedup_1}");
    assert!(
        speedup_n > speedup_1,
        "speedup must grow with n: {speedup_1} -> {speedup_n}"
    );
}

/// Fig. 4 protocol: held-out CNNs predicted without ever being trained on.
#[test]
fn held_out_cnn_prediction_is_sane() {
    let corpus = corpus();
    // hold Xception out
    let (train, held) = corpus
        .dataset
        .partition_by_label(|l| l.starts_with("Xception@"));
    assert_eq!(held.len(), 2);
    let p = PerformancePredictor::train(&train, RegressorKind::DecisionTree, 42);
    let prof = corpus.profile("Xception").expect("profiled");
    let dev = gpu_sim::specs::gtx_1080_ti();
    let pred = p.predict(prof, &dev);
    let truth = corpus
        .samples
        .iter()
        .find(|s| s.model == "Xception" && s.device == dev.name)
        .expect("sample");
    let ape = ((truth.ipc - pred) / truth.ipc).abs();
    assert!(
        ape < 0.6,
        "held-out prediction wildly off: pred {pred} vs {}",
        truth.ipc
    );
}

/// Cross-platform: predictions on an unseen device stay within the IPC
/// range seen in training (trees cannot extrapolate, but they must not
/// produce garbage either).
#[test]
fn unseen_device_predictions_stay_in_range() {
    let corpus = corpus();
    let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 42);
    let lo = corpus.dataset.y.iter().cloned().fold(f64::MAX, f64::min);
    let hi = corpus.dataset.y.iter().cloned().fold(f64::MIN, f64::max);
    for dev in gpu_sim::all_devices() {
        for prof in &corpus.profiles {
            let y = p.predict(prof, &dev);
            assert!(
                y >= lo - 1e-9 && y <= hi + 1e-9,
                "{} on {}: {y} outside [{lo}, {hi}]",
                prof.name,
                dev.name
            );
        }
    }
}

/// The measured-IPC ground truth must be sensitive to the device (the
/// premise of cross-platform prediction).
#[test]
fn ground_truth_depends_on_device() {
    let corpus = corpus();
    let mut differing = 0;
    for prof in &corpus.profiles {
        let rows: Vec<f64> = corpus
            .samples
            .iter()
            .filter(|s| s.model == prof.name)
            .map(|s| s.ipc)
            .collect();
        assert_eq!(rows.len(), 2);
        if (rows[0] - rows[1]).abs() > 1e-3 {
            differing += 1;
        }
    }
    assert!(
        differing >= 6,
        "only {differing}/8 models show device sensitivity"
    );
}

/// Extension invariant: batch-norm folding must preserve the model's
/// output structure while strictly reducing kernel launches for networks
/// with bias-free conv + BN pairs.
#[test]
fn bn_folding_reduces_launches_and_preserves_shapes() {
    let model = cnn_ir::zoo::build("MobileNetV2").expect("zoo model");
    let (folded, stats) = cnn_ir::fold_batch_norm(&model);
    assert!(stats.folded > 40, "{stats:?}");
    assert_eq!(
        model.infer_shapes().unwrap().last(),
        folded.infer_shapes().unwrap().last()
    );
    let plan_orig = ptx_codegen::lower(&model, "sm_61").expect("lowering");
    let plan_fold = ptx_codegen::lower(&folded, "sm_61").expect("lowering");
    assert!(
        plan_fold.launches.len() + 40 < plan_orig.launches.len(),
        "folding should remove ~one launch per pair: {} vs {}",
        plan_fold.launches.len(),
        plan_orig.launches.len()
    );
    // and the folded plan still counts exactly
    let counts = ptx_analysis::count_plan(&plan_fold, true).expect("counts");
    assert!(counts.thread_instructions > 0);
}

/// Extension invariant: the 2x2 microtiled GEMM variant lowers every zoo
/// model and reduces total instructions (denser threads).
#[test]
fn gemm_microtiling_reduces_instructions_on_a_real_model() {
    let model = cnn_ir::zoo::build("resnet50").expect("zoo model");
    let tiled = ptx_codegen::lower_with(&model, "sm_61", 1, ptx_codegen::GemmVariant::Tiled)
        .expect("lowering");
    let micro = ptx_codegen::lower_with(&model, "sm_61", 1, ptx_codegen::GemmVariant::Micro2x2)
        .expect("lowering");
    let ct = ptx_analysis::count_plan(&tiled, true).expect("counts");
    let cm = ptx_analysis::count_plan(&micro, true).expect("counts");
    assert!(cm.thread_instructions < ct.thread_instructions);
}
