//! Property tests: the interval-splitting instruction counter must agree
//! *exactly* with brute-force per-thread execution on every code-generator
//! template and across randomized launch parameters. This is the
//! correctness core of the paper's dynamic code analysis.

use proptest::prelude::*;
use ptx::kernel::{Kernel, KernelLaunch};
use ptx_analysis::{count_launch, count_launch_bruteforce};
use ptx_codegen::Template;

fn launch(kernel: &Kernel, threads: u64, args: Vec<u64>) -> KernelLaunch {
    KernelLaunch {
        kernel: 0,
        tag: "prop".into(),
        grid: (
            threads.div_ceil(kernel.block_threads() as u64).max(1) as u32,
            1,
            1,
        ),
        args,
        bytes_read: 0,
        bytes_written: 0,
    }
}

fn assert_equivalent(kernel: &Kernel, l: &KernelLaunch) {
    let fast = count_launch(kernel, l, true).expect("fast");
    let brute = count_launch_bruteforce(kernel, l).expect("brute");
    assert_eq!(
        fast.thread_instructions, brute.thread_instructions,
        "thread counts differ for {} args {:?}",
        kernel.name, l.args
    );
    assert_eq!(
        fast.warp_issues, brute.warp_issues,
        "warp issues differ for {} args {:?}",
        kernel.name, l.args
    );
    assert_eq!(fast.by_category, brute.by_category);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elementwise activation kernel with an arbitrary bound (exercises the
    /// gid guard at every alignment).
    #[test]
    fn relu_any_bound(n in 1u64..2000, extra_blocks in 0u64..3) {
        let kernel = Template::ActRelu.build();
        let threads = n + extra_blocks * 256;
        let l = launch(&kernel, threads, vec![0x1000, 0x2000, n]);
        assert_equivalent(&kernel, &l);
    }

    /// Vectorized copy (guard compares 4*gid against n).
    #[test]
    fn copy_any_bound(n in 1u64..4000) {
        let kernel = Template::CopyF32.build();
        let threads = n.div_ceil(4).max(1);
        let l = launch(&kernel, threads, vec![0x1000, 0x2000, n]);
        assert_equivalent(&kernel, &l);
    }

    /// GEMV: guard + parameter-dependent loop trip count.
    #[test]
    fn gemv_any_shape(m in 1u64..300, k in 1u64..40) {
        let kernel = Template::Gemv.build();
        let l = launch(&kernel, m, vec![0x1000, 0x2000, 0x3000, m, k, 0x9000, 1]);
        assert_equivalent(&kernel, &l);
    }

    /// Pooling: guard + window loop + branchless borders.
    #[test]
    fn pool_any_shape(ow in 1u32..8, c in 1u32..8, win in 1u32..6) {
        let kernel = Template::PoolMax.build();
        let total = (ow * ow * c) as u64;
        let window = (win * win) as u64;
        let l = launch(
            &kernel,
            total,
            vec![
                0x1000, 0x2000, total, window, c as u64,
                (ow * 2) as u64, ow as u64, win as u64, 2, 2, 1, 1,
                (ow * 2) as u64, (1.0f32 / window as f32).to_bits() as u64,
            ],
        );
        assert_equivalent(&kernel, &l);
    }

    /// Softmax reductions: strided tid-dependent loops plus barrier trees.
    #[test]
    fn softmax_reduce_any_n(n in 1u64..3000) {
        let kernel = Template::SoftmaxMax.build();
        let l = KernelLaunch {
            kernel: 0,
            tag: "prop".into(),
            grid: (1, 1, 1),
            args: vec![0x1000, 0, 0x2000, 0x3000, n],
            bytes_read: 0,
            bytes_written: 0,
        };
        assert_equivalent(&kernel, &l);
    }
}

/// Deterministic sweep: every template with representative arguments.
#[test]
fn all_templates_match_bruteforce_on_representative_launches() {
    for t in Template::ALL {
        let kernel = t.build();
        let l = match t {
            Template::CopyF32 => launch(&kernel, 64, vec![0x1000, 0x2000, 250]),
            Template::FillF32 => launch(&kernel, 300, vec![0x1000, 300, 0]),
            Template::EwAdd | Template::EwMul => {
                launch(&kernel, 300, vec![0x1000, 0x2000, 0x3000, 300])
            }
            Template::EwMulBcast => launch(&kernel, 300, vec![0x1000, 0x2000, 0x3000, 300, 7]),
            Template::AffineCh => {
                launch(&kernel, 300, vec![0x1000, 0x2000, 0x3000, 0x4000, 300, 7])
            }
            Template::ActRelu
            | Template::ActRelu6
            | Template::ActSigmoid
            | Template::ActTanh
            | Template::ActSwish
            | Template::ActHardSwish => launch(&kernel, 300, vec![0x1000, 0x2000, 300]),
            Template::SoftmaxMax | Template::SoftmaxExpSum => KernelLaunch {
                kernel: 0,
                tag: "t".into(),
                grid: (1, 1, 1),
                args: vec![0x1000, 0x2000, 0x3000, 0x4000, 700],
                bytes_read: 0,
                bytes_written: 0,
            },
            Template::SoftmaxDiv => launch(&kernel, 300, vec![0x1000, 0x2000, 0x3000, 300]),
            Template::Im2col => launch(
                &kernel,
                4 * 4 * 3,
                vec![0x1000, 0x2000, 48, 9, 3, 6, 4, 4, 3, 1, 1, 1, 1, 6],
            ),
            Template::GemmTiled => launch(
                &kernel,
                8 * 12,
                vec![0x1000, 0x2000, 0x3000, 8, 12, 40, 3, 0x9000, 1],
            ),
            Template::GemmMicro => launch(
                &kernel,
                4 * 6,
                vec![0x1000, 0x2000, 0x3000, 7, 11, 40, 3, 6, 0x9000, 1],
            ),
            Template::Gemv => launch(&kernel, 50, vec![0x1000, 0x2000, 0x3000, 50, 20, 0x9000, 0]),
            Template::Depthwise => launch(
                &kernel,
                4 * 4 * 3,
                vec![
                    0x1000, 0x2000, 0x3000, 48, 9, 3, 6, 4, 3, 1, 1, 1, 1, 6, 0x9000, 1,
                ],
            ),
            Template::PoolMax | Template::PoolAvg => launch(
                &kernel,
                4 * 4 * 3,
                vec![
                    0x1000,
                    0x2000,
                    48,
                    4,
                    3,
                    8,
                    4,
                    2,
                    2,
                    2,
                    0,
                    0,
                    8,
                    (0.25f32).to_bits() as u64,
                ],
            ),
            Template::GapAvg | Template::GapMax => launch(
                &kernel,
                16,
                vec![0x1000, 0x2000, 16, 49, (1.0f32 / 49.0).to_bits() as u64],
            ),
            Template::PadCopy => launch(&kernel, 120, vec![0x1000, 0x2000, 120, 12, 20, 44]),
        };
        assert_equivalent(&kernel, &l);
    }
}

// ---------------------------------------------------------------------------
// zoo-wide mode equivalence: the compiled trip-count polynomials must
// reproduce the interpreter's PlanCount bit for bit — every per-launch
// field, every model the repo ships, at both lowering targets
// ---------------------------------------------------------------------------

mod zoo_mode_equivalence {
    use ptx_analysis::{
        count_plan_mode_budgeted, count_plan_report_budgeted, CountMode, ExecBudget, ExecError,
    };

    fn assert_modes_agree(target: &str, names: &[&str]) {
        let budget = ExecBudget::default();
        for name in names {
            let model = cnn_ir::zoo::build(name).expect("zoo model");
            let plan = ptx_codegen::lower(&model, target).expect("lower");
            let interp = count_plan_mode_budgeted(&plan, true, &budget, CountMode::Interp)
                .unwrap_or_else(|e| panic!("{name} ({target}) interp: {e}"));
            let (auto, report) = count_plan_report_budgeted(&plan, true, &budget, CountMode::Auto)
                .unwrap_or_else(|e| panic!("{name} ({target}) auto: {e}"));
            // structural equality: totals, per-launch counts, mixes, and
            // even the rectangle decomposition must be identical
            assert_eq!(auto, interp, "auto vs interp diverged on {name} ({target})");
            assert!(
                report.poly_compiled > 0,
                "{name} ({target}): no kernel compiled to a polynomial \
                 ({} attempted)",
                report.kernels
            );
            // strict poly mode: bit-identical when the whole plan compiles,
            // an attributable refusal when any kernel doesn't
            match count_plan_mode_budgeted(&plan, true, &budget, CountMode::Poly) {
                Ok(poly) => assert_eq!(poly, interp, "poly vs interp on {name} ({target})"),
                Err(ExecError::Unlaunchable { reason, .. }) => {
                    assert!(reason.starts_with("poly: "), "{name}: {reason}");
                }
                Err(other) => panic!("{name} ({target}): unexpected poly error {other:?}"),
            }
        }
    }

    /// Every model of the Table I zoo at the default lowering target.
    #[test]
    fn full_zoo_modes_agree_sm61() {
        let entries = cnn_ir::zoo::all();
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        assert_modes_agree("sm_61", &names);
    }

    /// Architecture-diverse sample at the sm_70 target (counts are
    /// target-independent, but the lowered plans differ).
    #[test]
    fn sampled_zoo_modes_agree_sm70() {
        assert_modes_agree(
            "sm_70",
            &[
                "mobilenet",
                "alexnet",
                "inceptionv3",
                "vgg16",
                "densenet121",
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// randomized program generation: the counter must either agree exactly with
// brute force or fail with a structured error — never be silently wrong
// ---------------------------------------------------------------------------

mod random_programs {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::{BinOp, CmpOp, SpecialReg, Type};

    /// A recipe for one random (but well-formed) kernel: an affine guard
    /// expression, a loop nest depth and per-level trip sources.
    #[derive(Debug, Clone)]
    struct Recipe {
        block: u32,
        // guard bound = a*gid + c compared against param0
        guard_scale: i64,
        guard_offset: i64,
        cmp: CmpOp,
        trips: Vec<u8>,
        body_movs: u8,
        use_or_idiom: bool,
    }

    fn recipe_strategy() -> impl Strategy<Value = Recipe> {
        (
            prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
            1i64..5,
            -3i64..4,
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Ge),
                Just(CmpOp::Gt),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne)
            ],
            proptest::collection::vec(0u8..6, 0..3),
            0u8..5,
            any::<bool>(),
        )
            .prop_map(
                |(block, guard_scale, guard_offset, cmp, trips, body_movs, use_or_idiom)| Recipe {
                    block,
                    guard_scale,
                    guard_offset,
                    cmp,
                    trips,
                    body_movs,
                    use_or_idiom,
                },
            )
    }

    fn build(recipe: &Recipe) -> Kernel {
        let mut kb = KernelBuilder::new("rand_kernel", recipe.block);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);

        // gid, optionally through the shl/or idiom
        let gid = if recipe.use_or_idiom {
            kb.global_id()
        } else {
            let cta = kb.special(SpecialReg::CtaIdX);
            let tid = kb.special(SpecialReg::TidX);
            let dst = kb.r();
            kb.mad(Type::S32, dst, cta, Operand::ImmI(recipe.block as i64), tid);
            dst
        };
        // scaled/offset guard expression
        let scaled = kb.bin_r(
            BinOp::Mul,
            Type::U32,
            gid,
            Operand::ImmI(recipe.guard_scale),
        );
        let expr = kb.bin_r(
            BinOp::Add,
            Type::U32,
            scaled,
            Operand::ImmI(recipe.guard_offset.max(0)),
        );
        let p = kb.p();
        kb.setp(recipe.cmp, Type::U32, p, expr, n);
        let exit = kb.label();
        kb.bra_if(p, false, exit);

        // loop nest with constant trip counts
        fn nest(kb: &mut KernelBuilder, trips: &[u8], movs: u8) {
            if let Some((&t, rest)) = trips.split_first() {
                kb.counted_loop(Operand::ImmI(t as i64), |kb, _| {
                    nest(kb, rest, movs);
                });
            } else {
                for _ in 0..movs {
                    let f = kb.f();
                    kb.mov(Type::F32, f, Operand::ImmF(1.0));
                }
            }
        }
        nest(&mut kb, &recipe.trips, recipe.body_movs);

        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_kernels_agree_or_fail_structurally(
            recipe in recipe_strategy(),
            n in 0u64..3000,
            blocks in 1u64..5,
        ) {
            let kernel = build(&recipe);
            let threads = blocks * recipe.block as u64;
            let l = launch(&kernel, threads, vec![n]);
            match (
                count_launch(&kernel, &l, true),
                count_launch_bruteforce(&kernel, &l),
            ) {
                (Ok(fast), Ok(brute)) => {
                    prop_assert_eq!(
                        fast.thread_instructions,
                        brute.thread_instructions,
                        "recipe {:?} n={}", recipe, n
                    );
                    prop_assert_eq!(fast.warp_issues, brute.warp_issues);
                }
                (Err(_), Err(_)) => {} // both reject: fine
                (Err(e), Ok(_)) => {
                    // the fast path may reject exotic predicates the brute
                    // force can still walk — acceptable, but only for the
                    // structured analysis errors
                    prop_assert!(
                        matches!(
                            e,
                            ptx_analysis::ExecError::MixedSlopePredicate { .. }
                        ),
                        "unexpected fast-path error {e:?}"
                    );
                }
                (Ok(_), Err(e)) => {
                    prop_assert!(false, "brute force failed where fast succeeded: {e:?}");
                }
            }
        }
    }
}
