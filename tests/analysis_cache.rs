//! Cache-correctness suite for the process-wide analysis cache: memoized
//! results must be bit-identical to uncached analysis, corpus builds must
//! be unchanged by cache warmth, and the `analysis.cache.*` counters must
//! balance and prove the "analyze once per model" DSE contract.
//!
//! All tests share the process-global cache and [`obs`] registry, so each
//! takes a mutex and (where it asserts miss counts) clears the cache and
//! measures counter *deltas* between its own snapshots.

use cnnperf_core::prelude::*;
use cnnperf_core::{clear_analysis_cache, feature_row, profile_model};
use mlkit::RegressorKind;
use std::sync::Mutex;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // a panicking test must not wedge the others
    REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn cached_profile_is_byte_identical_across_devices() {
    let _guard = lock();
    let model = cnn_ir::zoo::build("alexnet").unwrap();
    let (uncached, plan, counts, summary) = profile_model(&model).unwrap();
    let cached = profile_model_cached(&model).unwrap();

    // the analysis payload matches field-for-field (dca_seconds is wall
    // time and legitimately differs between runs)
    assert_eq!(cached.profile.name, uncached.name);
    assert_eq!(cached.profile.ptx_instructions, uncached.ptx_instructions);
    assert_eq!(cached.profile.trainable_params, uncached.trainable_params);
    assert_eq!(cached.profile.macs, uncached.macs);
    assert_eq!(cached.profile.flops, uncached.flops);
    assert_eq!(cached.profile.neurons, uncached.neurons);
    assert_eq!(cached.profile.num_launches, uncached.num_launches);
    assert_eq!(
        cached.counts.thread_instructions,
        counts.thread_instructions
    );
    assert_eq!(cached.counts.warp_issues, counts.warp_issues);
    assert_eq!(cached.counts.by_category, counts.by_category);
    assert_eq!(cached.plan.launches.len(), plan.launches.len());
    assert_eq!(cached.summary.trainable_params, summary.trainable_params);

    // feature rows derived from the cached profile are byte-identical on
    // every modeled device
    for dev in gpu_sim::all_devices() {
        assert_eq!(
            feature_row(&cached.profile, &dev),
            feature_row(&uncached, &dev),
            "feature row differs on {}",
            dev.name
        );
    }
}

#[test]
fn corpus_built_with_cache_equals_seed_corpus() {
    let _guard = lock();
    let models: Vec<cnn_ir::ModelGraph> = ["alexnet", "mobilenet"]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).unwrap())
        .collect();
    let devices = gpu_sim::training_devices();

    // cold build (the seed) vs. fully warm rebuild
    clear_analysis_cache();
    let cold = build_corpus(&models, &devices).unwrap();
    let warm = build_corpus(&models, &devices).unwrap();

    assert_eq!(cold.dataset.y, warm.dataset.y, "targets must be unchanged");
    assert_eq!(cold.dataset.x, warm.dataset.x, "features must be unchanged");
    assert_eq!(cold.dataset.labels, warm.dataset.labels);
}

#[test]
fn analysis_cache_counters_balance() {
    let _guard = lock();
    // generate some traffic on both sides of the cache
    let model = cnn_ir::zoo::build("mobilenet").unwrap();
    clear_analysis_cache();
    let _ = profile_model_cached(&model).unwrap(); // miss
    let _ = profile_model_cached(&model).unwrap(); // hit

    // the invariant is absolute: every lookup since process start
    // incremented exactly one of hits/misses
    let snap = obs::global().snapshot();
    let lookups = snap.counter("analysis.cache.lookups");
    let hits = snap.counter("analysis.cache.hits");
    let misses = snap.counter("analysis.cache.misses");
    assert!(lookups > 0);
    assert_eq!(
        hits + misses,
        lookups,
        "hits {hits} + misses {misses} != lookups {lookups}"
    );
}

#[test]
fn dse_sweep_analyzes_each_model_exactly_once() {
    let _guard = lock();
    let train_models: Vec<cnn_ir::ModelGraph> = ["alexnet", "mobilenet"]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).unwrap())
        .collect();
    let corpus = build_corpus(&train_models, &gpu_sim::training_devices()).unwrap();
    let predictor = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 3);

    let devices = gpu_sim::all_devices();
    assert!(devices.len() >= 4, "need a sweep over at least 4 devices");
    let target = cnn_ir::zoo::build("resnet50").unwrap();

    clear_analysis_cache();
    let before = obs::global().snapshot();
    let first = rank_devices(&predictor, &target, &devices).unwrap();
    let second = rank_devices(&predictor, &target, &devices).unwrap();
    let after = obs::global().snapshot();

    // one DCA total across two full sweeps over n devices: T_est stays
    // t_dca + n*t_pm, never n*t_dca
    assert_eq!(
        after.counter_delta(&before, "analysis.cache.misses"),
        1,
        "the model must be analyzed exactly once"
    );
    assert_eq!(after.counter_delta(&before, "analysis.cache.lookups"), 2);
    assert_eq!(after.counter_delta(&before, "analysis.cache.hits"), 1);

    // and the warm sweep returns the same ranking
    let names = |o: &cnnperf_core::DseOutcome| {
        o.ranking
            .iter()
            .map(|r| r.device.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&first), names(&second));
    assert_eq!(first.ranking.len(), devices.len());
}

#[test]
fn estimate_then_dse_shares_one_analysis() {
    let _guard = lock();
    let model = "mobilenet";
    let graph = cnn_ir::zoo::build_any(model).unwrap();

    clear_analysis_cache();
    let before = obs::global().snapshot();

    // an analytical-tier estimate on a Pascal device (sm_61) warms the
    // default-target cache line...
    let mut engine = ResilientEngine::new(EngineConfig {
        deadline_ms: 60_000,
        tiers: vec![Tier::Analytical],
        ..EngineConfig::default()
    });
    let out = engine.estimate(model, "GTX 1080 Ti");
    assert_eq!(
        out.kind,
        OutcomeKind::Served {
            tier: Tier::Analytical
        }
    );

    // ...so the subsequent profile (what a DSE sweep runs) is a pure hit
    let _ = profile_model_cached(&graph).unwrap();
    let after = obs::global().snapshot();
    assert_eq!(after.counter_delta(&before, "analysis.cache.misses"), 1);
    assert!(after.counter_delta(&before, "analysis.cache.hits") >= 1);
}
