//! Chaos drills for the predictor lifecycle (PR 7 acceptance):
//!
//! * a candidate with worse shadow MAPE is **never** promoted;
//! * a torn snapshot write is quarantined on restart and the previous
//!   valid version serves **byte-identical** estimates;
//! * injected drift triggers **exactly one** rollback per breaker
//!   episode;
//! * a hot swap under concurrent load loses zero requests, and every
//!   response is attributable to exactly one predictor generation.
//!
//! Lives in its own test binary so the process-global metrics registry
//! starts from zero and counter deltas are exact per test (tests that
//! assert global counters serialize on `COUNTER_LOCK`).

use cnnperf_core::{
    feature_names, EngineConfig, LifecycleConfig, LifecycleManager, Measurement, ModelStore,
    PerformancePredictor, PredictorSlot, ResilientEngine, RetrainOutcome, Tier,
};
use mlkit::{Dataset, RegressorKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn counter(name: &str) -> u64 {
    obs::global().snapshot().counter(name)
}

/// A dataset over the real feature layout where `y` is a simple linear
/// function of the first feature — learnable by every regressor family.
fn linear_dataset(rows: usize, slope: f64, offset: f64) -> Dataset {
    let mut d = Dataset::new(feature_names());
    let nf = d.feature_names.len();
    for i in 0..rows {
        let mut row = vec![0.0; nf];
        for (j, v) in row.iter_mut().enumerate() {
            *v = (i * 7 + j * 3) as f64 % 13.0;
        }
        let y = slope * row[0] + offset;
        d.push(format!("r{i}"), row, y);
    }
    d
}

fn train(data: &Dataset, seed: u64) -> PerformancePredictor {
    PerformancePredictor::train(data, RegressorKind::DecisionTree, seed)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cnnperf-lifecycle-chaos-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn worse_shadow_mape_candidate_is_never_promoted() {
    let slot = Arc::new(PredictorSlot::new());
    let base = linear_dataset(40, 2.0, 1.0);
    let incumbent = Arc::new(train(&base, 42));
    let incumbent_gen = slot.install(Arc::clone(&incumbent));

    let mgr = LifecycleManager::new(
        LifecycleConfig::default(),
        Arc::clone(&slot),
        None,
        Some(base.clone()),
    );

    // shadow slice drawn from the same world the incumbent learned
    let shadow = linear_dataset(16, 2.0, 1.0);
    // the saboteur learned a wildly different world and will shadow-score
    // far worse than the incumbent
    let saboteur = Arc::new(train(&linear_dataset(40, -50.0, 900.0), 7));

    match mgr.shadow_and_maybe_promote(Arc::clone(&saboteur), &shadow) {
        RetrainOutcome::Rejected {
            cand_mape,
            incumbent_mape,
        } => {
            assert!(
                cand_mape > incumbent_mape,
                "drill sanity: saboteur must actually score worse \
                 ({cand_mape} vs {incumbent_mape})"
            );
        }
        other => panic!("worse candidate must be rejected, got {other:?}"),
    }
    let (gen_after, active) = slot.load();
    assert_eq!(gen_after, incumbent_gen, "rejection must not swap the slot");
    let probe = &shadow.x[0];
    assert_eq!(
        active
            .expect("slot still armed")
            .predict_row(probe)
            .to_bits(),
        incumbent.predict_row(probe).to_bits(),
        "the serving predictor must still be the incumbent"
    );

    // no shadow evidence at all is also an automatic rejection, even for
    // a candidate identical to the incumbent
    let empty = Dataset::new(feature_names());
    assert!(
        matches!(
            mgr.shadow_and_maybe_promote(Arc::clone(&incumbent), &empty),
            RetrainOutcome::Rejected { .. }
        ),
        "a candidate without a shadow slice must never ship"
    );
    assert_eq!(slot.generation(), incumbent_gen);
}

#[test]
fn torn_snapshot_is_quarantined_and_previous_version_serves_byte_identical() {
    let dir = fresh_dir("torn");
    let v1_model = train(&linear_dataset(40, 2.0, 1.0), 42);
    let v2_model = train(&linear_dataset(40, 3.0, 5.0), 43);

    // two healthy versions, then a crash story: v2's file is torn mid-write
    // and an orphaned temp file survives the kill
    let (mut store, _) = ModelStore::open(&dir).expect("open");
    let v1 = store.save(&v1_model, 40, "first").expect("save v1");
    let v2 = store.save(&v2_model, 40, "second").expect("save v2");
    let v2_bytes = std::fs::read(&v2.path).expect("read v2");
    std::fs::write(&v2.path, &v2_bytes[..v2_bytes.len() / 2]).expect("tear v2");
    std::fs::write(
        dir.join(format!("predictor-v000003.json.tmp.{}", std::process::id())),
        b"{\"partial\":",
    )
    .expect("stray tmp");
    drop(store);

    // restart: the torn file is quarantined, the temp file swept, and the
    // newest *valid* version serves
    let (restarted, report) = ModelStore::open(&dir).expect("reopen");
    assert_eq!(report.quarantined, 1, "torn v2 must be quarantined");
    assert_eq!(report.loaded, 1, "only v1 is still valid");
    assert_eq!(report.tmp_swept, 1, "orphaned temp file must be swept");
    assert!(
        dir.join("predictor-v000002.json.corrupt").exists(),
        "quarantine keeps the torn bytes for forensics"
    );

    let (info, served) = restarted.load_latest().expect("v1 serves");
    assert_eq!(info.meta.version, v1.meta.version);
    // byte-identical estimates: the reloaded predictor is bit-for-bit the
    // one that was snapshotted, so every prediction matches exactly
    assert_eq!(
        serde_json::to_string(&served).expect("serialize served"),
        serde_json::to_string(&v1_model).expect("serialize original"),
        "restart must serve the previous version byte-identically"
    );
    for row in &linear_dataset(8, 2.0, 1.0).x {
        assert_eq!(
            served.predict_row(row).to_bits(),
            v1_model.predict_row(row).to_bits()
        );
    }

    // the torn version's number stays reserved — the next save must not
    // silently reuse v2 under different bytes
    let mut restarted = restarted;
    let v3 = store_next_version(&mut restarted, &v1_model);
    assert!(v3 > v2.meta.version, "quarantined versions stay reserved");
    let _ = std::fs::remove_dir_all(&dir);
}

fn store_next_version(store: &mut ModelStore, p: &PerformancePredictor) -> u64 {
    store.save(p, 1, "after-tear").expect("save").meta.version
}

#[test]
fn injected_drift_rolls_back_exactly_once_per_episode() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let rollbacks_before = counter("lifecycle.rollbacks");

    let slot = Arc::new(PredictorSlot::new());
    let good = Arc::new(train(&linear_dataset(40, 2.0, 1.0), 42));
    let bad = Arc::new(train(&linear_dataset(40, 100.0, 500.0), 9));
    slot.install(Arc::clone(&good));
    let bad_gen = slot.install(Arc::clone(&bad)); // the drifting incumbent

    let cfg = LifecycleConfig {
        drift_window: 4,
        drift_threshold: 0.5,
        ..LifecycleConfig::default()
    };
    let mgr = LifecycleManager::new(cfg, Arc::clone(&slot), None, None);

    let nf = feature_names().len();
    let drifting = |i: usize| Measurement {
        model: format!("resnet{i}"), // one family: "resnet"
        device: "GTX 1080 Ti".to_string(),
        row: vec![1.0 + (i % 3) as f64; nf],
        // far below anything `bad` predicts => relative error >> threshold
        ipc: 0.25,
    };

    for i in 0..8 {
        mgr.log().push(drifting(i));
    }
    let first = mgr.ingest();
    assert!(first.drift_trips >= 1, "drift must trip: {first:?}");
    assert_eq!(first.rollbacks, 1, "exactly one rollback: {first:?}");
    let (gen_now, active) = slot.load();
    assert!(
        gen_now > bad_gen,
        "rollback republishes as a new generation"
    );
    let probe = vec![2.0; nf];
    assert_eq!(
        active.expect("armed").predict_row(&probe).to_bits(),
        good.predict_row(&probe).to_bits(),
        "rollback must resurrect the pre-drift predictor"
    );

    // the same drift injected again inside the breaker episode is
    // detected but must NOT roll back a second time
    for i in 0..8 {
        mgr.log().push(drifting(i));
    }
    let second = mgr.ingest();
    assert_eq!(
        second.rollbacks, 0,
        "episode suppresses repeats: {second:?}"
    );
    assert!(
        second.drift_trips == 0 || second.suppressed >= 1,
        "a second trip inside the episode must be suppressed: {second:?}"
    );

    assert_eq!(
        counter("lifecycle.rollbacks") - rollbacks_before,
        1,
        "lifecycle.rollbacks must reflect exactly one rollback"
    );
}

#[test]
fn hot_swap_under_concurrent_load_loses_zero_requests() {
    const WORKERS: usize = 4;
    const PER_WORKER: usize = 250;

    let slot = Arc::new(PredictorSlot::new());
    slot.install(Arc::new(train(&linear_dataset(40, 2.0, 1.0), 42)));

    let config = EngineConfig {
        tiers: vec![Tier::Regressor],
        ..EngineConfig::default()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let slot = Arc::clone(&slot);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let variants: Vec<Arc<PerformancePredictor>> = (0..4)
                .map(|i| Arc::new(train(&linear_dataset(40, 2.0 + i as f64, 1.0), i)))
                .collect();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                slot.install(Arc::clone(&variants[i % variants.len()]));
                i += 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let config = config.clone();
            std::thread::spawn(move || {
                let mut engine = ResilientEngine::with_shared_slot(config, slot);
                let mut generations = Vec::with_capacity(PER_WORKER);
                for _ in 0..PER_WORKER {
                    let outcome = engine.estimate("alexnet", "GTX 1080 Ti");
                    assert!(
                        outcome.served(),
                        "no request may be lost during hot swaps: {:?}",
                        outcome.kind
                    );
                    generations.push(
                        outcome
                            .generation
                            .expect("a regressor-tier serve carries its generation"),
                    );
                }
                generations
            })
        })
        .collect();

    let mut all: Vec<u64> = Vec::with_capacity(WORKERS * PER_WORKER);
    for w in workers {
        all.extend(w.join().expect("worker survives the swap storm"));
    }
    stop.store(true, Ordering::Relaxed);
    swapper.join().expect("swapper exits");

    // zero lost: every single request produced a served outcome pinned to
    // exactly one generation that was actually published
    let final_gen = slot.generation();
    assert_eq!(all.len(), WORKERS * PER_WORKER);
    assert!(all.iter().all(|&g| g >= 1 && g <= final_gen));
    let distinct: std::collections::BTreeSet<u64> = all.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "drill sanity: the load must actually span multiple generations \
         (saw only {distinct:?}; raise PER_WORKER if this flakes)"
    );
}
