//! Request coalescing (issue satellite): N concurrent identical requests
//! must cost exactly ONE analysis — one `analysis.cache.misses`
//! increment, one engine request — and every waiter's response must be
//! byte-identical to the sequential result (only the correlation id
//! differs).
//!
//! This lives in its own test binary on purpose: integration tests are
//! separate processes, so the process-global analysis cache and metrics
//! registry start from zero and counter deltas are exact.

use cnnperf_core::server::protocol::{render_result, result_body, EstimateRequest};
use cnnperf_core::server::{QosClass, Scheduler, ServerConfig};
use cnnperf_core::{clear_analysis_cache, ResilientEngine};
use std::sync::mpsc::channel;
use std::time::Duration;

fn counter(name: &str) -> u64 {
    obs::global().snapshot().counter(name)
}

fn request(id: &str, model: &str, qos: QosClass) -> EstimateRequest {
    EstimateRequest {
        id: id.to_string(),
        model: model.to_string(),
        device: "GTX 1080 Ti".to_string(),
        qos,
        deadline_ms: None,
    }
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_computation() {
    const N: usize = 8;
    clear_analysis_cache();

    // one worker so ordering is deterministic: a blocker job occupies the
    // engine while the N identical requests pile up and coalesce
    let cfg = ServerConfig {
        workers: 1,
        revalidate_stale: false,
        ..ServerConfig::default()
    };
    let scheduler = Scheduler::start(&cfg, None, None);

    let misses_before = counter("analysis.cache.misses");
    let engine_requests_before = counter("engine.requests");

    let (blocker_tx, blocker_rx) = channel();
    scheduler
        .submit(request("blocker", "mobilenet", QosClass::Batch), blocker_tx)
        .expect("blocker admitted");

    let (tx, rx) = channel();
    for i in 0..N {
        scheduler
            .submit(
                request(&format!("c{i}"), "alexnet", QosClass::Batch),
                tx.clone(),
            )
            .expect("coalesced request admitted");
    }
    drop(tx);

    let mut responses: Vec<String> = Vec::with_capacity(N);
    for _ in 0..N {
        responses.push(
            rx.recv_timeout(Duration::from_secs(120))
                .expect("coalesced response"),
        );
    }
    blocker_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("blocker response");

    // exactly one miss for the N alexnet requests (plus one for the
    // blocker's model), and exactly two engine requests in total
    assert_eq!(
        counter("analysis.cache.misses") - misses_before,
        2,
        "N concurrent identical requests must analyze exactly once"
    );
    assert_eq!(
        counter("engine.requests") - engine_requests_before,
        2,
        "N concurrent identical requests must hit the engine exactly once"
    );
    assert_eq!(counter("server.coalesced"), (N - 1) as u64);
    assert_eq!(counter("server.admitted"), (N + 1) as u64);
    assert_eq!(counter("server.completed"), (N + 1) as u64);

    // sequential baseline: a fresh engine with the same configuration
    // must produce the exact same payload bytes
    let mut engine = ResilientEngine::new(cfg.engine.clone());
    let outcome = engine.estimate_with_deadline(
        "alexnet",
        "GTX 1080 Ti",
        cfg.policy.deadline_ms(QosClass::Batch),
    );
    let expected_body = result_body(&outcome, 0);
    assert!(
        expected_body.contains("\"outcome\":\"served:"),
        "baseline must be served, got {expected_body}"
    );

    for i in 0..N {
        let id = format!("c{i}");
        let expected = render_result(&id, &expected_body);
        assert!(
            responses.contains(&expected),
            "waiter {id}: no response byte-identical to the sequential result\n\
             expected: {expected}\n\
             got:      {responses:?}"
        );
    }

    scheduler.drain(Duration::from_secs(5));
}
