//! Property tests for the PTX printer/parser pair: every module we can
//! print must parse back to an identical structure (the paper's pipeline
//! consumes PTX text, so text must be a lossless interface).

use proptest::prelude::*;
use ptx::inst::{Address, BodyElem, Instruction, Op, Operand};
use ptx::kernel::{Kernel, KernelParam, Module};
use ptx::types::{BinOp, CmpOp, Reg, RegClass, Space, SpecialReg, Type, UnOp};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (
        prop_oneof![
            Just(RegClass::R),
            Just(RegClass::Rd),
            Just(RegClass::F),
            Just(RegClass::P)
        ],
        0u32..64,
    )
        .prop_map(|(class, idx)| Reg { class, idx })
}

fn int_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::U32),
        Just(Type::S32),
        Just(Type::U64),
        Just(Type::B32)
    ]
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        (-100_000i64..100_000).prop_map(Operand::ImmI),
        any::<u32>().prop_map(|bits| Operand::ImmF(f32::from_bits(bits & 0x7F7F_FFFF))),
        prop_oneof![
            Just(SpecialReg::TidX),
            Just(SpecialReg::CtaIdX),
            Just(SpecialReg::NTidX),
            Just(SpecialReg::NCtaIdX)
        ]
        .prop_map(Operand::Special),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let bin = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor)
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne)
    ];
    let un = prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Abs),
        Just(UnOp::Sqrt),
        Just(UnOp::Rcp),
        Just(UnOp::Ex2),
        Just(UnOp::Lg2)
    ];
    prop_oneof![
        (int_type(), reg_strategy(), operand_strategy()).prop_map(|(t, dst, src)| Op::Mov {
            t,
            dst,
            src
        }),
        (
            bin,
            int_type(),
            reg_strategy(),
            operand_strategy(),
            operand_strategy()
        )
            .prop_map(|(op, t, dst, a, b)| Op::Bin { op, t, dst, a, b }),
        (un, reg_strategy(), operand_strategy()).prop_map(|(op, dst, a)| Op::Un {
            op,
            t: Type::F32,
            dst,
            a
        }),
        (
            cmp,
            int_type(),
            reg_strategy(),
            operand_strategy(),
            operand_strategy()
        )
            .prop_map(|(cmp, t, dst, a, b)| Op::Setp { cmp, t, dst, a, b }),
        (reg_strategy(), reg_strategy(), -512i64..512).prop_map(|(dst, base, off)| {
            Op::Ld {
                space: Space::Global,
                t: Type::F32,
                dst,
                addr: Address::reg_off(base, off),
            }
        }),
        (reg_strategy(), reg_strategy(), -512i64..512).prop_map(|(src, base, off)| {
            Op::St {
                space: Space::Global,
                t: Type::F32,
                src: Operand::Reg(src),
                addr: Address::reg_off(base, off),
            }
        }),
        (
            reg_strategy(),
            operand_strategy(),
            operand_strategy(),
            operand_strategy()
        )
            .prop_map(|(dst, a, b, c)| Op::Mad {
                t: Type::F32,
                dst,
                a,
                b,
                c
            }),
        Just(Op::Bar),
    ]
}

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    (
        op_strategy(),
        proptest::option::of((0u32..8, any::<bool>())),
    )
        .prop_map(|(op, guard)| Instruction {
            op,
            guard: guard.map(|(i, n)| (Reg::new(RegClass::P, i), n)),
        })
}

fn kernel_of(instrs: Vec<Instruction>) -> Kernel {
    let mut body: Vec<BodyElem> = instrs.into_iter().map(BodyElem::Inst).collect();
    body.push(BodyElem::Inst(Instruction::new(Op::Ret)));
    Kernel {
        name: "prop_kernel".into(),
        params: vec![KernelParam {
            name: "prop_kernel_param_0".into(),
            t: Type::U64,
        }],
        reqntid: (128, 1, 1),
        shared_bytes: 256,
        body,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(instrs in proptest::collection::vec(instruction_strategy(), 0..40)) {
        let kernel = kernel_of(instrs);
        let mut module = Module::new("sm_61");
        module.kernels.push(kernel);
        let text = ptx::printer::module(&module);
        let parsed = ptx::parse_module(&text).expect("printer output must parse");
        prop_assert_eq!(&parsed.kernels[0].body, &module.kernels[0].body);
        prop_assert_eq!(&parsed.kernels[0].params, &module.kernels[0].params);
        prop_assert_eq!(parsed.kernels[0].reqntid, module.kernels[0].reqntid);
        prop_assert_eq!(parsed.kernels[0].shared_bytes, module.kernels[0].shared_bytes);
    }

    /// Float immediates must survive the 0f-hex encoding bit-exactly.
    #[test]
    fn float_immediates_bit_exact(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        prop_assume!(!v.is_nan());
        let kernel = kernel_of(vec![Instruction::new(Op::Mov {
            t: Type::F32,
            dst: Reg::new(RegClass::F, 0),
            src: Operand::ImmF(v),
        })]);
        let mut module = Module::new("sm_61");
        module.kernels.push(kernel);
        let parsed = ptx::parse_module(&ptx::printer::module(&module)).expect("parses");
        match &parsed.kernels[0].body[0] {
            BodyElem::Inst(Instruction { op: Op::Mov { src: Operand::ImmF(got), .. }, .. }) => {
                prop_assert_eq!(got.to_bits(), v.to_bits());
            }
            other => prop_assert!(false, "unexpected element {:?}", other),
        }
    }
}

/// All 24 codegen templates round-trip (deterministic complement to the
/// random cases above).
#[test]
fn every_codegen_template_roundtrips() {
    let mut module = Module::new("sm_61");
    module.kernels = ptx_codegen::templates::build_all();
    let text = ptx::printer::module(&module);
    let parsed = ptx::parse_module(&text).expect("parses");
    assert_eq!(parsed.kernels.len(), module.kernels.len());
    for (a, b) in module.kernels.iter().zip(&parsed.kernels) {
        assert_eq!(a.body, b.body, "{} body changed", a.name);
        assert_eq!(a.shared_bytes, b.shared_bytes);
    }
}
