//! Integration tests for the observability layer: the counter invariants
//! the instrumentation promises must hold over real engine runs, and the
//! counters themselves must be deterministic for fixed-seed workloads.
//!
//! All tests share the process-global [`obs`] registry, so each one takes
//! a mutex and measures *deltas* between its own before/after snapshots
//! rather than asserting absolute values.

use cnnperf_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // a panicking test must not wedge the others
    REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Four requests: 2 CNNs x 2 GPUs, analytical tier only plus a cold
/// stale-cache tier in front so cache-lookup counters see traffic.
fn four_requests() -> Vec<(String, String)> {
    let mut reqs = Vec::new();
    for m in ["alexnet", "mobilenet"] {
        for d in ["GTX 1080 Ti", "V100S"] {
            reqs.push((m.to_string(), d.to_string()));
        }
    }
    reqs
}

fn quiet_config() -> EngineConfig {
    EngineConfig {
        deadline_ms: 60_000,
        tiers: vec![Tier::StaleCache, Tier::Analytical],
        ..EngineConfig::default()
    }
}

/// Sum of all `engine.tier.<tier>.failure.*` deltas for one tier.
fn failure_sum(deltas: &BTreeMap<String, u64>, tier: &str) -> u64 {
    let prefix = format!("engine.tier.{tier}.failure.");
    deltas
        .iter()
        .filter(|(k, _)| k.starts_with(&prefix))
        .map(|(_, v)| v)
        .sum()
}

fn delta(deltas: &BTreeMap<String, u64>, name: &str) -> u64 {
    deltas.get(name).copied().unwrap_or(0)
}

#[test]
fn tier_outcomes_sum_to_requests_and_cache_traffic_balances() {
    let _guard = lock();
    let before = obs::global().snapshot();

    let mut engine = ResilientEngine::new(quiet_config());
    let outcomes = engine.estimate_batch(&four_requests());
    assert_eq!(outcomes.len(), 4);

    let after = obs::global().snapshot();
    let d = after.delta_counters(&before);

    let requests = delta(&d, "engine.requests");
    assert_eq!(requests, 4, "{d:?}");
    let served = delta(&d, "engine.outcome.served");
    let exhausted = delta(&d, "engine.outcome.exhausted");
    let overloaded = delta(&d, "engine.outcome.overloaded");
    assert_eq!(served + exhausted + overloaded, requests, "{d:?}");

    // the cold stale-cache tier in front guarantees real lookup traffic
    let lookups = delta(&d, "engine.cache.lookups");
    assert!(lookups >= 4, "{d:?}");
    assert_eq!(
        delta(&d, "engine.cache.hits") + delta(&d, "engine.cache.misses"),
        lookups,
        "{d:?}"
    );

    // every tier consultation is an attempt, and every attempt resolves
    for tier in ["stale-cache", "analytical"] {
        let attempts = delta(&d, &format!("engine.tier.{tier}.attempts"));
        let success = delta(&d, &format!("engine.tier.{tier}.success"));
        assert!(attempts > 0, "tier {tier} saw no attempts: {d:?}");
        assert_eq!(
            success + failure_sum(&d, tier),
            attempts,
            "tier {tier}: {d:?}"
        );
    }
}

#[test]
fn counters_are_identical_across_two_fixed_runs() {
    let _guard = lock();

    let run = || {
        // memoization is deliberately cross-run state: start each run with a
        // cold analysis cache so the determinism contract compares like with
        // like (a warm second run would legitimately count hits, not misses)
        cnnperf_core::clear_analysis_cache();
        let before = obs::global().snapshot();
        let mut engine = ResilientEngine::new(quiet_config());
        let outcomes = engine.estimate_batch(&four_requests());
        assert!(outcomes.iter().all(|o| o.served()), "warm-path run failed");
        obs::global().snapshot().delta_counters(&before)
    };

    let first = run();
    let second = run();
    // exact counters, not just the same keys: the determinism contract is
    // that wall-clock noise is confined to duration-histogram buckets
    assert_eq!(first, second);
    assert!(first.contains_key("engine.requests"), "{first:?}");
    assert!(
        first.keys().any(|k| k.starts_with("ptx.exec.")),
        "analytical tier should exercise the executor: {first:?}"
    );
}

#[test]
fn chaos_faults_show_up_in_failure_counters() {
    let _guard = lock();
    let before = obs::global().snapshot();

    // every analytical invocation faults (hang or panic, split 50/50 by a
    // deterministic per-request draw); the short deadline keeps each
    // injected hang bounded by its tier time slice, and the breaker is
    // effectively disabled so every injected fault reaches its tier
    // instead of collapsing into breaker-open failures
    let config = EngineConfig {
        deadline_ms: 300,
        tiers: vec![Tier::Analytical, Tier::StaleCache],
        chaos: gpu_sim::ChaosProfile::parse("hang=0.5,panic=0.5,seed=7").unwrap(),
        breaker: BreakerConfig {
            min_samples: 1000,
            ..BreakerConfig::default()
        },
        ..EngineConfig::default()
    };
    let mut engine = ResilientEngine::new(config);
    let mut requests = four_requests();
    for m in ["vgg16", "resnet50"] {
        for d in ["GTX 1080 Ti", "V100S"] {
            requests.push((m.to_string(), d.to_string()));
        }
    }
    let outcomes = engine.estimate_batch(&requests);
    assert!(
        outcomes.iter().all(|o| !o.served()),
        "chaos must deny service"
    );

    let after = obs::global().snapshot();
    let d = after.delta_counters(&before);

    let panics = delta(&d, "engine.tier.analytical.failure.panic");
    let timeouts = delta(&d, "engine.tier.analytical.failure.timeout");
    assert!(panics > 0, "injected panics not counted: {d:?}");
    assert!(
        timeouts > 0,
        "injected hangs not counted as timeouts: {d:?}"
    );

    // tiers that never ran must not accumulate failures
    assert_eq!(failure_sum(&d, "detailed"), 0, "{d:?}");
    assert_eq!(failure_sum(&d, "regressor"), 0, "{d:?}");

    // the global invariants hold under chaos too
    let requests_n = delta(&d, "engine.requests");
    assert_eq!(requests_n, 8, "{d:?}");
    assert_eq!(
        delta(&d, "engine.outcome.served")
            + delta(&d, "engine.outcome.exhausted")
            + delta(&d, "engine.outcome.overloaded"),
        requests_n,
        "{d:?}"
    );
    let attempts = delta(&d, "engine.tier.analytical.attempts");
    assert_eq!(
        delta(&d, "engine.tier.analytical.success") + failure_sum(&d, "analytical"),
        attempts,
        "{d:?}"
    );
}

#[test]
fn snapshot_json_round_trips_through_the_parser() {
    let _guard = lock();
    obs::global().counter("obs_test.json.probe").add(3);
    obs::global().histogram("obs_test.json.hist").record(1024);

    let json = obs::global().snapshot().to_json();
    assert_eq!(json.lines().count(), 1, "snapshot JSON must be one line");
    let v = serde_json::parse(&json).expect("snapshot must be valid JSON");

    match v.get("schema") {
        Some(serde_json::Value::Int(1)) => {}
        other => panic!("bad schema field: {other:?}"),
    }
    let counters = v.get("counters").expect("counters object");
    match counters.get("obs_test.json.probe") {
        Some(serde_json::Value::Int(n)) if *n >= 3 => {}
        other => panic!("probe counter wrong: {other:?}"),
    }
    let hist = v
        .get("histograms")
        .and_then(|h| h.get("obs_test.json.hist"))
        .expect("probe histogram present");
    assert!(hist.get("count").is_some() && hist.get("buckets").is_some());
}
