//! End-to-end integration tests spanning every crate: CNN IR -> PTX ->
//! dynamic code analysis -> GPU simulation -> dataset -> regressors ->
//! prediction -> DSE.

use cnnperf::prelude::*;

fn small_corpus() -> Corpus {
    let models: Vec<_> = ["alexnet", "mobilenet", "MobileNetV2"]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).expect("zoo model"))
        .collect();
    build_corpus(&models, &gpu_sim::training_devices()).expect("corpus")
}

#[test]
fn full_pipeline_produces_trainable_dataset() {
    let corpus = small_corpus();
    assert_eq!(corpus.dataset.len(), 6);
    assert_eq!(corpus.dataset.feature_names, feature_names());
    for y in &corpus.dataset.y {
        assert!(*y > 0.0 && *y < 10.0, "IPC {y} out of range");
    }
}

#[test]
fn all_five_regressors_train_on_the_pipeline_output() {
    let corpus = small_corpus();
    for kind in RegressorKind::ALL {
        let p = PerformancePredictor::train(&corpus.dataset, kind, 42);
        let prof = corpus.profile("mobilenet").expect("profiled");
        let y = p.predict(prof, &gpu_sim::specs::gtx_1080_ti());
        assert!(y.is_finite() && y > 0.0, "{} produced {y}", kind.name());
    }
}

#[test]
fn predictor_survives_serialization() {
    let corpus = small_corpus();
    let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 7);
    let q = PerformancePredictor::from_json(&p.to_json()).expect("roundtrip");
    let prof = corpus.profile("alexnet").expect("profiled");
    for dev in gpu_sim::all_devices() {
        assert_eq!(p.predict(prof, &dev), q.predict(prof, &dev));
    }
}

#[test]
fn dse_is_consistent_with_direct_predictions() {
    let corpus = small_corpus();
    let p = PerformancePredictor::train(&corpus.dataset, RegressorKind::DecisionTree, 7);
    let devices = gpu_sim::all_devices();
    let model = cnn_ir::zoo::build("mobilenet").expect("zoo model");
    let outcome = rank_devices(&p, &model, &devices).expect("dse");
    let prof = corpus.profile("mobilenet").expect("profiled");
    for r in &outcome.ranking {
        let dev = gpu_sim::device_by_name(&r.device).expect("device");
        assert_eq!(r.predicted_ipc, p.predict(prof, &dev));
    }
}

#[test]
fn ground_truth_same_model_reproducible_across_runs() {
    let a = small_corpus();
    let b = small_corpus();
    assert_eq!(a.dataset.y, b.dataset.y, "corpus must be deterministic");
    assert_eq!(
        a.profiles
            .iter()
            .map(|p| p.ptx_instructions)
            .collect::<Vec<_>>(),
        b.profiles
            .iter()
            .map(|p| p.ptx_instructions)
            .collect::<Vec<_>>()
    );
}

#[test]
fn instruction_counts_flow_into_features() {
    let corpus = small_corpus();
    let idx = corpus
        .dataset
        .feature_index("ptx_instructions")
        .expect("feature present");
    for (row, label) in corpus.dataset.x.iter().zip(&corpus.dataset.labels) {
        let model = label.split('@').next().expect("label format");
        let prof = corpus.profile(model).expect("profiled");
        assert_eq!(row[idx], prof.ptx_instructions as f64);
    }
}
