//! Fuzz hardening for the PTX parser: arbitrary mutations of valid
//! printer output — byte flips, truncations, line splices — must never
//! panic the parser. Every input either parses or returns a structured
//! [`ParseError`], and a reported error line must actually exist in the
//! input (1-based), so diagnostics always point somewhere real.

use proptest::prelude::*;
use std::sync::OnceLock;

/// Printed PTX of a real lowered model: the fuzz corpus base. Mutations
/// of realistic text exercise far more parser paths than random bytes.
fn base_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let model = cnn_ir::zoo::build("mobilenet").expect("zoo model");
        let plan = ptx_codegen::lower(&model, "sm_61").expect("lowering");
        ptx::printer::module(&plan.module)
    })
}

/// The parser must not panic, and any error must carry a line number
/// within the input (or 1 for empty input).
fn assert_parse_is_total(text: &str) {
    if let Err(e) = ptx::parser::parse_module(text) {
        let line_count = text.lines().count().max(1);
        assert!(
            e.line >= 1 && e.line <= line_count,
            "error line {} outside input ({} lines): {}",
            e.line,
            line_count,
            e.message
        );
    }
}

proptest! {
    #[test]
    fn byte_flips_never_panic(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..16)) {
        let mut bytes = base_text().as_bytes().to_vec();
        for (pos, val) in flips {
            let at = pos as usize % bytes.len();
            bytes[at] = val;
        }
        let text = String::from_utf8_lossy(&bytes);
        assert_parse_is_total(&text);
    }

    #[test]
    fn truncations_never_panic(cut in any::<u16>()) {
        let base = base_text();
        let at = cut as usize % base.len();
        // truncate on a char boundary (printer output is ASCII, but don't
        // rely on it)
        let mut at = at;
        while !base.is_char_boundary(at) {
            at -= 1;
        }
        assert_parse_is_total(&base[..at]);
    }

    #[test]
    fn line_splices_never_panic(
        start in any::<u16>(),
        len in 1u16..40,
        dest in any::<u16>(),
        dup in any::<bool>(),
    ) {
        let lines: Vec<&str> = base_text().lines().collect();
        let start = start as usize % lines.len();
        let end = (start + len as usize).min(lines.len());
        let dest = dest as usize % lines.len();
        // splice a block of lines somewhere else (optionally keeping the
        // original too): tears param lists, headers and bodies apart
        let mut spliced: Vec<&str> = Vec::with_capacity(lines.len() + (end - start));
        for (i, l) in lines.iter().enumerate() {
            if i == dest {
                spliced.extend(&lines[start..end]);
            }
            if dup || !(start..end).contains(&i) {
                spliced.push(l);
            }
        }
        assert_parse_is_total(&spliced.join("\n"));
    }

    #[test]
    fn random_ascii_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        assert_parse_is_total(&text);
    }
}
