//! Integration tests for the crash-safe cell journal and the watchdog
//! supervisor (the ISSUE's acceptance scenarios): a build interrupted
//! mid-journal and resumed must produce a corpus byte-identical to an
//! uninterrupted one without recomputing journaled cells; a corrupted
//! segment tail must be quarantined, not trusted; and a chaos-injected
//! hanging cell must be cancelled by the watchdog instead of wedging the
//! build.

use cnnperf_core::{
    build_corpus_robust_with, BuildMeta, BuildOptions, CellStatus, Journal, Replay, RobustConfig,
    SuperviseConfig, Supervisor, DEFAULT_SM_TARGET, JOURNAL_SCHEMA,
};
use gpu_sim::{ChaosProfile, DeviceSpec};
use std::path::PathBuf;
use std::sync::Mutex;

/// The journal/supervise counters are process-global; serialize the tests
/// that assert on their deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn mini_models() -> Vec<cnn_ir::ModelGraph> {
    ["alexnet", "mobilenet"]
        .iter()
        .map(|n| cnn_ir::zoo::build(n).unwrap())
        .collect()
}

fn one_device() -> Vec<DeviceSpec> {
    vec![gpu_sim::training_devices().remove(0)]
}

fn meta_for(cfg: &RobustConfig) -> BuildMeta {
    BuildMeta {
        schema: JOURNAL_SCHEMA,
        sm_target: DEFAULT_SM_TARGET.to_string(),
        runs: cfg.runs,
        retry: cfg.retry.clone(),
        faults: cfg.faults.clone(),
        strict: cfg.strict,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cnnperf-journal-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_journaled(
    dir: &std::path::Path,
    cfg: &RobustConfig,
    resume: bool,
) -> (cnnperf_core::Corpus, Replay) {
    let (journal, replay) = Journal::open(dir, &meta_for(cfg), resume).expect("journal open");
    let opts = BuildOptions {
        journal: Some(&journal),
        replay: Some(&replay),
        supervisor: None,
        chaos: ChaosProfile::none(),
    };
    let (corpus, _report) =
        build_corpus_robust_with(&mini_models(), &one_device(), cfg, &opts).expect("build");
    (corpus, replay)
}

#[test]
fn resume_after_truncated_journal_matches_clean_build() {
    let _guard = lock();
    let cfg = RobustConfig::strict_single_run();
    let (clean, _) =
        build_corpus_robust_with(&mini_models(), &one_device(), &cfg, &BuildOptions::none())
            .expect("clean build");

    // full journaled build, then simulate a SIGKILL mid-build by
    // truncating the segment to a record prefix (the journal is
    // flush-per-append, so a killed build leaves exactly such a prefix)
    let dir = fresh_dir("truncate");
    let _ = build_journaled(&dir, &cfg, false);
    let seg = dir.join("segment-00000.jsonl");
    let text = std::fs::read_to_string(&seg).expect("segment");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected meta+model+cell records");
    let prefix: String = lines[..3].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&seg, prefix).expect("truncate");

    let before = obs::global().snapshot();
    let (resumed, replay) = build_journaled(&dir, &cfg, true);
    let after = obs::global().snapshot();
    assert!(replay.records > 0, "truncated journal must still replay");
    assert!(
        after.counter_delta(&before, "journal.replayed") > 0,
        "resume must replay journaled cells"
    );
    assert_eq!(
        resumed.canonical_json(),
        clean.canonical_json(),
        "resumed corpus must be byte-identical to an uninterrupted build"
    );
}

#[test]
fn fully_journaled_resume_recomputes_nothing() {
    let _guard = lock();
    let cfg = RobustConfig::strict_single_run();
    let dir = fresh_dir("full");
    let (first, _) = build_journaled(&dir, &cfg, false);

    let before = obs::global().snapshot();
    let (resumed, _) = build_journaled(&dir, &cfg, true);
    let after = obs::global().snapshot();
    assert_eq!(resumed.canonical_json(), first.canonical_json());
    assert_eq!(
        after.counter_delta(&before, "journal.computed"),
        0,
        "a fully journaled build must recompute no cell"
    );
    assert_eq!(
        after.counter_delta(&before, "analysis.cache.lookups"),
        0,
        "the full-replay fast path must skip even the cached analysis"
    );
    assert_eq!(
        after.counter_delta(&before, "journal.replayed") as usize,
        mini_models().len() * one_device().len(),
        "every cell must come from the journal"
    );
}

#[test]
fn corrupt_segment_tail_is_quarantined_and_resume_matches_clean() {
    let _guard = lock();
    let cfg = RobustConfig::strict_single_run();
    let (clean, _) =
        build_corpus_robust_with(&mini_models(), &one_device(), &cfg, &BuildOptions::none())
            .expect("clean build");

    let dir = fresh_dir("bitflip");
    let (_, _) = build_journaled(&dir, &cfg, false);
    let seg = dir.join("segment-00000.jsonl");
    let mut bytes = std::fs::read(&seg).expect("segment");
    // flip a bit inside the last record's JSON payload: the checksum must
    // catch it and quarantine the tail from that record on
    let flip_at = bytes.len() - 10;
    bytes[flip_at] ^= 0x01;
    std::fs::write(&seg, &bytes).expect("rewrite");

    let (resumed, replay) = build_journaled(&dir, &cfg, true);
    assert_eq!(replay.corrupt_segments, 1, "bad tail must be quarantined");
    assert!(
        dir.join("segment-00000.jsonl.corrupt").exists(),
        "quarantined segment must be preserved for forensics"
    );
    assert_eq!(
        resumed.canonical_json(),
        clean.canonical_json(),
        "corruption must cost recomputation, never correctness"
    );

    // and the repaired journal replays cleanly on the next resume
    let (_, replay2) = Journal::open(&dir, &meta_for(&cfg), true).expect("reopen");
    assert_eq!(replay2.corrupt_segments, 0, "repair must not leave damage");
}

#[test]
fn hanging_cell_is_cancelled_by_watchdog() {
    let _guard = lock();
    let cfg = RobustConfig {
        strict: false,
        ..RobustConfig::strict_single_run()
    };
    let supervisor = Supervisor::start(SuperviseConfig::with_timeout_ms(150));
    let opts = BuildOptions {
        journal: None,
        replay: None,
        supervisor: Some(&supervisor),
        chaos: ChaosProfile::parse("hang=1.0,seed=7").expect("chaos spec"),
    };
    let models = vec![cnn_ir::zoo::build("alexnet").unwrap()];
    let t0 = std::time::Instant::now();
    let before = obs::global().snapshot();
    let (corpus, report) =
        build_corpus_robust_with(&models, &one_device(), &cfg, &opts).expect("build degrades");
    let after = obs::global().snapshot();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "watchdog must unwedge the build promptly"
    );
    assert_eq!(corpus.dataset.len(), 0, "a timed-out cell emits no row");
    assert_eq!(report.timed_out_count(), 1);
    let timed_out = report
        .cells
        .iter()
        .find(|c| matches!(c.status, CellStatus::TimedOut { .. }))
        .expect("timed-out cell in report");
    match timed_out.status {
        CellStatus::TimedOut { waited_ms } => assert!(
            waited_ms >= 100,
            "cancellation cannot precede the timeout (waited {waited_ms} ms)"
        ),
        _ => unreachable!(),
    }
    assert!(
        after.counter_delta(&before, "supervise.cancelled") >= 1,
        "the watchdog must have fired the cancellation token"
    );
}
