//! Offline stand-in for `rand` covering the subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! splitmix64 — high-quality, deterministic, and stable across platforms
//! (the real `StdRng` explicitly does NOT promise a stable stream across
//! versions, so downstream code must not depend on exact sequences, only
//! on determinism within a build — which this shim also provides).

/// Construction from a `u64` seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform sampling within a half-open integer range.
pub trait SampleUniform: Copy {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // avoid the all-zero state (splitmix64 of any seed cannot
            // produce four zeros, but keep the guard explicit)
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Fisher–Yates shuffle, matching `rand::seq::SliceRandom::shuffle`'s
    /// contract (uniform permutation, deterministic under a seeded rng).
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle moved something");
    }
}
