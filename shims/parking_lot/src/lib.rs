//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! with parking_lot's no-poisoning API (a poisoned std lock propagates the
//! original panic by panicking again, which matches how this workspace
//! uses the locks — worker panics already abort the computation).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
