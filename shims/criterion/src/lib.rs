//! Offline stand-in for `criterion` covering the harness subset the bench
//! crate uses: `Criterion`, benchmark groups, `BenchmarkId`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples (default 20) of a single iteration
//! batch, and prints the median wall-clock time per iteration. There is no
//! statistical analysis, HTML report, or baseline persistence — good enough
//! to watch for regressions by eye in a container.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier, e.g. `BenchmarkId::new("bruteforce", threads)` or
/// `BenchmarkId::from_parameter(name)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// median ns/iter from the most recent `iter` call
    result_ns: f64,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // warm-up: run until ~10ms or 3 iterations, whichever is first
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(10) {
            std_black_box(f());
            warm_iters += 1;
        }

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        result_ns: 0.0,
    };
    f(&mut b);
    println!("{label:<50} {:>12}/iter", fmt_ns(b.result_ns));
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| f(b));
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Criterion { samples: 20 }
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 20 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let samples = if self.samples == 0 { 20 } else { self.samples };
        run_one(id, samples, |b| f(b));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn top_level_bench_function() {
        let mut c = Criterion::new();
        c.bench_function("top", |b| b.iter(|| black_box(21u32) * 2));
    }
}
