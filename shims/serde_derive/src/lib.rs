//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! There is no syn/quote in this offline environment, so the item is
//! parsed directly from the `proc_macro::TokenStream` and the impl is
//! emitted as source text. Supported shapes — the only ones this
//! workspace uses — are non-generic structs (named, tuple, unit) and
//! non-generic enums with unit, tuple and struct variants. Generic items
//! produce a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip one attribute (`#` + bracket group) if present.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // inner attributes are `#![...]`; outer are `#[...]`
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '!' {
                        tokens.next();
                    }
                }
                tokens.next(); // the [...] group
            }
            _ => return,
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Skip tokens until a top-level comma (angle-bracket aware) and consume
/// it. Returns false if the stream ended.
fn skip_to_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle: i32 = 0;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut tokens = group.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                // consume `:` then the type
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
                }
                if !skip_to_comma(&mut tokens) {
                    break;
                }
            }
            None => break,
            other => panic!("serde shim derive: unexpected token in fields: {other:?}"),
        }
    }
    names
}

fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut tokens = group.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        arity += 1;
        if !skip_to_comma(&mut tokens) {
            break;
        }
        // tolerate a trailing comma
        if tokens.peek().is_none() {
            break;
        }
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: unexpected token in enum: {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(parse_tuple_arity(g))
            }
            _ => Fields::Unit,
        };
        // skip an explicit discriminant and/or the separating comma
        skip_to_comma(&mut tokens);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "struct" => {
                    let name = expect_ident(&mut tokens);
                    reject_generics(&mut tokens, &name);
                    return match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Item::Struct {
                                name,
                                fields: Fields::Named(parse_named_fields(g.stream())),
                            }
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Item::Struct {
                                name,
                                fields: Fields::Tuple(parse_tuple_arity(g.stream())),
                            }
                        }
                        _ => Item::Struct {
                            name,
                            fields: Fields::Unit,
                        },
                    };
                }
                "enum" => {
                    let name = expect_ident(&mut tokens);
                    reject_generics(&mut tokens, &name);
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Item::Enum {
                                name,
                                variants: parse_variants(g.stream()),
                            };
                        }
                        other => panic!("serde shim derive: expected enum body, got {other:?}"),
                    }
                }
                // `union`, modifiers, etc. — keep scanning
                _ => continue,
            },
            None => panic!("serde shim derive: no struct/enum found"),
            _ => continue,
        }
    }
}

fn expect_ident(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
}

// ---------------------------------------------------------------------------
// codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pushes: String = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),"
                            )
                        })
                        .collect();
                    format!("serde::Value::Obj(vec![{pushes}])")
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("serde::Value::Arr(vec![{items}])")
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Obj(vec![(String::from(\"{vn}\"), serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Obj(vec![(String::from(\"{vn}\"), serde::Value::Arr(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fieldnames) => {
                            let binds = fieldnames.join(", ");
                            let items: String = fieldnames
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Obj(vec![(String::from(\"{vn}\"), serde::Value::Obj(vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let sets: String = names
                        .iter()
                        .map(|f| format!("{f}: serde::field(v, \"{f}\")?,"))
                        .collect();
                    format!("Ok({name} {{ {sets} }})")
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let gets: String = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?,"))
                        .collect();
                    format!(
                        "match v {{\n\
                             serde::Value::Arr(items) if items.len() == {n} => Ok({name}({gets})),\n\
                             other => Err(serde::Error::msg(format!(\"expected {n}-array for {name}, got {{other:?}}\"))),\n\
                         }}"
                    )
                }
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let gets: String = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Arr(items) if items.len() == {n} => Ok({name}::{vn}({gets})),\n\
                                     other => Err(serde::Error::msg(format!(\"bad payload for {name}::{vn}: {{other:?}}\"))),\n\
                                 }},"
                            )
                        }
                        Fields::Named(fieldnames) => {
                            let sets: String = fieldnames
                                .iter()
                                .map(|f| format!("{f}: serde::field(inner, \"{f}\")?,"))
                                .collect();
                            format!("\"{vn}\" => Ok({name}::{vn} {{ {sets} }}),")
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::Error::msg(format!(\"unknown variant {{other}} for {name}\"))),\n\
                             }},\n\
                             serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => Err(serde::Error::msg(format!(\"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::Error::msg(format!(\"bad value for enum {name}: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
