//! Offline stand-in for `serde_json`: renders and parses the serde shim's
//! [`Value`] tree as JSON text. Integers print as integer literals and
//! floats via `{:?}` (shortest round-tripping form, always containing a
//! `.` or exponent), so the Int/Float distinction survives a round trip.

pub use serde::Value;

use std::fmt::Write as _;

/// Error type, nominally distinct from [`serde::Error`] to mirror the real
/// crate split.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} keeps a `.` or exponent, so the parser reads a Float
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null"); // JSON has no NaN/Inf, as in serde_json
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => render_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            render(&items[i], out, indent, depth + 1)
        }),
        Value::Obj(fields) => render_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            render_string(&fields[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            render(&fields[i].1, out, indent, depth + 1)
        }),
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad float `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // fall back for integers beyond i128 (serde_json uses f64 too)
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: u64,
        tag: String,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Dot(Point),
        Pair(u32, u32),
        Rect { w: f64, h: f64 },
    }

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: -1.5e-3,
            y: (1 << 60) + 7,
            tag: "a \"quoted\"\nname".into(),
        };
        let s = to_string(&p).unwrap();
        let q: Point = from_str(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn enum_roundtrip_all_shapes() {
        for shape in [
            Shape::Empty,
            Shape::Dot(Point {
                x: 1.0,
                y: 2,
                tag: "t".into(),
            }),
            Shape::Pair(3, 4),
            Shape::Rect { w: 0.5, h: 2.25 },
        ] {
            let s = to_string(&shape).unwrap();
            let back: Shape = from_str(&s).unwrap();
            assert_eq!(shape, back);
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let p = Point {
            x: 1.0,
            y: 2,
            tag: "z".into(),
        };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains('\n'));
        let q: Point = from_str(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn float_int_distinction_survives() {
        let s = to_string(&vec![1.0f64, 2.5]).unwrap();
        assert_eq!(s, "[1.0,2.5]");
        let v: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, vec![1.0, 2.5]);
    }

    #[test]
    fn nonfinite_floats_become_null_and_read_back_as_nan() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let v: f64 = from_str(&s).unwrap();
        assert!(v.is_nan());
    }
}
