//! Offline stand-in for `proptest` covering the strategy/macro subset this
//! workspace uses: integer-range strategies, `Just`, `prop_oneof!`,
//! `prop_map`, `any::<T>()`, `collection::vec`, tuple strategies, the
//! `proptest!` macro with an optional `ProptestConfig`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: cases are sampled from a fixed
//! xoshiro stream seeded by the test name (fully deterministic, no
//! persistence file) and failing cases are not shrunk — the panic message
//! carries the sampled values via the assertion text instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-test RNG (xoshiro256++ seeded by FNV of the name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Test-runner configuration (only the case count is modeled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Object-safe so `prop_oneof!` can box mixed concrete
/// strategies of the same output type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Constant strategy, as in `Just(Type::U32)`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` desugars to
/// this).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` over the full value domain.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `option::of(strategy)` — `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Real proptest exposes `prop::collection` through the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($s)),+])
    };
}

/// Skip the current case when an assumption does not hold. Expands to
/// `continue` targeting the case loop in `proptest!`, so it is only valid
/// directly inside a proptest body (not inside nested closures) — which
/// matches how this workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// The test-defining macro. Each function body runs `config.cases` times
/// with fresh samples; the per-test RNG is seeded from the function name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_runs(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100, "x was {x}");
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn tuple_and_map_strategies(v in (0u32..4, 1u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 9);
        }
    }
}
