//! Offline stand-in for `rayon`, API-compatible with the subset this
//! workspace uses: `par_iter()` / `into_par_iter()` followed by `map`,
//! `enumerate`, `filter`, `try_for_each`, `for_each` and `collect`.
//!
//! Unlike the real rayon there is no global work-stealing pool; each
//! adaptor chain evaluates eagerly and terminal operations fan work out
//! over `std::thread::scope` with an atomic work index, preserving input
//! order in the output. Nested parallelism simply spawns nested scoped
//! threads, which the OS scheduler absorbs fine at this workspace's
//! fan-out (tens of items per level).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// Eagerly-materialized "parallel" iterator: adaptors consume and rebuild
/// the item vector; parallel evaluation happens in [`ParIter::map`] and the
/// terminal operations.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Parallel map preserving input order. Panics in workers propagate on
/// scope exit, matching rayon's behavior.
fn par_map<T: Send, U: Send, F>(items: Vec<T>, f: F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken once");
                let v = f(item);
                *out[i].lock().unwrap() = Some(v);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

impl<T: Send> ParIter<T> {
    pub fn map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    pub fn filter_map<U: Send, F>(self, f: F) -> ParIter<U>
    where
        F: Fn(T) -> Option<U> + Sync,
    {
        ParIter {
            items: par_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, f);
    }

    pub fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(T) -> Result<(), E> + Sync,
    {
        par_map(self.items, f).into_iter().collect()
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// `xs.par_iter()` for slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `xs.into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Subset of rayon's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size.max(1)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_for_each_surfaces_errors() {
        let v: Vec<u32> = (0..100).collect();
        let r = v
            .par_iter()
            .try_for_each(|&x| if x == 42 { Err(x) } else { Ok(()) });
        assert_eq!(r, Err(42));
        assert_eq!(v.par_iter().try_for_each(|_| Ok::<(), ()>(())), Ok(()));
    }

    #[test]
    fn result_collect_short_forms_work() {
        let v: Vec<u32> = (0..10).collect();
        let ok: Result<Vec<u32>, ()> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        use crate::IntoParallelIterator;
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out[16], 17);
    }
}
