//! Offline stand-in for `serde`. Instead of the real serde's
//! visitor-based zero-copy design, this shim round-trips every value
//! through an owned [`Value`] tree — slower, but API-compatible with the
//! `#[derive(Serialize, Deserialize)]` + `serde_json::to_string/from_str`
//! subset this workspace uses, and dependency-free.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree. Integers and floats are kept distinct so
/// `u64` instruction counts survive exactly (a single f64 channel would
/// corrupt counts above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: extract and deserialize one struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let f = v
        .get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
    T::from_value(f).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i).map_err(|_| Error::msg("negative for u128")),
            other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    other => Err(Error::msg(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_precision_survives() {
        let big: u64 = (1 << 60) + 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn arrays_and_tuples_roundtrip() {
        let a: [u64; 3] = [1, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u32, 2u32, 3u32);
        assert_eq!(<(u32, u32, u32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Int(5)).unwrap(), Some(5));
    }
}
