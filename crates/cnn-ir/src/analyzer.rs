//! The paper's *Static Analyzer* module (Fig. 3, phase 1).
//!
//! Walks a [`ModelGraph`] once and produces a [`ModelSummary`] with the
//! quantities the paper's Table I reports — layer count, neurons and
//! trainable parameters — plus the future-work metrics (FLOPs, MACs) and
//! activation-memory footprint used by the lowering pass.

use crate::graph::{GraphError, ModelGraph};
use crate::layer::ParamCount;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};

/// Per-layer breakdown produced by the analyzer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerSummary {
    pub name: String,
    pub kind: String,
    pub output_shape: TensorShape,
    pub params: ParamCount,
    pub macs: u64,
    pub flops: u64,
}

/// Whole-model summary (one row of the paper's Table I plus extensions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSummary {
    pub name: String,
    /// Input spatial side length (all zoo models use square inputs).
    pub input_size: (u32, u32),
    /// The depth the architecture is named after (Table I "Layers").
    pub nominal_depth: u32,
    /// Number of graph nodes (framework-level layer count).
    pub num_nodes: usize,
    /// Sum of output elements over all layers, Keras-style (Table I "Neurons").
    pub neurons: u64,
    /// Table I "Trainable Parameters".
    pub trainable_params: u64,
    pub non_trainable_params: u64,
    /// Count of weighted layers (conv + dense).
    pub weighted_layers: usize,
    /// Future-work metrics from the paper's conclusion.
    pub macs: u64,
    pub flops: u64,
    /// Bytes of fp32 activations for a single forward pass (batch 1).
    pub activation_bytes: u64,
    pub per_layer: Vec<LayerSummary>,
}

impl ModelSummary {
    pub fn total_params(&self) -> u64 {
        self.trainable_params + self.non_trainable_params
    }
}

/// Analyze one model graph. Cost is a single topological walk.
pub fn analyze(graph: &ModelGraph) -> Result<ModelSummary, GraphError> {
    let shapes = graph.infer_shapes()?;
    let mut per_layer = Vec::with_capacity(graph.len());
    let mut params = ParamCount::ZERO;
    let mut neurons = 0u64;
    let mut macs = 0u64;
    let mut flops = 0u64;
    let mut activation_bytes = 0u64;
    let mut weighted_layers = 0usize;

    for node in graph.nodes() {
        let ins: Vec<TensorShape> = node.inputs.iter().map(|i| shapes[i.index()]).collect();
        let out = shapes[node.id.index()];
        let p = node.layer.param_count(&ins);
        let m = node.layer.macs(&ins, out);
        let f = node.layer.flops(&ins, out);

        params += p;
        neurons += out.elements();
        macs += m;
        flops += f;
        activation_bytes += out.elements() * 4;
        if node.layer.is_weighted() {
            weighted_layers += 1;
        }

        per_layer.push(LayerSummary {
            name: node.name.clone(),
            kind: node.layer.kind_name().to_string(),
            output_shape: out,
            params: p,
            macs: m,
            flops: f,
        });
    }

    let input = graph.input_shape();
    Ok(ModelSummary {
        name: graph.name().to_string(),
        input_size: (input.h, input.w),
        nominal_depth: graph.nominal_depth(),
        num_nodes: graph.len(),
        neurons,
        trainable_params: params.trainable,
        non_trainable_params: params.non_trainable,
        weighted_layers,
        macs,
        flops,
        activation_bytes,
        per_layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::layer::{ActKind, Conv2d, Dense, Layer, Pool2d};
    use crate::shape::Padding;

    /// LeNet-ish toy model with hand-checkable numbers.
    fn toy() -> ModelGraph {
        let mut b = GraphBuilder::new("toy", 4);
        let x = b.input(TensorShape::square(28, 1));
        let x = b.layer(Layer::Conv2d(Conv2d::new(6, 5, 1, Padding::Valid)), &[x]);
        let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
        let x = b.layer(Layer::Pool2d(Pool2d::max(2, 2, Padding::Valid)), &[x]);
        let x = b.layer(Layer::Flatten, &[x]);
        let x = b.layer(Layer::Dense(Dense::new(10)), &[x]);
        b.finish(x)
    }

    #[test]
    fn trainable_params_sum() {
        let s = analyze(&toy()).unwrap();
        // conv: 5*5*1*6 + 6 = 156; dense: 12*12*6*10 + 10 = 8650
        assert_eq!(s.trainable_params, 156 + 8650);
        assert_eq!(s.non_trainable_params, 0);
    }

    #[test]
    fn neurons_include_every_layer_output() {
        let s = analyze(&toy()).unwrap();
        let conv_out = 24 * 24 * 6;
        let pool_out = 12 * 12 * 6;
        let expected = 28 * 28       // input
            + conv_out               // conv
            + conv_out               // relu
            + pool_out               // pool
            + pool_out               // flatten
            + 10; // dense
        assert_eq!(s.neurons, expected as u64);
    }

    #[test]
    fn macs_and_flops() {
        let s = analyze(&toy()).unwrap();
        let conv_macs = 24 * 24 * 6 * 25;
        let dense_macs = 864 * 10;
        assert_eq!(s.macs, (conv_macs + dense_macs) as u64);
        assert!(s.flops > s.macs);
    }

    #[test]
    fn weighted_layer_count() {
        let s = analyze(&toy()).unwrap();
        assert_eq!(s.weighted_layers, 2);
    }

    #[test]
    fn activation_bytes_are_fp32() {
        let s = analyze(&toy()).unwrap();
        assert_eq!(s.activation_bytes, s.neurons * 4);
    }

    #[test]
    fn per_layer_rows_cover_graph() {
        let g = toy();
        let s = analyze(&g).unwrap();
        assert_eq!(s.per_layer.len(), g.len());
        assert_eq!(s.num_nodes, g.len());
        assert_eq!(s.input_size, (28, 28));
    }
}
