//! Layer definitions and the per-layer arithmetic the static analyzer needs:
//! output-shape inference, trainable/non-trainable parameter counts and
//! MAC/FLOP costs.
//!
//! Parameter-count conventions follow Keras `count_params()` semantics, which
//! is what the paper's Table I reports: convolution and dense weights plus
//! biases are trainable; batch-norm scale/shift (`gamma`, `beta`) are
//! trainable while the running statistics (`moving_mean`, `moving_variance`)
//! are non-trainable.

use crate::shape::{Padding, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation function kinds. These carry no parameters; they matter for
/// FLOP counting and for lowering to PTX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActKind {
    Relu,
    Relu6,
    Sigmoid,
    Tanh,
    /// `x * sigmoid(x)` (a.k.a. SiLU) — used by EfficientNet.
    Swish,
    /// `x * relu6(x + 3) / 6` — used by mobile architectures.
    HardSwish,
    Softmax,
}

impl ActKind {
    /// Approximate scalar FLOPs per element for this activation.
    pub fn flops_per_element(&self) -> u64 {
        match self {
            ActKind::Relu | ActKind::Relu6 => 1,
            ActKind::Sigmoid | ActKind::Tanh => 4,
            ActKind::Swish => 5,
            ActKind::HardSwish => 4,
            ActKind::Softmax => 5,
        }
    }
}

impl fmt::Display for ActKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActKind::Relu => "relu",
            ActKind::Relu6 => "relu6",
            ActKind::Sigmoid => "sigmoid",
            ActKind::Tanh => "tanh",
            ActKind::Swish => "swish",
            ActKind::HardSwish => "hard_swish",
            ActKind::Softmax => "softmax",
        };
        f.write_str(s)
    }
}

/// Pooling flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    Max,
    Avg,
}

/// A standard 2-D convolution (optionally grouped).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2d {
    pub out_channels: u32,
    pub kernel: (u32, u32),
    pub stride: (u32, u32),
    pub padding: Padding,
    pub use_bias: bool,
    /// Channel groups; `1` for dense convolution. `in_channels` must be
    /// divisible by `groups`.
    pub groups: u32,
}

impl Conv2d {
    /// Dense (ungrouped) convolution with square kernel and stride.
    pub fn new(out_channels: u32, k: u32, s: u32, padding: Padding) -> Self {
        Self {
            out_channels,
            kernel: (k, k),
            stride: (s, s),
            padding,
            use_bias: true,
            groups: 1,
        }
    }

    /// Disable the bias term (the usual choice before batch norm).
    pub fn no_bias(mut self) -> Self {
        self.use_bias = false;
        self
    }

    /// Rectangular kernel (Inception-style `1x7` / `7x1` factorization).
    pub fn rect(out_channels: u32, kh: u32, kw: u32, padding: Padding) -> Self {
        Self {
            out_channels,
            kernel: (kh, kw),
            stride: (1, 1),
            padding,
            use_bias: true,
            groups: 1,
        }
    }
}

/// Depthwise 2-D convolution: each input channel is convolved with
/// `multiplier` filters of its own.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepthwiseConv2d {
    pub multiplier: u32,
    pub kernel: (u32, u32),
    pub stride: (u32, u32),
    pub padding: Padding,
    pub use_bias: bool,
}

impl DepthwiseConv2d {
    pub fn new(k: u32, s: u32, padding: Padding) -> Self {
        Self {
            multiplier: 1,
            kernel: (k, k),
            stride: (s, s),
            padding,
            use_bias: true,
        }
    }

    pub fn no_bias(mut self) -> Self {
        self.use_bias = false;
        self
    }
}

/// Fully connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dense {
    pub units: u32,
    pub use_bias: bool,
}

impl Dense {
    pub fn new(units: u32) -> Self {
        Self {
            units,
            use_bias: true,
        }
    }
}

/// Spatial pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2d {
    pub kind: PoolKind,
    pub pool: (u32, u32),
    pub stride: (u32, u32),
    pub padding: Padding,
}

impl Pool2d {
    pub fn max(k: u32, s: u32, padding: Padding) -> Self {
        Self {
            kind: PoolKind::Max,
            pool: (k, k),
            stride: (s, s),
            padding,
        }
    }

    pub fn avg(k: u32, s: u32, padding: Padding) -> Self {
        Self {
            kind: PoolKind::Avg,
            pool: (k, k),
            stride: (s, s),
            padding,
        }
    }
}

/// Batch normalization. `scale`/`center` control whether `gamma`/`beta`
/// exist (Keras flags of the same names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchNorm {
    pub scale: bool,
    pub center: bool,
}

impl Default for BatchNorm {
    fn default() -> Self {
        Self {
            scale: true,
            center: true,
        }
    }
}

/// Trainable / non-trainable parameter counts of one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamCount {
    pub trainable: u64,
    pub non_trainable: u64,
}

impl ParamCount {
    pub const ZERO: ParamCount = ParamCount {
        trainable: 0,
        non_trainable: 0,
    };

    pub fn trainable(n: u64) -> Self {
        Self {
            trainable: n,
            non_trainable: 0,
        }
    }

    pub fn total(&self) -> u64 {
        self.trainable + self.non_trainable
    }
}

impl std::ops::Add for ParamCount {
    type Output = ParamCount;
    fn add(self, rhs: ParamCount) -> ParamCount {
        ParamCount {
            trainable: self.trainable + rhs.trainable,
            non_trainable: self.non_trainable + rhs.non_trainable,
        }
    }
}

impl std::ops::AddAssign for ParamCount {
    fn add_assign(&mut self, rhs: ParamCount) {
        self.trainable += rhs.trainable;
        self.non_trainable += rhs.non_trainable;
    }
}

/// Errors produced by shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A window (conv/pool) does not fit the padded input.
    WindowTooLarge { layer: String, input: TensorShape },
    /// Grouped conv with `in_channels % groups != 0`.
    BadGrouping { in_channels: u32, groups: u32 },
    /// Element-wise merge of tensors with different shapes.
    MergeMismatch { a: TensorShape, b: TensorShape },
    /// Concat of tensors with different spatial extents.
    ConcatMismatch { a: TensorShape, b: TensorShape },
    /// Wrong number of inputs for the layer.
    Arity {
        layer: String,
        expected: &'static str,
        got: usize,
    },
    /// Group norm with `channels % groups != 0`.
    BadNormGroups { channels: u32, groups: u32 },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::WindowTooLarge { layer, input } => {
                write!(f, "{layer}: window larger than padded input {input}")
            }
            ShapeError::BadGrouping {
                in_channels,
                groups,
            } => write!(
                f,
                "conv groups {groups} do not divide input channels {in_channels}"
            ),
            ShapeError::MergeMismatch { a, b } => {
                write!(f, "element-wise merge of mismatched shapes {a} vs {b}")
            }
            ShapeError::ConcatMismatch { a, b } => {
                write!(f, "concat of mismatched spatial shapes {a} vs {b}")
            }
            ShapeError::Arity {
                layer,
                expected,
                got,
            } => write!(f, "{layer}: expected {expected} inputs, got {got}"),
            ShapeError::BadNormGroups { channels, groups } => write!(
                f,
                "group norm groups {groups} do not divide channels {channels}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// One graph node's operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Graph entry point carrying the input shape.
    Input {
        shape: TensorShape,
    },
    Conv2d(Conv2d),
    DepthwiseConv2d(DepthwiseConv2d),
    Dense(Dense),
    Pool2d(Pool2d),
    /// Global pooling collapses spatial dims to `1x1`.
    GlobalPool {
        kind: PoolKind,
    },
    BatchNorm(BatchNorm),
    /// Group normalization (used by the BiT `m-r*` models).
    GroupNorm {
        groups: u32,
    },
    Activation(ActKind),
    /// Element-wise sum of >= 2 tensors (residual connections).
    Add,
    /// Element-wise product (squeeze-and-excitation gating).
    Multiply,
    /// Channel-axis concatenation (DenseNet / Inception).
    Concat,
    /// ShuffleNet channel shuffle: permutes channels across groups.
    /// Shape-preserving, parameter-free.
    ChannelShuffle {
        groups: u32,
    },
    ZeroPad {
        top: u32,
        bottom: u32,
        left: u32,
        right: u32,
    },
    Flatten,
    Dropout {
        rate: f32,
    },
}

impl Layer {
    /// Short kind name used in error messages and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Input { .. } => "input",
            Layer::Conv2d(_) => "conv2d",
            Layer::DepthwiseConv2d(_) => "depthwise_conv2d",
            Layer::Dense(_) => "dense",
            Layer::Pool2d(p) => match p.kind {
                PoolKind::Max => "max_pool2d",
                PoolKind::Avg => "avg_pool2d",
            },
            Layer::GlobalPool { kind } => match kind {
                PoolKind::Max => "global_max_pool",
                PoolKind::Avg => "global_avg_pool",
            },
            Layer::BatchNorm(_) => "batch_norm",
            Layer::GroupNorm { .. } => "group_norm",
            Layer::Activation(_) => "activation",
            Layer::Add => "add",
            Layer::Multiply => "multiply",
            Layer::Concat => "concat",
            Layer::ChannelShuffle { .. } => "channel_shuffle",
            Layer::ZeroPad { .. } => "zero_pad",
            Layer::Flatten => "flatten",
            Layer::Dropout { .. } => "dropout",
        }
    }

    /// True for layers that carry trainable weights.
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            Layer::Conv2d(_) | Layer::DepthwiseConv2d(_) | Layer::Dense(_)
        )
    }

    /// Infer the output shape from the input shapes.
    pub fn output_shape(&self, inputs: &[TensorShape]) -> Result<TensorShape, ShapeError> {
        let one = |name: &'static str| -> Result<TensorShape, ShapeError> {
            if inputs.len() == 1 {
                Ok(inputs[0])
            } else {
                Err(ShapeError::Arity {
                    layer: name.to_string(),
                    expected: "exactly 1",
                    got: inputs.len(),
                })
            }
        };
        match self {
            Layer::Input { shape } => {
                if inputs.is_empty() {
                    Ok(*shape)
                } else {
                    Err(ShapeError::Arity {
                        layer: "input".into(),
                        expected: "0",
                        got: inputs.len(),
                    })
                }
            }
            Layer::Conv2d(c) => {
                let i = one("conv2d")?;
                if i.c % c.groups != 0 {
                    return Err(ShapeError::BadGrouping {
                        in_channels: i.c,
                        groups: c.groups,
                    });
                }
                let h = c.padding.out_h(i.h, c.kernel.0, c.stride.0);
                let w = c.padding.out_w(i.w, c.kernel.1, c.stride.1);
                match (h, w) {
                    (Some(h), Some(w)) => Ok(TensorShape::hwc(h, w, c.out_channels)),
                    _ => Err(ShapeError::WindowTooLarge {
                        layer: "conv2d".into(),
                        input: i,
                    }),
                }
            }
            Layer::DepthwiseConv2d(c) => {
                let i = one("depthwise_conv2d")?;
                let h = c.padding.out_h(i.h, c.kernel.0, c.stride.0);
                let w = c.padding.out_w(i.w, c.kernel.1, c.stride.1);
                match (h, w) {
                    (Some(h), Some(w)) => Ok(TensorShape::hwc(h, w, i.c * c.multiplier)),
                    _ => Err(ShapeError::WindowTooLarge {
                        layer: "depthwise_conv2d".into(),
                        input: i,
                    }),
                }
            }
            Layer::Dense(d) => {
                let i = one("dense")?;
                // Keras applies Dense to the last axis; our graphs always
                // flatten first, so require a flat input.
                let _ = i;
                Ok(TensorShape::flat(d.units))
            }
            Layer::Pool2d(p) => {
                let i = one("pool2d")?;
                let h = p.padding.out_h(i.h, p.pool.0, p.stride.0);
                let w = p.padding.out_w(i.w, p.pool.1, p.stride.1);
                match (h, w) {
                    (Some(h), Some(w)) => Ok(TensorShape::hwc(h, w, i.c)),
                    _ => Err(ShapeError::WindowTooLarge {
                        layer: "pool2d".into(),
                        input: i,
                    }),
                }
            }
            Layer::GlobalPool { .. } => {
                let i = one("global_pool")?;
                Ok(TensorShape::flat(i.c))
            }
            Layer::BatchNorm(_) => one("batch_norm"),
            Layer::GroupNorm { groups } => {
                let i = one("group_norm")?;
                if i.c % groups != 0 {
                    return Err(ShapeError::BadNormGroups {
                        channels: i.c,
                        groups: *groups,
                    });
                }
                Ok(i)
            }
            Layer::Activation(_) => one("activation"),
            Layer::Add => {
                if inputs.len() < 2 {
                    return Err(ShapeError::Arity {
                        layer: "add".to_string(),
                        expected: "at least 2",
                        got: inputs.len(),
                    });
                }
                let first = inputs[0];
                for &s in &inputs[1..] {
                    if s != first {
                        return Err(ShapeError::MergeMismatch { a: first, b: s });
                    }
                }
                Ok(first)
            }
            Layer::Multiply => {
                // Multiply supports channel-wise broadcast: a `1x1xC` gate
                // against an `HxWxC` tensor (squeeze-and-excitation).
                if inputs.len() != 2 {
                    return Err(ShapeError::Arity {
                        layer: "multiply".to_string(),
                        expected: "exactly 2",
                        got: inputs.len(),
                    });
                }
                let (a, b) = (inputs[0], inputs[1]);
                if a == b || (b.is_flat() && b.c == a.c) {
                    Ok(a)
                } else if a.is_flat() && a.c == b.c {
                    Ok(b)
                } else {
                    Err(ShapeError::MergeMismatch { a, b })
                }
            }
            Layer::Concat => {
                if inputs.len() < 2 {
                    return Err(ShapeError::Arity {
                        layer: "concat".into(),
                        expected: "at least 2",
                        got: inputs.len(),
                    });
                }
                let first = inputs[0];
                let mut c = 0u32;
                for &s in inputs {
                    if (s.h, s.w) != (first.h, first.w) {
                        return Err(ShapeError::ConcatMismatch { a: first, b: s });
                    }
                    c += s.c;
                }
                Ok(TensorShape::hwc(first.h, first.w, c))
            }
            Layer::ChannelShuffle { groups } => {
                let i = one("channel_shuffle")?;
                if i.c % groups != 0 {
                    return Err(ShapeError::BadNormGroups {
                        channels: i.c,
                        groups: *groups,
                    });
                }
                Ok(i)
            }
            Layer::ZeroPad {
                top,
                bottom,
                left,
                right,
            } => {
                let i = one("zero_pad")?;
                Ok(TensorShape::hwc(
                    i.h + top + bottom,
                    i.w + left + right,
                    i.c,
                ))
            }
            Layer::Flatten => {
                let i = one("flatten")?;
                Ok(TensorShape::flat(
                    u32::try_from(i.elements()).expect("flatten overflow"),
                ))
            }
            Layer::Dropout { .. } => one("dropout"),
        }
    }

    /// Trainable / non-trainable parameters given the input shapes.
    pub fn param_count(&self, inputs: &[TensorShape]) -> ParamCount {
        match self {
            Layer::Conv2d(c) => {
                let in_c = inputs[0].c as u64;
                let w = c.kernel.0 as u64
                    * c.kernel.1 as u64
                    * (in_c / c.groups as u64)
                    * c.out_channels as u64;
                let b = if c.use_bias { c.out_channels as u64 } else { 0 };
                ParamCount::trainable(w + b)
            }
            Layer::DepthwiseConv2d(c) => {
                let in_c = inputs[0].c as u64;
                let w = c.kernel.0 as u64 * c.kernel.1 as u64 * in_c * c.multiplier as u64;
                let b = if c.use_bias {
                    in_c * c.multiplier as u64
                } else {
                    0
                };
                ParamCount::trainable(w + b)
            }
            Layer::Dense(d) => {
                let in_n = inputs[0].elements();
                let w = in_n * d.units as u64;
                let b = if d.use_bias { d.units as u64 } else { 0 };
                ParamCount::trainable(w + b)
            }
            Layer::BatchNorm(bn) => {
                let c = inputs[0].c as u64;
                let mut trainable = 0;
                if bn.scale {
                    trainable += c;
                }
                if bn.center {
                    trainable += c;
                }
                ParamCount {
                    trainable,
                    non_trainable: 2 * c, // moving mean + variance
                }
            }
            Layer::GroupNorm { .. } => {
                let c = inputs[0].c as u64;
                ParamCount::trainable(2 * c)
            }
            _ => ParamCount::ZERO,
        }
    }

    /// Multiply-accumulate operations for one forward pass (batch 1).
    pub fn macs(&self, inputs: &[TensorShape], output: TensorShape) -> u64 {
        match self {
            Layer::Conv2d(c) => {
                let in_c = inputs[0].c as u64;
                output.elements() * c.kernel.0 as u64 * c.kernel.1 as u64 * (in_c / c.groups as u64)
            }
            Layer::DepthwiseConv2d(c) => output.elements() * c.kernel.0 as u64 * c.kernel.1 as u64,
            Layer::Dense(d) => inputs[0].elements() * d.units as u64,
            _ => 0,
        }
    }

    /// Total scalar FLOPs (2 per MAC for weighted layers; element-wise costs
    /// otherwise).
    pub fn flops(&self, inputs: &[TensorShape], output: TensorShape) -> u64 {
        match self {
            Layer::Conv2d(_) | Layer::DepthwiseConv2d(_) | Layer::Dense(_) => {
                2 * self.macs(inputs, output)
            }
            Layer::Pool2d(p) => output.elements() * p.pool.0 as u64 * p.pool.1 as u64,
            Layer::GlobalPool { .. } => inputs[0].elements(),
            Layer::BatchNorm(_) | Layer::GroupNorm { .. } => 2 * output.elements(),
            Layer::Activation(a) => a.flops_per_element() * output.elements(),
            Layer::Add | Layer::Multiply => (inputs.len() as u64 - 1) * output.elements(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(h: u32, w: u32, c: u32) -> TensorShape {
        TensorShape::hwc(h, w, c)
    }

    #[test]
    fn conv_params_match_keras() {
        // VGG16 block1_conv1: 3x3x3x64 + 64 = 1792
        let c = Layer::Conv2d(Conv2d::new(64, 3, 1, Padding::Same));
        assert_eq!(c.param_count(&[s(224, 224, 3)]).trainable, 1792);
        // block1_conv2: 3x3x64x64 + 64 = 36928
        assert_eq!(c.param_count(&[s(224, 224, 64)]).trainable, 36928);
    }

    #[test]
    fn conv_no_bias() {
        let c = Layer::Conv2d(Conv2d::new(64, 3, 1, Padding::Same).no_bias());
        assert_eq!(c.param_count(&[s(224, 224, 3)]).trainable, 1728);
    }

    #[test]
    fn grouped_conv_divides_weights() {
        let mut conv = Conv2d::new(128, 3, 1, Padding::Same).no_bias();
        conv.groups = 4;
        let c = Layer::Conv2d(conv);
        // 3*3*(64/4)*128 = 18432
        assert_eq!(c.param_count(&[s(56, 56, 64)]).trainable, 18432);
    }

    #[test]
    fn grouped_conv_rejects_bad_groups() {
        let mut conv = Conv2d::new(128, 3, 1, Padding::Same);
        conv.groups = 3;
        let c = Layer::Conv2d(conv);
        assert!(matches!(
            c.output_shape(&[s(56, 56, 64)]),
            Err(ShapeError::BadGrouping { .. })
        ));
    }

    #[test]
    fn depthwise_params() {
        // MobileNet dw 3x3 on 32 channels, no bias: 3*3*32 = 288
        let l = Layer::DepthwiseConv2d(DepthwiseConv2d::new(3, 1, Padding::Same).no_bias());
        assert_eq!(l.param_count(&[s(112, 112, 32)]).trainable, 288);
    }

    #[test]
    fn dense_params_match_keras() {
        // VGG16 fc1: 25088*4096 + 4096 = 102764544
        let l = Layer::Dense(Dense::new(4096));
        assert_eq!(
            l.param_count(&[TensorShape::flat(25088)]).trainable,
            102_764_544
        );
    }

    #[test]
    fn batchnorm_split_counts() {
        let l = Layer::BatchNorm(BatchNorm::default());
        let p = l.param_count(&[s(56, 56, 64)]);
        assert_eq!(p.trainable, 128);
        assert_eq!(p.non_trainable, 128);
        assert_eq!(p.total(), 256);
    }

    #[test]
    fn batchnorm_no_scale() {
        // ResNet-v2 style BN without gamma
        let l = Layer::BatchNorm(BatchNorm {
            scale: false,
            center: true,
        });
        let p = l.param_count(&[s(56, 56, 64)]);
        assert_eq!(p.trainable, 64);
        assert_eq!(p.non_trainable, 128);
    }

    #[test]
    fn add_requires_same_shape() {
        assert!(Layer::Add.output_shape(&[s(2, 2, 3), s(2, 2, 4)]).is_err());
        assert_eq!(
            Layer::Add.output_shape(&[s(2, 2, 3), s(2, 2, 3)]).unwrap(),
            s(2, 2, 3)
        );
    }

    #[test]
    fn concat_sums_channels() {
        assert_eq!(
            Layer::Concat
                .output_shape(&[s(4, 4, 3), s(4, 4, 5), s(4, 4, 2)])
                .unwrap(),
            s(4, 4, 10)
        );
        assert!(Layer::Concat
            .output_shape(&[s(4, 4, 3), s(5, 4, 5)])
            .is_err());
    }

    #[test]
    fn flatten_and_global_pool() {
        assert_eq!(
            Layer::Flatten.output_shape(&[s(7, 7, 512)]).unwrap(),
            TensorShape::flat(25088)
        );
        assert_eq!(
            Layer::GlobalPool {
                kind: PoolKind::Avg
            }
            .output_shape(&[s(7, 7, 2048)])
            .unwrap(),
            TensorShape::flat(2048)
        );
    }

    #[test]
    fn conv_macs() {
        // 3x3 conv, 64 -> 64, 56x56 SAME: 56*56*64 * 3*3*64
        let c = Layer::Conv2d(Conv2d::new(64, 3, 1, Padding::Same).no_bias());
        let inp = [s(56, 56, 64)];
        let out = c.output_shape(&inp).unwrap();
        assert_eq!(c.macs(&inp, out), 56 * 56 * 64 * 9 * 64);
        assert_eq!(c.flops(&inp, out), 2 * 56 * 56 * 64 * 9 * 64);
    }

    #[test]
    fn zero_pad_grows_spatial() {
        let l = Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        };
        assert_eq!(l.output_shape(&[s(224, 224, 3)]).unwrap(), s(230, 230, 3));
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(
            Layer::Add.output_shape(&[s(1, 1, 1)]),
            Err(ShapeError::Arity { .. })
        ));
        assert!(matches!(
            Layer::Flatten.output_shape(&[]),
            Err(ShapeError::Arity { .. })
        ));
    }
}
