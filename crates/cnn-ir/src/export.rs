//! Graph export: Graphviz DOT rendering of model graphs (handy for
//! inspecting zoo architectures and custom models).

use crate::graph::ModelGraph;
use crate::layer::Layer;
use std::fmt::Write;

/// Render the model as a Graphviz `digraph`. Nodes are labeled with the
/// layer kind and output shape; weighted layers are drawn as boxes.
pub fn to_dot(graph: &ModelGraph) -> String {
    let shapes = graph.infer_shapes().ok();
    let mut s = String::new();
    writeln!(s, "digraph \"{}\" {{", graph.name()).expect("write");
    writeln!(s, "  rankdir=TB;").expect("write");
    writeln!(s, "  node [fontsize=10];").expect("write");
    for node in graph.nodes() {
        let shape_txt = shapes
            .as_ref()
            .map(|sh| format!("\\n{}", sh[node.id.index()]))
            .unwrap_or_default();
        let style = match &node.layer {
            Layer::Input { .. } => "shape=invhouse, style=filled, fillcolor=lightblue",
            l if l.is_weighted() => "shape=box, style=filled, fillcolor=lightyellow",
            Layer::Add | Layer::Multiply | Layer::Concat => "shape=diamond",
            _ => "shape=ellipse",
        };
        writeln!(
            s,
            "  n{} [label=\"{}{}\", {}];",
            node.id.index(),
            node.name,
            shape_txt,
            style
        )
        .expect("write");
        for input in &node.inputs {
            writeln!(s, "  n{} -> n{};", input.index(), node.id.index()).expect("write");
        }
    }
    writeln!(s, "}}").expect("write");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = crate::zoo::build("alexnet").expect("zoo model");
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"alexnet\""));
        // every node declared
        for node in g.nodes() {
            assert!(dot.contains(&format!("n{} [", node.id.index())));
        }
        // edge count matches input fan-in
        let edges: usize = g.nodes().iter().map(|n| n.inputs.len()).sum();
        let arrows = dot.matches(" -> ").count();
        assert_eq!(arrows, edges);
    }

    #[test]
    fn weighted_layers_are_boxes() {
        let g = crate::zoo::build("vgg16").expect("zoo model");
        let dot = to_dot(&g);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=invhouse"));
    }
}
