//! # cnn-ir — CNN graph IR, static analyzer and model zoo
//!
//! This crate implements the model-side substrate of the paper *"Fast and
//! Accurate: Machine Learning Techniques for Performance Estimation of CNNs
//! for GPGPUs"*:
//!
//! - a layer-level intermediate representation for convolutional networks
//!   ([`graph::ModelGraph`], [`layer::Layer`]),
//! - the paper's *Static Analyzer* module ([`analyzer::analyze`]) computing
//!   trainable parameters, neurons, layer counts, FLOPs and MACs, and
//! - the 32-model zoo of the paper's Table I ([`zoo`]).
//!
//! ```
//! let model = cnn_ir::zoo::build("vgg16").unwrap();
//! let summary = cnn_ir::analyze(&model).unwrap();
//! assert_eq!(summary.trainable_params, 138_357_544); // matches Keras
//! ```

pub mod analyzer;
pub mod export;
pub mod graph;
pub mod layer;
pub mod shape;
pub mod transform;
pub mod zoo;

pub use analyzer::{analyze, LayerSummary, ModelSummary};
pub use export::to_dot;
pub use graph::{GraphBuilder, GraphError, ModelGraph, Node, NodeId};
pub use layer::{
    ActKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Layer, ParamCount, Pool2d, PoolKind,
    ShapeError,
};
pub use shape::{Padding, TensorShape};
pub use transform::{fold_batch_norm, FoldStats};
