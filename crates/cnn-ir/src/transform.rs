//! Graph transformations for inference deployment.
//!
//! [`fold_batch_norm`] is the standard inference-time optimization every
//! framework applies before profiling: a batch-norm (or group-norm)
//! immediately following a bias-free convolution folds into the
//! convolution's weights and bias, eliminating one elementwise pass over
//! the feature map per pair. Since the paper profiles deployed
//! (TensorFlow/Keras) models, running the analysis on folded graphs is the
//! faithful configuration; the unfolded graphs quantify what folding buys.

use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::Layer;

/// Statistics of one folding run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldStats {
    /// Norm layers folded away.
    pub folded: usize,
    /// Nodes in the graph before / after.
    pub nodes_before: usize,
    pub nodes_after: usize,
}

/// Fold BN/GN layers that directly follow a bias-free `Conv2d` or
/// `DepthwiseConv2d` into the convolution (which then carries a bias).
/// A norm is only foldable when the convolution's output has no other
/// consumer. Returns the rewritten graph and statistics.
pub fn fold_batch_norm(graph: &ModelGraph) -> (ModelGraph, FoldStats) {
    // consumer counts per node
    let mut consumers = vec![0usize; graph.len()];
    for node in graph.nodes() {
        for i in &node.inputs {
            consumers[i.index()] += 1;
        }
    }
    let output_idx = graph.output().index();

    // Identify (norm node -> conv node) pairs to fold.
    let mut fold_into: Vec<Option<usize>> = vec![None; graph.len()];
    for node in graph.nodes() {
        let is_norm = matches!(node.layer, Layer::BatchNorm(_) | Layer::GroupNorm { .. });
        if !is_norm || node.inputs.len() != 1 {
            continue;
        }
        let src = node.inputs[0].index();
        if consumers[src] != 1 || src == output_idx {
            continue;
        }
        let foldable = match &graph.nodes()[src].layer {
            Layer::Conv2d(c) => !c.use_bias,
            Layer::DepthwiseConv2d(c) => !c.use_bias,
            _ => false,
        };
        if foldable {
            fold_into[node.id.index()] = Some(src);
        }
    }

    // Rebuild the graph: skip folded norms, give their convs a bias, and
    // remap inputs.
    let mut b = GraphBuilder::new(graph.name(), graph.nominal_depth());
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
    let mut folded = 0usize;
    for node in graph.nodes() {
        if let Some(conv_idx) = fold_into[node.id.index()] {
            // the norm folds into its conv: alias to the conv's new id
            remap[node.id.index()] = remap[conv_idx];
            folded += 1;
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|i| remap[i.index()].expect("topological order"))
            .collect();
        // does a norm fold into THIS node?
        let absorbs_norm = fold_into.iter().any(|f| *f == Some(node.id.index()));
        let layer = match (&node.layer, absorbs_norm) {
            (Layer::Conv2d(c), true) => {
                let mut c = c.clone();
                c.use_bias = true; // folded scale/shift become the bias
                Layer::Conv2d(c)
            }
            (Layer::DepthwiseConv2d(c), true) => {
                let mut c = c.clone();
                c.use_bias = true;
                Layer::DepthwiseConv2d(c)
            }
            (l, _) => l.clone(),
        };
        let id = b.named_layer(node.name.clone(), layer, &inputs);
        remap[node.id.index()] = Some(id);
    }
    let output = remap[output_idx].expect("output survives folding");
    let rewritten = b.finish(output);
    let stats = FoldStats {
        folded,
        nodes_before: graph.len(),
        nodes_after: rewritten.len(),
    };
    (rewritten, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::layer::{ActKind, BatchNorm, Conv2d};
    use crate::shape::{Padding, TensorShape};

    fn conv_bn_relu_graph() -> ModelGraph {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(8, 3));
        let x = b.layer(
            Layer::Conv2d(Conv2d::new(4, 3, 1, Padding::Same).no_bias()),
            &[x],
        );
        let x = b.layer(Layer::BatchNorm(BatchNorm::default()), &[x]);
        let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
        b.finish(x)
    }

    #[test]
    fn folds_conv_bn_pair() {
        let g = conv_bn_relu_graph();
        let (f, stats) = fold_batch_norm(&g);
        assert_eq!(stats.folded, 1);
        assert_eq!(stats.nodes_after, stats.nodes_before - 1);
        // conv now has a bias; no norm remains
        assert!(f
            .nodes()
            .iter()
            .all(|n| !matches!(n.layer, Layer::BatchNorm(_))));
        let conv = f
            .nodes()
            .iter()
            .find_map(|n| match &n.layer {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .expect("conv survives");
        assert!(conv.use_bias);
        f.infer_shapes().expect("folded graph is well-formed");
    }

    #[test]
    fn folding_preserves_shapes_and_weighted_params() {
        let g = conv_bn_relu_graph();
        let (f, _) = fold_batch_norm(&g);
        let before = analyze(&g).unwrap();
        let after = analyze(&f).unwrap();
        // BN's 2C trainable params become the conv's C bias params; the 2C
        // non-trainable running stats disappear
        assert_eq!(
            after.trainable_params,
            before.trainable_params - 4 // 8 BN params -> 4 bias params
        );
        assert_eq!(after.non_trainable_params, 0);
        // output shape unchanged
        assert_eq!(
            f.infer_shapes().unwrap().last(),
            g.infer_shapes().unwrap().last()
        );
    }

    #[test]
    fn biased_conv_does_not_fold() {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(8, 3));
        let x = b.layer(Layer::Conv2d(Conv2d::new(4, 3, 1, Padding::Same)), &[x]);
        let x = b.layer(Layer::BatchNorm(BatchNorm::default()), &[x]);
        let g = b.finish(x);
        let (_, stats) = fold_batch_norm(&g);
        assert_eq!(stats.folded, 0);
    }

    #[test]
    fn shared_conv_output_blocks_folding() {
        // conv feeds both a BN and a residual add: folding would change the
        // add's input, so it must not happen
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(8, 4));
        let c = b.layer(
            Layer::Conv2d(Conv2d::new(4, 3, 1, Padding::Same).no_bias()),
            &[x],
        );
        let bn = b.layer(Layer::BatchNorm(BatchNorm::default()), &[c]);
        let out = b.layer(Layer::Add, &[c, bn]);
        let g = b.finish(out);
        let (f, stats) = fold_batch_norm(&g);
        assert_eq!(stats.folded, 0);
        assert_eq!(f.len(), g.len());
    }

    #[test]
    fn folds_across_a_real_zoo_model() {
        let g = crate::zoo::build("resnet50").unwrap();
        let (f, stats) = fold_batch_norm(&g);
        // resnet50 convs carry biases in the Keras build, so nothing folds
        assert_eq!(stats.folded, 0);
        let _ = f;
        // mobilenet's convs are bias-free before BN: everything folds
        let g = crate::zoo::build("mobilenet").unwrap();
        let (f, stats) = fold_batch_norm(&g);
        assert_eq!(stats.folded, 27, "13 dw + 13 pw + stem");
        f.infer_shapes().expect("well-formed");
        assert_eq!(analyze(&f).unwrap().non_trainable_params, 0);
    }

    #[test]
    fn group_norm_folds_too() {
        let g = crate::zoo::build("m-r50x1").unwrap();
        let (f, stats) = fold_batch_norm(&g);
        // BiT pre-activation order is GN *before* conv, so only GNs that
        // directly follow a conv fold; there are none in pure pre-act nets
        let gn_before = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::GroupNorm { .. }))
            .count();
        let gn_after = f
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::GroupNorm { .. }))
            .count();
        assert_eq!(gn_before - gn_after, stats.folded);
    }
}
