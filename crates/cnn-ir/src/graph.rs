//! The CNN model graph: a DAG of layers in topological order.
//!
//! Nodes are appended through [`GraphBuilder`], which guarantees that every
//! node's inputs were created before it — insertion order therefore *is* a
//! topological order, and downstream passes (shape inference, lowering)
//! iterate the node vector directly.

use crate::layer::{Layer, ShapeError};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque node handle within one [`ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operation in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub name: String,
    pub layer: Layer,
    pub inputs: Vec<NodeId>,
}

/// A complete CNN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    /// The "depth" the architecture is named after (e.g. 50 for ResNet-50).
    nominal_depth: u32,
    nodes: Vec<Node>,
    output: NodeId,
}

impl ModelGraph {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn nominal_depth(&self) -> u32 {
        self.nominal_depth
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn output(&self) -> NodeId {
        self.output
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Input shape of the model (the first `Input` node).
    pub fn input_shape(&self) -> TensorShape {
        self.nodes
            .iter()
            .find_map(|n| match n.layer {
                Layer::Input { shape } => Some(shape),
                _ => None,
            })
            .expect("graph has an input node")
    }

    /// Run shape inference over the whole graph. Returns one shape per node,
    /// indexed by `NodeId::index()`.
    pub fn infer_shapes(&self) -> Result<Vec<TensorShape>, GraphError> {
        infer_over(&self.nodes)
    }
}

/// Shape inference over a topologically ordered node slice.
fn infer_over(nodes: &[Node]) -> Result<Vec<TensorShape>, GraphError> {
    let mut shapes: Vec<TensorShape> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let ins: Vec<TensorShape> = node.inputs.iter().map(|i| shapes[i.index()]).collect();
        let out = node
            .layer
            .output_shape(&ins)
            .map_err(|source| GraphError::Shape {
                node: node.name.clone(),
                source,
            })?;
        shapes.push(out);
    }
    Ok(shapes)
}

/// Errors raised while validating or analyzing a graph.
#[derive(Debug)]
pub enum GraphError {
    Shape { node: String, source: ShapeError },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape { node, source } => {
                write!(f, "shape error at node '{node}': {source}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Shape { source, .. } => Some(source),
        }
    }
}

/// Incremental builder for [`ModelGraph`].
///
/// ```
/// use cnn_ir::{GraphBuilder, Layer, Conv2d, Padding, TensorShape, ActKind};
///
/// let mut b = GraphBuilder::new("tiny", 2);
/// let x = b.input(TensorShape::square(32, 3));
/// let x = b.layer(Layer::Conv2d(Conv2d::new(8, 3, 1, Padding::Same)), &[x]);
/// let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
/// let g = b.finish(x);
/// assert_eq!(g.len(), 3);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nominal_depth: u32,
    nodes: Vec<Node>,
    name_counters: std::collections::HashMap<&'static str, u32>,
}

impl GraphBuilder {
    pub fn new(name: impl Into<String>, nominal_depth: u32) -> Self {
        Self {
            name: name.into(),
            nominal_depth,
            nodes: Vec::new(),
            name_counters: std::collections::HashMap::new(),
        }
    }

    /// Append the model input. Must be called exactly once, first.
    pub fn input(&mut self, shape: TensorShape) -> NodeId {
        assert!(
            self.nodes.is_empty(),
            "input must be the first node of the graph"
        );
        self.layer(Layer::Input { shape }, &[])
    }

    /// Append a layer fed by `inputs`. Panics if any input id is unknown —
    /// that is a programming error in the model definition.
    pub fn layer(&mut self, layer: Layer, inputs: &[NodeId]) -> NodeId {
        for i in inputs {
            assert!(
                (i.0 as usize) < self.nodes.len(),
                "input {i:?} does not exist yet"
            );
        }
        let kind = layer.kind_name();
        let n = self.name_counters.entry(kind).or_insert(0);
        let name = format!("{kind}_{n}");
        *n += 1;
        self.named_layer(name, layer, inputs)
    }

    /// Append a layer with an explicit name.
    pub fn named_layer(
        &mut self,
        name: impl Into<String>,
        layer: Layer,
        inputs: &[NodeId],
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph too large"));
        self.nodes.push(Node {
            id,
            name: name.into(),
            layer,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Shapes of every node added so far. Useful for builders whose wiring
    /// depends on intermediate shapes (e.g. NASNet's adjust blocks). Panics
    /// on a shape error — that is a bug in the model definition.
    pub fn peek_shapes(&self) -> Vec<TensorShape> {
        infer_over(&self.nodes).expect("shape error while building graph")
    }

    /// Finalize the graph with `output` as the model output node.
    pub fn finish(self, output: NodeId) -> ModelGraph {
        assert!(
            (output.0 as usize) < self.nodes.len(),
            "output node does not exist"
        );
        assert!(
            matches!(
                self.nodes.first().map(|n| &n.layer),
                Some(Layer::Input { .. })
            ),
            "graph must start with an input node"
        );
        ModelGraph {
            name: self.name,
            nominal_depth: self.nominal_depth,
            nodes: self.nodes,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ActKind, Conv2d, Dense};
    use crate::shape::Padding;

    fn tiny() -> ModelGraph {
        let mut b = GraphBuilder::new("tiny", 3);
        let x = b.input(TensorShape::square(8, 3));
        let c = b.layer(Layer::Conv2d(Conv2d::new(4, 3, 1, Padding::Same)), &[x]);
        let r = b.layer(Layer::Activation(ActKind::Relu), &[c]);
        let f = b.layer(Layer::Flatten, &[r]);
        let d = b.layer(Layer::Dense(Dense::new(10)), &[f]);
        b.finish(d)
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let g = tiny();
        for (i, n) in g.nodes().iter().enumerate() {
            assert_eq!(n.id.index(), i);
        }
        assert_eq!(g.output().index(), 4);
    }

    #[test]
    fn inputs_precede_consumers() {
        let g = tiny();
        for n in g.nodes() {
            for i in &n.inputs {
                assert!(i.index() < n.id.index());
            }
        }
    }

    #[test]
    fn shape_inference_end_to_end() {
        let g = tiny();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[1], TensorShape::hwc(8, 8, 4));
        assert_eq!(shapes[3], TensorShape::flat(8 * 8 * 4));
        assert_eq!(shapes[4], TensorShape::flat(10));
    }

    #[test]
    fn auto_names_are_unique() {
        let g = tiny();
        let mut names: Vec<&str> = g.nodes().iter().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), g.len());
    }

    #[test]
    #[should_panic(expected = "input must be the first node")]
    fn input_must_be_first() {
        let mut b = GraphBuilder::new("bad", 1);
        let _ = b.named_layer("x", Layer::Flatten, &[]);
        let _ = b.input(TensorShape::square(8, 3));
    }

    #[test]
    fn shape_error_carries_node_name() {
        let mut b = GraphBuilder::new("bad", 1);
        let x = b.input(TensorShape::square(4, 3));
        // 7x7 VALID pool does not fit a 4x4 input
        let p = b.layer(
            Layer::Pool2d(crate::layer::Pool2d::max(7, 1, Padding::Valid)),
            &[x],
        );
        let g = b.finish(p);
        let err = g.infer_shapes().unwrap_err();
        assert!(err.to_string().contains("max_pool2d_0"));
    }
}
