//! Xception (Chollet, 2017) — depthwise-separable convolutions with linear
//! residual connections, Keras layout.

use super::common::separable_conv;
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Dense, Layer, Pool2d, PoolKind};
use crate::shape::{Padding, TensorShape};

fn bn(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

fn relu(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

/// Entry/exit-flow downsampling block:
/// `[relu?] sep(c1) BN relu sep(c2) BN maxpool(3,2)` with a strided 1x1
/// projection residual.
fn down_block(b: &mut GraphBuilder, x: NodeId, c1: u32, c2: u32, leading_relu: bool) -> NodeId {
    let residual = b.layer(
        Layer::Conv2d(Conv2d::new(c2, 1, 2, Padding::Same).no_bias()),
        &[x],
    );
    let residual = bn(b, residual);
    let mut y = x;
    if leading_relu {
        y = relu(b, y);
    }
    y = separable_conv(b, y, c1, 3, 1, Padding::Same);
    y = bn(b, y);
    y = relu(b, y);
    y = separable_conv(b, y, c2, 3, 1, Padding::Same);
    y = bn(b, y);
    y = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Same)), &[y]);
    b.layer(Layer::Add, &[residual, y])
}

/// Middle-flow block: three pre-relu separable convs plus identity residual.
fn middle_block(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let mut y = x;
    for _ in 0..3 {
        y = relu(b, y);
        y = separable_conv(b, y, 728, 3, 1, Padding::Same);
        y = bn(b, y);
    }
    b.layer(Layer::Add, &[x, y])
}

pub fn xception() -> ModelGraph {
    let mut b = GraphBuilder::new("Xception", 71);
    let x = b.input(TensorShape::square(299, 3));
    // Entry flow stem
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(32, 3, 2, Padding::Valid).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let x = relu(&mut b, x);
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(64, 3, 1, Padding::Valid).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let x = relu(&mut b, x);
    // Entry flow blocks
    let x = down_block(&mut b, x, 128, 128, false);
    let x = down_block(&mut b, x, 256, 256, true);
    let x = down_block(&mut b, x, 728, 728, true);
    // Middle flow
    let mut x = x;
    for _ in 0..8 {
        x = middle_block(&mut b, x);
    }
    // Exit flow
    let x = down_block(&mut b, x, 728, 1024, true);
    let x = separable_conv(&mut b, x, 1536, 3, 1, Padding::Same);
    let x = bn(&mut b, x);
    let x = relu(&mut b, x);
    let x = separable_conv(&mut b, x, 2048, 3, 1, Padding::Same);
    let x = bn(&mut b, x);
    let x = relu(&mut b, x);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn params_match_keras_and_paper() {
        let s = analyze(&xception()).unwrap();
        assert_eq!(s.trainable_params, 22_855_952); // == paper Table I
        assert_eq!(s.total_params(), 22_910_480); // == Keras total
    }

    #[test]
    fn middle_flow_keeps_19x19x728() {
        let g = xception();
        let shapes = g.infer_shapes().unwrap();
        assert!(shapes.iter().filter(|s| (s.h, s.c) == (19, 728)).count() > 20);
    }

    #[test]
    fn twelve_residual_adds() {
        let adds = xception()
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Add))
            .count();
        // 3 entry + 8 middle + 1 exit
        assert_eq!(adds, 12);
    }
}
