//! ResNet v1 (He et al., 2015) and ResNet v2 (pre-activation, He et al.,
//! 2016), following the Keras `applications` implementations the paper
//! profiled (biased convolutions in v1, mixed bias policy in v2).

use super::common::{bn_relu, classifier_head, padded_maxpool_3x3_s2};
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Layer, Pool2d};
use crate::shape::{Padding, TensorShape};

/// Biased conv + BN (Keras ResNet v1 convention).
fn conv_bn_biased(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    k: u32,
    s: u32,
    pad: Padding,
) -> NodeId {
    let x = b.layer(Layer::Conv2d(Conv2d::new(out_c, k, s, pad)), &[x]);
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

/// One v1 bottleneck block. `conv_shortcut` selects the projection shortcut
/// used by the first block of every stack.
fn block_v1(
    b: &mut GraphBuilder,
    x: NodeId,
    filters: u32,
    stride: u32,
    conv_shortcut: bool,
) -> NodeId {
    let shortcut = if conv_shortcut {
        conv_bn_biased(b, x, 4 * filters, 1, stride, Padding::Same)
    } else {
        x
    };
    let y = conv_bn_biased(b, x, filters, 1, stride, Padding::Same);
    let y = b.layer(Layer::Activation(ActKind::Relu), &[y]);
    let y = conv_bn_biased(b, y, filters, 3, 1, Padding::Same);
    let y = b.layer(Layer::Activation(ActKind::Relu), &[y]);
    let y = conv_bn_biased(b, y, 4 * filters, 1, 1, Padding::Same);
    let y = b.layer(Layer::Add, &[shortcut, y]);
    b.layer(Layer::Activation(ActKind::Relu), &[y])
}

fn stack_v1(
    b: &mut GraphBuilder,
    mut x: NodeId,
    filters: u32,
    blocks: u32,
    stride1: u32,
) -> NodeId {
    x = block_v1(b, x, filters, stride1, true);
    for _ in 1..blocks {
        x = block_v1(b, x, filters, 1, false);
    }
    x
}

fn resnet_v1(name: &str, depth: u32, blocks: [u32; 4]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        },
        &[x],
    );
    let x = conv_bn_biased(&mut b, x, 64, 7, 2, Padding::Valid);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    let x = stack_v1(&mut b, x, 64, blocks[0], 1);
    let x = stack_v1(&mut b, x, 128, blocks[1], 2);
    let x = stack_v1(&mut b, x, 256, blocks[2], 2);
    let x = stack_v1(&mut b, x, 512, blocks[3], 2);
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

pub fn resnet50() -> ModelGraph {
    resnet_v1("resnet50", 50, [3, 4, 6, 3])
}

pub fn resnet101() -> ModelGraph {
    resnet_v1("resnet101", 101, [3, 4, 23, 3])
}

pub fn resnet152() -> ModelGraph {
    resnet_v1("resnet152", 152, [3, 8, 36, 3])
}

/// One v2 pre-activation bottleneck block (Keras `block2`). The stack applies
/// stride 2 at its *last* block.
fn block_v2(
    b: &mut GraphBuilder,
    x: NodeId,
    filters: u32,
    stride: u32,
    conv_shortcut: bool,
) -> NodeId {
    let preact = bn_relu(b, x);
    let shortcut = if conv_shortcut {
        // projection applied to the pre-activated tensor, with bias
        b.layer(
            Layer::Conv2d(Conv2d::new(4 * filters, 1, stride, Padding::Same)),
            &[preact],
        )
    } else if stride > 1 {
        // subsample the identity path with a 1x1 max pool
        b.layer(Layer::Pool2d(Pool2d::max(1, stride, Padding::Valid)), &[x])
    } else {
        x
    };
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(filters, 1, 1, Padding::Same).no_bias()),
        &[preact],
    );
    let y = bn_relu(b, y);
    let y = b.layer(
        Layer::ZeroPad {
            top: 1,
            bottom: 1,
            left: 1,
            right: 1,
        },
        &[y],
    );
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(filters, 3, stride, Padding::Valid).no_bias()),
        &[y],
    );
    let y = bn_relu(b, y);
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(4 * filters, 1, 1, Padding::Same)),
        &[y],
    );
    b.layer(Layer::Add, &[shortcut, y])
}

fn stack_v2(
    b: &mut GraphBuilder,
    mut x: NodeId,
    filters: u32,
    blocks: u32,
    stride1: u32,
) -> NodeId {
    x = block_v2(b, x, filters, 1, true);
    for _ in 1..blocks.saturating_sub(1) {
        x = block_v2(b, x, filters, 1, false);
    }
    if blocks > 1 {
        x = block_v2(b, x, filters, stride1, false);
    }
    x
}

fn resnet_v2(name: &str, depth: u32, blocks: [u32; 4]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        },
        &[x],
    );
    // v2 stem conv keeps its bias and has no stem BN/ReLU.
    let x = b.layer(Layer::Conv2d(Conv2d::new(64, 7, 2, Padding::Valid)), &[x]);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    let x = stack_v2(&mut b, x, 64, blocks[0], 2);
    let x = stack_v2(&mut b, x, 128, blocks[1], 2);
    let x = stack_v2(&mut b, x, 256, blocks[2], 2);
    let x = stack_v2(&mut b, x, 512, blocks[3], 1);
    let x = bn_relu(&mut b, x); // post-activation before the head
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

pub fn resnet50_v2() -> ModelGraph {
    resnet_v2("resnet50v2", 50, [3, 4, 6, 3])
}

pub fn resnet101_v2() -> ModelGraph {
    resnet_v2("resnet101v2", 101, [3, 4, 23, 3])
}

pub fn resnet152_v2() -> ModelGraph {
    resnet_v2("resnet152v2", 152, [3, 8, 36, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn resnet50_params_match_keras() {
        let s = analyze(&resnet50()).unwrap();
        assert_eq!(s.trainable_params, 25_583_592);
        assert_eq!(s.total_params(), 25_636_712);
    }

    #[test]
    fn resnet101_params_match_keras_and_paper() {
        let s = analyze(&resnet101()).unwrap();
        assert_eq!(s.trainable_params, 44_601_832); // == paper Table I
    }

    #[test]
    fn resnet152_params_match_keras_and_paper() {
        let s = analyze(&resnet152()).unwrap();
        assert_eq!(s.trainable_params, 60_268_520); // == paper Table I
    }

    #[test]
    fn resnet_v2_params_match_keras_and_paper() {
        assert_eq!(
            analyze(&resnet50_v2()).unwrap().trainable_params,
            25_568_360
        );
        assert_eq!(
            analyze(&resnet101_v2()).unwrap().trainable_params,
            44_577_896
        );
        assert_eq!(
            analyze(&resnet152_v2()).unwrap().trainable_params,
            60_236_904
        );
    }

    #[test]
    fn v1_downsamples_at_stack_start_v2_at_stack_end() {
        let g1 = resnet50();
        let s1 = g1.infer_shapes().unwrap();
        assert_eq!(s1.last().unwrap().c, 1000);
        // final feature map before GAP is 7x7x2048 in both variants
        let g2 = resnet50_v2();
        let s2 = g2.infer_shapes().unwrap();
        let gap_in = |g: &crate::graph::ModelGraph, s: &[TensorShape]| {
            let i = g
                .nodes()
                .iter()
                .position(|n| matches!(n.layer, Layer::GlobalPool { .. }))
                .unwrap();
            s[g.nodes()[i].inputs[0].index()]
        };
        assert_eq!(gap_in(&g1, &s1), TensorShape::hwc(7, 7, 2048));
        assert_eq!(gap_in(&g2, &s2), TensorShape::hwc(7, 7, 2048));
    }
}
