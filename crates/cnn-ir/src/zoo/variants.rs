//! Variant architectures beyond the paper's Table I — the conclusion's
//! future-work item "preparing more standard CNNs and variations of
//! well-known CNNs ... to expand our training dataset".
//!
//! Implemented families: basic-block ResNets (ResNet-18/34), width-scaled
//! Wide-ResNets, shallow VGGs (11/13), SqueezeNet 1.1 (fire modules),
//! ShuffleNet v1-style units (grouped 1x1 convs + channel shuffle) and
//! GoogLeNet (Inception v1).

use super::common::{bn_relu, classifier_head, conv_bn_relu, padded_maxpool_3x3_s2};
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, Conv2d, Dense, DepthwiseConv2d, Layer, Pool2d, PoolKind};
use crate::shape::{Padding, TensorShape};

// ---------------------------------------------------------------------------
// basic-block ResNets
// ---------------------------------------------------------------------------

/// Two-conv basic block (ResNet-18/34), post-activation layout.
fn basic_block(
    b: &mut GraphBuilder,
    x: NodeId,
    filters: u32,
    stride: u32,
    project: bool,
) -> NodeId {
    let shortcut = if project {
        let s = b.layer(
            Layer::Conv2d(Conv2d::new(filters, 1, stride, Padding::Same).no_bias()),
            &[x],
        );
        b.layer(Layer::BatchNorm(Default::default()), &[s])
    } else {
        x
    };
    let y = conv_bn_relu(b, x, filters, 3, stride, Padding::Same);
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(filters, 3, 1, Padding::Same).no_bias()),
        &[y],
    );
    let y = b.layer(Layer::BatchNorm(Default::default()), &[y]);
    let y = b.layer(Layer::Add, &[shortcut, y]);
    b.layer(Layer::Activation(ActKind::Relu), &[y])
}

/// Basic-block ResNet with `width` scaling (width 1 = standard).
pub fn resnet_basic(name: &str, depth: u32, blocks: [u32; 4], width: u32) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        },
        &[x],
    );
    let x = conv_bn_relu(&mut b, x, 64 * width, 7, 2, Padding::Valid);
    let mut x = padded_maxpool_3x3_s2(&mut b, x);
    for (stage, &n) in blocks.iter().enumerate() {
        let filters = (64 << stage) * width;
        for i in 0..n {
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let project = i == 0 && (stage > 0 || width > 1);
            x = basic_block(&mut b, x, filters, stride, project);
        }
    }
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

pub fn resnet18() -> ModelGraph {
    resnet_basic("resnet18", 18, [2, 2, 2, 2], 1)
}

pub fn resnet34() -> ModelGraph {
    resnet_basic("resnet34", 34, [3, 4, 6, 3], 1)
}

/// Wide ResNet-18 with doubled channels.
pub fn wide_resnet18_2() -> ModelGraph {
    resnet_basic("wide_resnet18_2", 18, [2, 2, 2, 2], 2)
}

// ---------------------------------------------------------------------------
// shallow VGGs
// ---------------------------------------------------------------------------

fn vgg_variant(name: &str, depth: u32, convs: [u32; 5]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let mut x = b.input(TensorShape::square(224, 3));
    for (i, &n) in convs.iter().enumerate() {
        let out_c = [64u32, 128, 256, 512, 512][i];
        for _ in 0..n {
            x = b.layer(Layer::Conv2d(Conv2d::new(out_c, 3, 1, Padding::Same)), &[x]);
            x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
        }
        x = b.layer(Layer::Pool2d(Pool2d::max(2, 2, Padding::Valid)), &[x]);
    }
    let mut x = b.layer(Layer::Flatten, &[x]);
    for _ in 0..2 {
        x = b.layer(Layer::Dense(Dense::new(4096)), &[x]);
        x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    }
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

pub fn vgg11() -> ModelGraph {
    vgg_variant("vgg11", 11, [1, 1, 2, 2, 2])
}

pub fn vgg13() -> ModelGraph {
    vgg_variant("vgg13", 13, [2, 2, 2, 2, 2])
}

// ---------------------------------------------------------------------------
// SqueezeNet 1.1
// ---------------------------------------------------------------------------

/// Fire module: 1x1 squeeze, then parallel 1x1 and 3x3 expands, concat.
fn fire(b: &mut GraphBuilder, x: NodeId, squeeze: u32, expand: u32) -> NodeId {
    let s = b.layer(
        Layer::Conv2d(Conv2d::new(squeeze, 1, 1, Padding::Same)),
        &[x],
    );
    let s = b.layer(Layer::Activation(ActKind::Relu), &[s]);
    let e1 = b.layer(
        Layer::Conv2d(Conv2d::new(expand, 1, 1, Padding::Same)),
        &[s],
    );
    let e1 = b.layer(Layer::Activation(ActKind::Relu), &[e1]);
    let e3 = b.layer(
        Layer::Conv2d(Conv2d::new(expand, 3, 1, Padding::Same)),
        &[s],
    );
    let e3 = b.layer(Layer::Activation(ActKind::Relu), &[e3]);
    b.layer(Layer::Concat, &[e1, e3])
}

pub fn squeezenet() -> ModelGraph {
    let mut b = GraphBuilder::new("squeezenet1.1", 18);
    let x = b.input(TensorShape::square(227, 3));
    let x = b.layer(Layer::Conv2d(Conv2d::new(64, 3, 2, Padding::Valid)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    let x = fire(&mut b, x, 16, 64);
    let x = fire(&mut b, x, 16, 64);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    let x = fire(&mut b, x, 32, 128);
    let x = fire(&mut b, x, 32, 128);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    let x = fire(&mut b, x, 48, 192);
    let x = fire(&mut b, x, 48, 192);
    let x = fire(&mut b, x, 64, 256);
    let x = fire(&mut b, x, 64, 256);
    let x = b.layer(Layer::Dropout { rate: 0.5 }, &[x]);
    // classifier: 1x1 conv to 1000 classes + GAP
    let x = b.layer(Layer::Conv2d(Conv2d::new(1000, 1, 1, Padding::Same)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

// ---------------------------------------------------------------------------
// ShuffleNet v1 (g = 4)
// ---------------------------------------------------------------------------

/// One ShuffleNet unit: grouped 1x1 -> shuffle -> depthwise 3x3 -> grouped
/// 1x1, with a residual (stride 1) or avg-pool concat (stride 2).
fn shuffle_unit(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: u32,
    out_c: u32,
    stride: u32,
    groups: u32,
) -> NodeId {
    let mid = out_c / 4;
    let branch_out = if stride == 2 { out_c - in_c } else { out_c };
    let mut g1 = Conv2d::new(mid, 1, 1, Padding::Same).no_bias();
    g1.groups = groups;
    let y = b.layer(Layer::Conv2d(g1), &[x]);
    let y = bn_relu(b, y);
    let y = b.layer(Layer::ChannelShuffle { groups }, &[y]);
    let y = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(3, stride, Padding::Same).no_bias()),
        &[y],
    );
    let y = b.layer(Layer::BatchNorm(Default::default()), &[y]);
    let mut g2 = Conv2d::new(branch_out, 1, 1, Padding::Same).no_bias();
    g2.groups = groups;
    let y = b.layer(Layer::Conv2d(g2), &[y]);
    let y = b.layer(Layer::BatchNorm(Default::default()), &[y]);
    if stride == 2 {
        let pool = b.layer(Layer::Pool2d(Pool2d::avg(3, 2, Padding::Same)), &[x]);
        let z = b.layer(Layer::Concat, &[pool, y]);
        b.layer(Layer::Activation(ActKind::Relu), &[z])
    } else {
        let z = b.layer(Layer::Add, &[x, y]);
        b.layer(Layer::Activation(ActKind::Relu), &[z])
    }
}

pub fn shufflenet() -> ModelGraph {
    const G: u32 = 4;
    // stage output channels for g=4
    let stages: [(u32, u32); 3] = [(272, 4), (544, 8), (1088, 4)];
    let mut b = GraphBuilder::new("shufflenet_g4", 50);
    let x = b.input(TensorShape::square(224, 3));
    let x = conv_bn_relu(&mut b, x, 24, 3, 2, Padding::Same);
    let mut x = padded_maxpool_3x3_s2(&mut b, x);
    let mut in_c = 24u32;
    for (out_c, repeats) in stages {
        x = shuffle_unit(&mut b, x, in_c, out_c, 2, G);
        in_c = out_c;
        for _ in 1..repeats {
            x = shuffle_unit(&mut b, x, in_c, out_c, 1, G);
        }
    }
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

// ---------------------------------------------------------------------------
// GoogLeNet (Inception v1)
// ---------------------------------------------------------------------------

/// Inception-v1 module with biased convs and ReLU (no batch norm).
#[allow(clippy::too_many_arguments)]
fn inception_v1_module(
    b: &mut GraphBuilder,
    x: NodeId,
    c1: u32,
    c3r: u32,
    c3: u32,
    c5r: u32,
    c5: u32,
    pool_c: u32,
) -> NodeId {
    let conv_relu = |b: &mut GraphBuilder, x, out_c, k| {
        let y = b.layer(Layer::Conv2d(Conv2d::new(out_c, k, 1, Padding::Same)), &[x]);
        b.layer(Layer::Activation(ActKind::Relu), &[y])
    };
    let b1 = conv_relu(b, x, c1, 1);
    let b3 = conv_relu(b, x, c3r, 1);
    let b3 = conv_relu(b, b3, c3, 3);
    let b5 = conv_relu(b, x, c5r, 1);
    let b5 = conv_relu(b, b5, c5, 5);
    let bp = b.layer(Layer::Pool2d(Pool2d::max(3, 1, Padding::Same)), &[x]);
    let bp = conv_relu(b, bp, pool_c, 1);
    b.layer(Layer::Concat, &[b1, b3, b5, bp])
}

pub fn googlenet() -> ModelGraph {
    let mut b = GraphBuilder::new("googlenet", 22);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(Layer::Conv2d(Conv2d::new(64, 7, 2, Padding::Same)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    let x = b.layer(Layer::Conv2d(Conv2d::new(64, 1, 1, Padding::Same)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = b.layer(Layer::Conv2d(Conv2d::new(192, 3, 1, Padding::Same)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    // 3a, 3b
    let x = inception_v1_module(&mut b, x, 64, 96, 128, 16, 32, 32);
    let x = inception_v1_module(&mut b, x, 128, 128, 192, 32, 96, 64);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    // 4a-4e
    let x = inception_v1_module(&mut b, x, 192, 96, 208, 16, 48, 64);
    let x = inception_v1_module(&mut b, x, 160, 112, 224, 24, 64, 64);
    let x = inception_v1_module(&mut b, x, 128, 128, 256, 24, 64, 64);
    let x = inception_v1_module(&mut b, x, 112, 144, 288, 32, 64, 64);
    let x = inception_v1_module(&mut b, x, 256, 160, 320, 32, 128, 128);
    let x = padded_maxpool_3x3_s2(&mut b, x);
    // 5a, 5b
    let x = inception_v1_module(&mut b, x, 256, 160, 320, 32, 128, 128);
    let x = inception_v1_module(&mut b, x, 384, 192, 384, 48, 128, 128);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dropout { rate: 0.4 }, &[x]);
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

/// A named variant: display name plus builder function.
pub type VariantEntry = (&'static str, fn() -> ModelGraph);

/// All variant models (builder functions plus names).
pub fn all_variants() -> Vec<VariantEntry> {
    vec![
        ("resnet18", resnet18 as fn() -> ModelGraph),
        ("resnet34", resnet34),
        ("wide_resnet18_2", wide_resnet18_2),
        ("vgg11", vgg11),
        ("vgg13", vgg13),
        ("squeezenet1.1", squeezenet),
        ("shufflenet_g4", shufflenet),
        ("googlenet", googlenet),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn resnet18_34_params_match_torchvision() {
        // torchvision: resnet18 = 11,689,512; resnet34 = 21,797,672
        let s18 = analyze(&resnet18()).unwrap();
        let s34 = analyze(&resnet34()).unwrap();
        assert_eq!(s18.trainable_params, 11_689_512);
        assert_eq!(s34.trainable_params, 21_797_672);
    }

    #[test]
    fn vgg11_13_params_match_torchvision() {
        // torchvision: vgg11 = 132,863,336; vgg13 = 133,047,848
        assert_eq!(analyze(&vgg11()).unwrap().trainable_params, 132_863_336);
        assert_eq!(analyze(&vgg13()).unwrap().trainable_params, 133_047_848);
    }

    #[test]
    fn squeezenet_params_match_torchvision() {
        // torchvision squeezenet1_1 = 1,235,496
        assert_eq!(analyze(&squeezenet()).unwrap().trainable_params, 1_235_496);
    }

    #[test]
    fn googlenet_params_plausible() {
        // GoogLeNet main branch ~6M (torchvision googlenet without aux:
        // 5,983,802 conv trunk + fc — our explicit-bias build lands close)
        let s = analyze(&googlenet()).unwrap();
        assert!(
            (5_500_000..7_500_000).contains(&s.trainable_params),
            "{}",
            s.trainable_params
        );
    }

    #[test]
    fn shufflenet_builds_and_shuffle_preserves_shape() {
        let g = shufflenet();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes.last().unwrap().c, 1000);
        // channel shuffle nodes exist and preserve their input shape
        let mut found = 0;
        for n in g.nodes() {
            if matches!(n.layer, Layer::ChannelShuffle { .. }) {
                let inp = shapes[n.inputs[0].index()];
                assert_eq!(shapes[n.id.index()], inp);
                found += 1;
            }
        }
        assert_eq!(found, 16);
    }

    #[test]
    fn wide_resnet_quadruples_conv_params() {
        let p1 = analyze(&resnet18()).unwrap().trainable_params;
        let p2 = analyze(&wide_resnet18_2()).unwrap().trainable_params;
        assert!(p2 > 3 * p1 && p2 < 5 * p1, "p1={p1} p2={p2}");
    }

    #[test]
    fn all_variants_build_and_lower() {
        for (name, build) in all_variants() {
            let g = build();
            g.infer_shapes().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
