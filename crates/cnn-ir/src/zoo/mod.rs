//! The 32-CNN model zoo of the paper's Table I.
//!
//! Every architecture is built from scratch on the [`crate::graph`] IR,
//! following the reference implementations the paper profiled (Keras
//! `applications` for most nets, the original papers otherwise). The
//! registry also carries the paper's reported Table I numbers so the
//! benchmark harness can print paper-vs-ours side by side.
//!
//! Naming follows Table I verbatim, including its quirks: `m-r154x4` is the
//! Big-Transfer R152x4 model (the "154" is a typo in the paper), and
//! `efficientnetb5`'s input size is listed as 156 in the paper but is 456 in
//! the reference implementation — we use 456.

mod alexnet;
mod bit;
mod common;
mod densenet;
mod efficientnet;
mod inception;
mod mobilenet;
mod nasnet;
mod resnet;
pub mod variants;
mod vgg;
mod xception;

// Re-exported so downstream users can assemble custom architectures from
// the same blocks the zoo uses (see `examples/custom_cnn.rs`).
pub use common::{
    bn_relu, classifier_head, conv_bn, conv_bn_relu, conv_bn_relu_noscale, padded_maxpool_3x3_s2,
    se_block, separable_conv,
};

use crate::graph::ModelGraph;

/// Table I values as printed in the paper (for comparison output).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    pub input: u32,
    pub layers: u32,
    pub neurons: u64,
    pub trainable_params: u64,
}

/// One zoo model: a name, a builder and the paper's reference numbers.
#[derive(Clone, Copy)]
pub struct ZooEntry {
    pub name: &'static str,
    pub build: fn() -> ModelGraph,
    pub paper: PaperRow,
}

impl std::fmt::Debug for ZooEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZooEntry")
            .field("name", &self.name)
            .finish()
    }
}

macro_rules! entry {
    ($name:literal, $build:expr, $input:literal, $layers:literal,
     $neurons:literal, $params:literal) => {
        ZooEntry {
            name: $name,
            build: $build,
            paper: PaperRow {
                input: $input,
                layers: $layers,
                neurons: $neurons,
                trainable_params: $params,
            },
        }
    };
}

/// All 32 models, in Table I order.
///
/// Table I prints 31 rows while the paper's text speaks of 32 CNNs
/// throughout; we complete the set with `resnet50` (the obvious omission —
/// both v2 siblings and both deeper v1 siblings are present). Its reference
/// numbers are the Keras values.
pub fn all() -> Vec<ZooEntry> {
    vec![
        entry!("m-r50x1", bit::m_r50x1, 224, 50, 15_903_016, 25_549_352),
        entry!("m-r50x3", bit::m_r50x3, 224, 50, 143_111_080, 217_319_080),
        entry!(
            "m-r101x3",
            bit::m_r101x3,
            224,
            101,
            253_408_168,
            387_934_888
        ),
        entry!("m-r101x1", bit::m_r101x1, 224, 101, 28_158_248, 44_541_480),
        entry!(
            "m-r154x4",
            bit::m_r154x4,
            224,
            154,
            611_981_544,
            936_533_224
        ),
        entry!(
            "resnet50",
            resnet::resnet50,
            224,
            50,
            31_404_508,
            25_583_592
        ),
        entry!(
            "resnet101",
            resnet::resnet101,
            224,
            101,
            55_886_036,
            44_601_832
        ),
        entry!(
            "resnet152",
            resnet::resnet152,
            224,
            152,
            79_067_348,
            60_268_520
        ),
        entry!(
            "resnet50v2",
            resnet::resnet50_v2,
            224,
            50,
            31_381_204,
            25_568_360
        ),
        entry!(
            "resnet101v2",
            resnet::resnet101_v2,
            224,
            101,
            51_261_140,
            44_577_896
        ),
        entry!(
            "resnet152v2",
            resnet::resnet152_v2,
            224,
            152,
            75_755_220,
            60_236_904
        ),
        entry!(
            "nasnetmobile",
            nasnet::nasnet_mobile,
            224,
            771,
            27_690_705,
            5_289_978
        ),
        entry!(
            "nasnetlarge",
            nasnet::nasnet_large,
            331,
            1041,
            290_560_171,
            88_753_150
        ),
        entry!(
            "densenet121",
            densenet::densenet121,
            224,
            121,
            49_926_612,
            7_978_856
        ),
        entry!(
            "densenet169",
            densenet::densenet169,
            224,
            169,
            60_094_164,
            14_149_480
        ),
        entry!(
            "densenet201",
            densenet::densenet201,
            224,
            201,
            77_292_244,
            20_013_928
        ),
        entry!(
            "mobilenet",
            mobilenet::mobilenet_v1,
            224,
            28,
            16_848_248,
            4_231_976
        ),
        entry!(
            "inceptionv3",
            inception::inception_v3,
            299,
            48,
            32_554_387,
            23_817_352
        ),
        entry!("vgg16", vgg::vgg16, 224, 16, 15_262_696, 138_357_544),
        entry!("vgg19", vgg::vgg19, 224, 19, 16_567_272, 143_667_240),
        entry!(
            "efficientnetb0",
            || efficientnet::efficientnet(0),
            224,
            240,
            25_117_095,
            5_288_548
        ),
        entry!(
            "efficientnetb1",
            || efficientnet::efficientnet(1),
            240,
            342,
            40_150_331,
            7_794_184
        ),
        entry!(
            "efficientnetb2",
            || efficientnet::efficientnet(2),
            260,
            342,
            50_908_981,
            9_109_994
        ),
        entry!(
            "efficientnetb3",
            || efficientnet::efficientnet(3),
            300,
            387,
            87_507_971,
            12_233_232
        ),
        entry!(
            "efficientnetb4",
            || efficientnet::efficientnet(4),
            380,
            477,
            180_088_531,
            19_341_616
        ),
        entry!(
            "efficientnetb5",
            || efficientnet::efficientnet(5),
            456,
            579,
            358_290_427,
            30_389_784
        ),
        entry!(
            "efficientnetb6",
            || efficientnet::efficientnet(6),
            528,
            669,
            605_671_091,
            43_040_704
        ),
        entry!(
            "efficientnetb7",
            || efficientnet::efficientnet(7),
            600,
            816,
            1_046_113_195,
            66_347_960
        ),
        entry!(
            "Xception",
            xception::xception,
            299,
            71,
            62_981_867,
            22_855_952
        ),
        entry!(
            "MobileNetV2",
            mobilenet::mobilenet_v2,
            224,
            53,
            21_815_960,
            3_504_872
        ),
        entry!(
            "InceptionResNetV2",
            inception::inception_resnet_v2,
            299,
            164,
            81_201_907,
            55_813_192
        ),
        entry!("alexnet", alexnet::alexnet, 227, 8, 650_000, 58_325_066),
    ]
}

/// Build every zoo model.
pub fn build_all() -> Vec<ModelGraph> {
    all().iter().map(|e| (e.build)()).collect()
}

/// Look up a zoo entry by its Table I name (case-insensitive).
pub fn by_name(name: &str) -> Option<ZooEntry> {
    all()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

/// Build a zoo model by name.
pub fn build(name: &str) -> Option<ModelGraph> {
    by_name(name).map(|e| (e.build)())
}

/// Build a model by name from the Table I zoo *or* the variant catalog
/// ([`variants`]).
pub fn build_any(name: &str) -> Option<ModelGraph> {
    build(name).or_else(|| {
        variants::all_variants()
            .into_iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, f)| f())
    })
}

/// The six "entirely independent" standard CNNs the paper's Fig. 4 evaluates
/// (drawn from [20], [24], [25]: AlexNet, EfficientNet, Xception families).
pub fn fig4_eval_names() -> [&'static str; 6] {
    [
        "alexnet",
        "efficientnetb4",
        "efficientnetb7",
        "Xception",
        "MobileNetV2",
        "InceptionResNetV2",
    ]
}

/// The seven CNNs of the paper's Table IV timing experiment.
pub fn table4_names() -> [&'static str; 7] {
    [
        "efficientnetb3",
        "efficientnetb4",
        "efficientnetb5",
        "efficientnetb6",
        "efficientnetb7",
        "Xception",
        "MobileNetV2",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_32_models() {
        assert_eq!(all().len(), 32);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("XCEPTION").is_some());
        assert!(by_name("xception").is_some());
        assert!(by_name("not-a-model").is_none());
    }

    #[test]
    fn eval_sets_are_zoo_subsets() {
        for n in fig4_eval_names() {
            assert!(by_name(n).is_some(), "{n} missing from zoo");
        }
        for n in table4_names() {
            assert!(by_name(n).is_some(), "{n} missing from zoo");
        }
    }

    #[test]
    fn every_model_builds_and_infers_shapes() {
        for e in all() {
            let g = (e.build)();
            assert!(!g.is_empty(), "{} is empty", e.name);
            g.infer_shapes()
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        }
    }

    #[test]
    fn input_sizes_match_registry() {
        for e in all() {
            let g = (e.build)();
            let inp = g.input_shape();
            assert_eq!(inp.h, e.paper.input, "{} input height", e.name);
            assert_eq!(inp.c, 3, "{} input channels", e.name);
        }
    }
}
