//! NASNet-A Mobile and Large (Zoph et al., 2018), following the Keras
//! implementation: stacked normal cells separated by reduction cells, with
//! twice-applied separable convolutions and the factorized-reduction
//! "adjust" path between cells.

use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Layer, Pool2d, PoolKind};
use crate::shape::{Padding, TensorShape};

fn bn(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

fn relu(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

/// Bias-free separable conv (depthwise + pointwise), as in Keras NASNet.
fn sep(b: &mut GraphBuilder, x: NodeId, f: u32, k: u32, s: u32) -> NodeId {
    let x = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(k, s, Padding::Same).no_bias()),
        &[x],
    );
    b.layer(
        Layer::Conv2d(Conv2d::new(f, 1, 1, Padding::Same).no_bias()),
        &[x],
    )
}

/// NASNet `_separable_conv_block`: the separable conv applied twice with
/// BN-ReLU in between; only the first application may be strided.
fn sep_block(b: &mut GraphBuilder, x: NodeId, f: u32, k: u32, s: u32) -> NodeId {
    let x = relu(b, x);
    let x = sep(b, x, f, k, s);
    let x = bn(b, x);
    let x = relu(b, x);
    let x = sep(b, x, f, k, 1);
    bn(b, x)
}

/// NASNet `_adjust_block`: reconcile the previous hidden state `p` with the
/// current input `ip` (spatial via factorized reduction, channels via a 1x1
/// projection).
fn adjust(
    b: &mut GraphBuilder,
    p: NodeId,
    ip: NodeId,
    f: u32,
    shapes: &dyn Fn(&GraphBuilder, NodeId) -> TensorShape,
) -> NodeId {
    let ps = shapes(b, p);
    let ips = shapes(b, ip);
    if ps.h != ips.h {
        // factorized reduction: two stride-2 1x1-pool+conv paths, concatenated
        let pr = relu(b, p);
        let p1 = b.layer(Layer::Pool2d(Pool2d::avg(1, 2, Padding::Valid)), &[pr]);
        let p1 = b.layer(
            Layer::Conv2d(Conv2d::new(f / 2, 1, 1, Padding::Same).no_bias()),
            &[p1],
        );
        let p2 = b.layer(Layer::Pool2d(Pool2d::avg(1, 2, Padding::Valid)), &[pr]);
        let p2 = b.layer(
            Layer::Conv2d(Conv2d::new(f - f / 2, 1, 1, Padding::Same).no_bias()),
            &[p2],
        );
        let p = b.layer(Layer::Concat, &[p1, p2]);
        bn(b, p)
    } else if ps.c != f {
        let p = relu(b, p);
        let p = b.layer(
            Layer::Conv2d(Conv2d::new(f, 1, 1, Padding::Same).no_bias()),
            &[p],
        );
        bn(b, p)
    } else {
        p
    }
}

/// Shared "squeeze" at the start of every cell: ReLU + 1x1 conv + BN.
fn squeeze(b: &mut GraphBuilder, x: NodeId, f: u32) -> NodeId {
    let x = relu(b, x);
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(f, 1, 1, Padding::Same).no_bias()),
        &[x],
    );
    bn(b, x)
}

struct CellIo {
    x: NodeId,
    p: NodeId,
}

/// NASNet-A normal cell. Returns (output, new previous == ip).
fn normal_cell(
    b: &mut GraphBuilder,
    ip: NodeId,
    p: NodeId,
    f: u32,
    shapes: &dyn Fn(&GraphBuilder, NodeId) -> TensorShape,
) -> CellIo {
    let p = adjust(b, p, ip, f, shapes);
    let h = squeeze(b, ip, f);
    let x1a = sep_block(b, h, f, 5, 1);
    let x1b = sep_block(b, p, f, 3, 1);
    let x1 = b.layer(Layer::Add, &[x1a, x1b]);
    let x2a = sep_block(b, p, f, 5, 1);
    let x2b = sep_block(b, p, f, 3, 1);
    let x2 = b.layer(Layer::Add, &[x2a, x2b]);
    let x3a = b.layer(Layer::Pool2d(Pool2d::avg(3, 1, Padding::Same)), &[h]);
    let x3 = b.layer(Layer::Add, &[x3a, p]);
    let x4a = b.layer(Layer::Pool2d(Pool2d::avg(3, 1, Padding::Same)), &[p]);
    let x4b = b.layer(Layer::Pool2d(Pool2d::avg(3, 1, Padding::Same)), &[p]);
    let x4 = b.layer(Layer::Add, &[x4a, x4b]);
    let x5a = sep_block(b, h, f, 3, 1);
    let x5 = b.layer(Layer::Add, &[x5a, h]);
    let out = b.layer(Layer::Concat, &[p, x1, x2, x3, x4, x5]);
    CellIo { x: out, p: ip }
}

/// NASNet-A reduction cell (halves spatial extent, 4f output channels).
fn reduction_cell(
    b: &mut GraphBuilder,
    ip: NodeId,
    p: NodeId,
    f: u32,
    shapes: &dyn Fn(&GraphBuilder, NodeId) -> TensorShape,
) -> CellIo {
    let p = adjust(b, p, ip, f, shapes);
    let h = squeeze(b, ip, f);
    let x1a = sep_block(b, h, f, 5, 2);
    let x1b = sep_block(b, p, f, 7, 2);
    let x1 = b.layer(Layer::Add, &[x1a, x1b]);
    let x2a = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Same)), &[h]);
    let x2b = sep_block(b, p, f, 7, 2);
    let x2 = b.layer(Layer::Add, &[x2a, x2b]);
    let x3a = b.layer(Layer::Pool2d(Pool2d::avg(3, 2, Padding::Same)), &[h]);
    let x3b = sep_block(b, p, f, 5, 2);
    let x3 = b.layer(Layer::Add, &[x3a, x3b]);
    let x4a = b.layer(Layer::Pool2d(Pool2d::avg(3, 1, Padding::Same)), &[x1]);
    let x4 = b.layer(Layer::Add, &[x2, x4a]);
    let x5a = sep_block(b, x1, f, 3, 1);
    let x5b = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Same)), &[h]);
    let x5 = b.layer(Layer::Add, &[x5a, x5b]);
    let out = b.layer(Layer::Concat, &[x2, x3, x4, x5]);
    CellIo { x: out, p: ip }
}

/// Build a NASNet-A model. `filters` is `penultimate_filters / 24`.
fn nasnet(
    name: &str,
    nominal: u32,
    input: u32,
    stem_filters: u32,
    filters: u32,
    num_blocks: u32,
) -> ModelGraph {
    let mut b = GraphBuilder::new(name, nominal);
    let input_id = b.input(TensorShape::square(input, 3));

    // Shape oracle: recompute shapes incrementally as the graph grows.
    // Graphs stay modest (<2k nodes) so a full re-inference per adjust call
    // is acceptable at build time and keeps the builder simple.
    let shapes = |builder: &GraphBuilder, id: NodeId| -> TensorShape {
        // Reconstruct shapes via a temporary walk of the builder's nodes.
        builder.peek_shapes()[id.index()]
    };

    let x = b.layer(
        Layer::Conv2d(Conv2d::new(stem_filters, 3, 2, Padding::Valid).no_bias()),
        &[input_id],
    );
    let x = bn(&mut b, x);

    let mut io = reduction_cell(&mut b, x, x, filters / 4, &shapes);
    io = reduction_cell(&mut b, io.x, io.p, filters / 2, &shapes);
    for _ in 0..num_blocks {
        io = normal_cell(&mut b, io.x, io.p, filters, &shapes);
    }
    io = reduction_cell(&mut b, io.x, io.p, filters * 2, &shapes);
    for _ in 0..num_blocks {
        io = normal_cell(&mut b, io.x, io.p, filters * 2, &shapes);
    }
    io = reduction_cell(&mut b, io.x, io.p, filters * 4, &shapes);
    for _ in 0..num_blocks {
        io = normal_cell(&mut b, io.x, io.p, filters * 4, &shapes);
    }

    let x = relu(&mut b, io.x);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

pub fn nasnet_mobile() -> ModelGraph {
    nasnet("nasnetmobile", 771, 224, 32, 44, 4)
}

pub fn nasnet_large() -> ModelGraph {
    nasnet("nasnetlarge", 1041, 331, 96, 168, 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn mobile_params_close_to_paper() {
        let s = analyze(&nasnet_mobile()).unwrap();
        let paper = 5_289_978f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.10,
            "nasnetmobile params {} vs paper {paper} (rel {rel:.3})",
            s.trainable_params
        );
    }

    #[test]
    fn large_params_close_to_paper() {
        let s = analyze(&nasnet_large()).unwrap();
        let paper = 88_753_150f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.10,
            "nasnetlarge params {} vs paper {paper} (rel {rel:.3})",
            s.trainable_params
        );
    }

    #[test]
    fn mobile_penultimate_channels() {
        // 6 * 44 * 4 = 1056 penultimate filters
        let g = nasnet_mobile();
        let shapes = g.infer_shapes().unwrap();
        let gap = g
            .nodes()
            .iter()
            .position(|n| matches!(n.layer, Layer::GlobalPool { .. }))
            .unwrap();
        let pre = g.nodes()[gap].inputs[0];
        assert_eq!(shapes[pre.index()].c, 1056);
    }

    #[test]
    fn graphs_are_deep() {
        assert!(nasnet_mobile().len() > 500);
        assert!(nasnet_large().len() > 700);
    }
}
