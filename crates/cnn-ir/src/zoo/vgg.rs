//! VGG-16 and VGG-19 (Simonyan & Zisserman, 2014), Keras layout.
//!
//! Biased convolutions, no batch norm, three fully connected layers. Our
//! parameter counts match Keras exactly: 138,357,544 (VGG16) and
//! 143,667,240 (VGG19).

use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, Conv2d, Dense, Layer, Pool2d};
use crate::shape::{Padding, TensorShape};

fn conv_relu(b: &mut GraphBuilder, x: NodeId, out_c: u32) -> NodeId {
    let x = b.layer(Layer::Conv2d(Conv2d::new(out_c, 3, 1, Padding::Same)), &[x]);
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

fn block(b: &mut GraphBuilder, mut x: NodeId, out_c: u32, convs: u32) -> NodeId {
    for _ in 0..convs {
        x = conv_relu(b, x, out_c);
    }
    b.layer(Layer::Pool2d(Pool2d::max(2, 2, Padding::Valid)), &[x])
}

fn vgg(name: &str, depth: u32, convs_per_block: [u32; 5]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let mut x = b.input(TensorShape::square(224, 3));
    for (i, &n) in convs_per_block.iter().enumerate() {
        let out_c = [64u32, 128, 256, 512, 512][i];
        x = block(&mut b, x, out_c, n);
    }
    let mut x = b.layer(Layer::Flatten, &[x]);
    for _ in 0..2 {
        x = b.layer(Layer::Dense(Dense::new(4096)), &[x]);
        x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    }
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

pub fn vgg16() -> ModelGraph {
    vgg("vgg16", 16, [2, 2, 3, 3, 3])
}

pub fn vgg19() -> ModelGraph {
    vgg("vgg19", 19, [2, 2, 4, 4, 4])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn vgg16_params_exact() {
        let s = analyze(&vgg16()).unwrap();
        assert_eq!(s.trainable_params, 138_357_544);
        assert_eq!(s.non_trainable_params, 0);
    }

    #[test]
    fn vgg19_params_exact() {
        let s = analyze(&vgg19()).unwrap();
        assert_eq!(s.trainable_params, 143_667_240);
    }

    #[test]
    fn vgg16_neurons_match_paper() {
        // Paper Table I: 15,262,696 — derived as the sum of all Keras layer
        // outputs with activations fused into the conv layers. Our graphs
        // keep activations explicit, so we check the fused-equivalent count.
        let g = vgg16();
        let shapes = g.infer_shapes().unwrap();
        let mut fused = 0u64;
        for n in g.nodes() {
            if matches!(n.layer, Layer::Activation(_)) {
                continue; // fused into the preceding conv/dense in Keras
            }
            fused += shapes[n.id.index()].elements();
        }
        assert_eq!(fused, 15_262_696);
    }

    #[test]
    fn vgg16_final_spatial_is_7x7() {
        let g = vgg16();
        let shapes = g.infer_shapes().unwrap();
        // The last pool output before flatten
        let flat_idx = g
            .nodes()
            .iter()
            .position(|n| matches!(n.layer, Layer::Flatten))
            .unwrap();
        let pre = &g.nodes()[flat_idx].inputs[0];
        assert_eq!(shapes[pre.index()], TensorShape::hwc(7, 7, 512));
    }
}
