//! DenseNet-121/169/201 (Huang et al., 2017), Keras layout: growth rate 32,
//! bottleneck factor 4, compression 0.5.

use super::common::{bn_relu, classifier_head, padded_maxpool_3x3_s2};
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{Conv2d, Layer, Pool2d};
use crate::shape::{Padding, TensorShape};

const GROWTH: u32 = 32;

/// One dense layer: BN-ReLU-Conv1x1(4g) -> BN-ReLU-Conv3x3(g), concatenated
/// with its input.
fn dense_layer(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let y = bn_relu(b, x);
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(4 * GROWTH, 1, 1, Padding::Same).no_bias()),
        &[y],
    );
    let y = bn_relu(b, y);
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(GROWTH, 3, 1, Padding::Same).no_bias()),
        &[y],
    );
    b.layer(Layer::Concat, &[x, y])
}

fn dense_block(b: &mut GraphBuilder, mut x: NodeId, layers: u32) -> NodeId {
    for _ in 0..layers {
        x = dense_layer(b, x);
    }
    x
}

/// Transition: BN-ReLU-Conv1x1 (compression 0.5) + 2x2/2 average pool.
fn transition(b: &mut GraphBuilder, x: NodeId, in_c: u32) -> NodeId {
    let y = bn_relu(b, x);
    let y = b.layer(
        Layer::Conv2d(Conv2d::new(in_c / 2, 1, 1, Padding::Same).no_bias()),
        &[y],
    );
    b.layer(Layer::Pool2d(Pool2d::avg(2, 2, Padding::Valid)), &[y])
}

fn densenet(name: &str, depth: u32, blocks: [u32; 4]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        },
        &[x],
    );
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(64, 7, 2, Padding::Valid).no_bias()),
        &[x],
    );
    let x = bn_relu(&mut b, x);
    let mut x = padded_maxpool_3x3_s2(&mut b, x);
    let mut channels = 64u32;
    for (i, &n) in blocks.iter().enumerate() {
        x = dense_block(&mut b, x, n);
        channels += n * GROWTH;
        if i + 1 < blocks.len() {
            x = transition(&mut b, x, channels);
            channels /= 2;
        }
    }
    let x = bn_relu(&mut b, x);
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

pub fn densenet121() -> ModelGraph {
    densenet("densenet121", 121, [6, 12, 24, 16])
}

pub fn densenet169() -> ModelGraph {
    densenet("densenet169", 169, [6, 12, 32, 32])
}

pub fn densenet201() -> ModelGraph {
    densenet("densenet201", 201, [6, 12, 48, 32])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn densenet121_params_match_keras_and_paper() {
        let s = analyze(&densenet121()).unwrap();
        assert_eq!(s.trainable_params, 7_978_856); // == paper Table I
        assert_eq!(s.total_params(), 8_062_504); // == Keras total
    }

    #[test]
    fn densenet169_params_match_paper() {
        assert_eq!(
            analyze(&densenet169()).unwrap().trainable_params,
            14_149_480
        );
    }

    #[test]
    fn densenet201_params_match_paper() {
        assert_eq!(
            analyze(&densenet201()).unwrap().trainable_params,
            20_013_928
        );
    }

    #[test]
    fn channel_growth_follows_concat() {
        let g = densenet121();
        let shapes = g.infer_shapes().unwrap();
        // final feature map: 7x7x1024
        let gap_idx = g
            .nodes()
            .iter()
            .position(|n| matches!(n.layer, Layer::GlobalPool { .. }))
            .unwrap();
        let pre = g.nodes()[gap_idx].inputs[0];
        assert_eq!(shapes[pre.index()], TensorShape::hwc(7, 7, 1024));
    }
}
