//! AlexNet (Krizhevsky et al., 2012) — the original two-tower variant with
//! grouped convolutions in layers 2, 4 and 5.

use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, Conv2d, Dense, Layer, Pool2d};
use crate::shape::{Padding, TensorShape};

fn conv_relu(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    k: u32,
    s: u32,
    pad: Padding,
    groups: u32,
) -> NodeId {
    let mut c = Conv2d::new(out_c, k, s, pad);
    c.groups = groups;
    let x = b.layer(Layer::Conv2d(c), &[x]);
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

pub fn alexnet() -> ModelGraph {
    let mut b = GraphBuilder::new("alexnet", 8);
    let x = b.input(TensorShape::square(227, 3));
    // conv1: 96 x 11x11 / 4, VALID -> 55x55
    let x = conv_relu(&mut b, x, 96, 11, 4, Padding::Valid, 1);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    // conv2: 256 x 5x5, pad 2, grouped
    let x = conv_relu(&mut b, x, 256, 5, 1, Padding::uniform(2), 2);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    // conv3..5
    let x = conv_relu(&mut b, x, 384, 3, 1, Padding::uniform(1), 1);
    let x = conv_relu(&mut b, x, 384, 3, 1, Padding::uniform(1), 2);
    let x = conv_relu(&mut b, x, 256, 3, 1, Padding::uniform(1), 2);
    let x = b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x]);
    // classifier
    let mut x = b.layer(Layer::Flatten, &[x]);
    for _ in 0..2 {
        x = b.layer(Layer::Dropout { rate: 0.5 }, &[x]);
        x = b.layer(Layer::Dense(Dense::new(4096)), &[x]);
        x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
    }
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn feature_map_progression() {
        let g = alexnet();
        let shapes = g.infer_shapes().unwrap();
        // conv1 output 55x55x96, pool1 27x27, pool2 13x13, pool3 6x6
        assert!(shapes.iter().any(|s| (s.h, s.c) == (55, 96)));
        assert!(shapes.iter().any(|s| (s.h, s.c) == (27, 96)));
        assert!(shapes.iter().any(|s| (s.h, s.c) == (13, 256)));
        assert!(shapes.iter().any(|s| (s.h, s.c) == (6, 256)));
    }

    #[test]
    fn params_match_original_paper() {
        // Grouped original AlexNet: ~61M. The paper's Table I reports
        // 58,325,066 (a cuda-convnet variant); we document the delta in
        // EXPERIMENTS.md and assert our own exact value here.
        let s = analyze(&alexnet()).unwrap();
        assert_eq!(s.trainable_params, 60_965_224);
    }

    #[test]
    fn eight_weighted_layers() {
        let s = analyze(&alexnet()).unwrap();
        assert_eq!(s.weighted_layers, 8);
    }
}
