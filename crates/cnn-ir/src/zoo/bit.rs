//! Big Transfer (BiT) models — `m-r50x1`, `m-r50x3`, `m-r101x1`, `m-r101x3`
//! and `m-r154x4` from the paper's Table I (Kolesnikov et al., 2020).
//!
//! BiT uses a pre-activation ResNet-v2 body with *group normalization*
//! (32 groups) instead of batch norm and bias-free, weight-standardized
//! convolutions. Weight standardization changes values, not parameter
//! counts, so the IR models it as a plain convolution.
//!
//! `m-r154x4` is Table I's name for BiT R152x4 (the depth "154" is a typo
//! in the paper; no R154 exists in the BiT family).

use super::common::classifier_head;
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, Conv2d, Layer};
use crate::shape::{Padding, TensorShape};

const GN_GROUPS: u32 = 32;

fn gn_relu(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let x = b.layer(Layer::GroupNorm { groups: GN_GROUPS }, &[x]);
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

fn conv(b: &mut GraphBuilder, x: NodeId, out_c: u32, k: u32, s: u32) -> NodeId {
    b.layer(
        Layer::Conv2d(Conv2d::new(out_c, k, s, Padding::Same).no_bias()),
        &[x],
    )
}

/// Pre-activation bottleneck with GN. Stride is applied by the middle 3x3
/// conv at the first block of stages 2-4 (BiT convention).
fn block(b: &mut GraphBuilder, x: NodeId, filters: u32, stride: u32, project: bool) -> NodeId {
    let pre = gn_relu(b, x);
    let shortcut = if project {
        conv(b, pre, 4 * filters, 1, stride)
    } else {
        x
    };
    let y = conv(b, pre, filters, 1, 1);
    let y = gn_relu(b, y);
    let y = conv(b, y, filters, 3, stride);
    let y = gn_relu(b, y);
    let y = conv(b, y, 4 * filters, 1, 1);
    b.layer(Layer::Add, &[shortcut, y])
}

fn stage(b: &mut GraphBuilder, mut x: NodeId, filters: u32, blocks: u32, stride1: u32) -> NodeId {
    x = block(b, x, filters, stride1, true);
    for _ in 1..blocks {
        x = block(b, x, filters, 1, false);
    }
    x
}

/// Build a BiT-style ResNet-v2 with the given stage depths and width
/// multiplier.
fn bit(name: &str, depth: u32, blocks: [u32; 4], width: u32) -> ModelGraph {
    let mut b = GraphBuilder::new(name, depth);
    let x = b.input(TensorShape::square(224, 3));
    // Root block: 7x7/2 conv, padded 3x3/2 max pool.
    let x = b.layer(
        Layer::ZeroPad {
            top: 3,
            bottom: 3,
            left: 3,
            right: 3,
        },
        &[x],
    );
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(64 * width, 7, 2, Padding::Valid).no_bias()),
        &[x],
    );
    let x = super::common::padded_maxpool_3x3_s2(&mut b, x);
    let x = stage(&mut b, x, 64 * width, blocks[0], 1);
    let x = stage(&mut b, x, 128 * width, blocks[1], 2);
    let x = stage(&mut b, x, 256 * width, blocks[2], 2);
    let x = stage(&mut b, x, 512 * width, blocks[3], 2);
    let x = gn_relu(&mut b, x);
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

pub fn m_r50x1() -> ModelGraph {
    bit("m-r50x1", 50, [3, 4, 6, 3], 1)
}

pub fn m_r50x3() -> ModelGraph {
    bit("m-r50x3", 50, [3, 4, 6, 3], 3)
}

pub fn m_r101x1() -> ModelGraph {
    bit("m-r101x1", 101, [3, 4, 23, 3], 1)
}

pub fn m_r101x3() -> ModelGraph {
    bit("m-r101x3", 101, [3, 4, 23, 3], 3)
}

pub fn m_r154x4() -> ModelGraph {
    bit("m-r154x4", 154, [3, 8, 36, 3], 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn r50x1_close_to_paper() {
        // Paper Table I: 25,549,352. GN-vs-BN bookkeeping differences keep
        // us within a fraction of a percent.
        let s = analyze(&m_r50x1()).unwrap();
        let paper = 25_549_352f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.01,
            "r50x1 params {} vs paper {paper}",
            s.trainable_params
        );
    }

    #[test]
    fn width_scales_quadratically() {
        let p1 = analyze(&m_r50x1()).unwrap().trainable_params;
        let p3 = analyze(&m_r50x3()).unwrap().trainable_params;
        // conv weights scale ~x9; the 1000-class head only ~x3
        assert!(p3 > 7 * p1 && p3 < 9 * p1, "p1={p1} p3={p3}");
    }

    #[test]
    fn r101x3_close_to_paper() {
        let s = analyze(&m_r101x3()).unwrap();
        let paper = 387_934_888f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.02,
            "r101x3 params {} vs paper {paper}",
            s.trainable_params
        );
    }

    #[test]
    fn r154x4_close_to_paper() {
        let s = analyze(&m_r154x4()).unwrap();
        let paper = 936_533_224f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.02,
            "r154x4 params {} vs paper {paper}",
            s.trainable_params
        );
    }

    #[test]
    fn all_norms_are_group_norm() {
        let g = m_r50x1();
        assert!(g
            .nodes()
            .iter()
            .all(|n| !matches!(n.layer, Layer::BatchNorm(_))));
        assert!(g
            .nodes()
            .iter()
            .any(|n| matches!(n.layer, Layer::GroupNorm { .. })));
    }
}
