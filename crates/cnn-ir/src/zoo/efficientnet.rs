//! EfficientNet B0-B7 (Tan & Le, 2019) with the Keras compound-scaling
//! rules: `round_filters` / `round_repeats`, MBConv blocks with
//! squeeze-and-excitation and swish activations.
//!
//! Note: the paper's Table I lists `efficientnetb5` with a 156x156 input;
//! the reference resolution is 456x456 and that is what we build.

use super::common::se_block;
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Layer, PoolKind};
use crate::shape::{Padding, TensorShape};

/// (width coefficient, depth coefficient, resolution) for B0..B7.
const COEFFS: [(f64, f64, u32); 8] = [
    (1.0, 1.0, 224),
    (1.0, 1.1, 240),
    (1.1, 1.2, 260),
    (1.2, 1.4, 300),
    (1.4, 1.8, 380),
    (1.6, 2.2, 456),
    (1.8, 2.6, 528),
    (2.0, 3.1, 600),
];

/// Base block arguments: (kernel, repeats, filters_in, filters_out, expand,
/// stride). SE ratio is 0.25 everywhere.
const BLOCKS: [(u32, u32, u32, u32, u32, u32); 7] = [
    (3, 1, 32, 16, 1, 1),
    (3, 2, 16, 24, 6, 2),
    (5, 2, 24, 40, 6, 2),
    (3, 3, 40, 80, 6, 2),
    (5, 3, 80, 112, 6, 1),
    (5, 4, 112, 192, 6, 2),
    (3, 1, 192, 320, 6, 1),
];

/// Keras `round_filters`: snap to multiples of 8, never dropping below 90 %
/// of the scaled value.
pub(crate) fn round_filters(filters: u32, width: f64) -> u32 {
    const DIV: u32 = 8;
    let scaled = filters as f64 * width;
    let mut new = ((scaled + DIV as f64 / 2.0) as u32 / DIV) * DIV;
    new = new.max(DIV);
    if (new as f64) < 0.9 * scaled {
        new += DIV;
    }
    new
}

/// Keras `round_repeats`: ceil of the scaled repeat count.
pub(crate) fn round_repeats(repeats: u32, depth: f64) -> u32 {
    (repeats as f64 * depth).ceil() as u32
}

fn bn(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

fn swish(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Activation(ActKind::Swish), &[x])
}

/// One MBConv block. `f_in`/`f_out` are already width-rounded.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    x: NodeId,
    f_in: u32,
    f_out: u32,
    kernel: u32,
    stride: u32,
    expand: u32,
) -> NodeId {
    let expanded = f_in * expand;
    let mut y = x;
    if expand != 1 {
        y = b.layer(
            Layer::Conv2d(Conv2d::new(expanded, 1, 1, Padding::Same).no_bias()),
            &[y],
        );
        y = bn(b, y);
        y = swish(b, y);
    }
    y = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(kernel, stride, Padding::Same).no_bias()),
        &[y],
    );
    y = bn(b, y);
    y = swish(b, y);
    // SE bottleneck width derives from the block *input* filters.
    let se_c = (f_in / 4).max(1);
    y = se_block(b, y, expanded, se_c, ActKind::Swish);
    y = b.layer(
        Layer::Conv2d(Conv2d::new(f_out, 1, 1, Padding::Same).no_bias()),
        &[y],
    );
    y = bn(b, y);
    if stride == 1 && f_in == f_out {
        y = b.layer(Layer::Dropout { rate: 0.2 }, &[y]);
        y = b.layer(Layer::Add, &[x, y]);
    }
    y
}

/// Build EfficientNet B`variant` (0..=7).
pub fn efficientnet(variant: usize) -> ModelGraph {
    assert!(variant <= 7, "EfficientNet variants are B0..B7");
    let (width, depth, res) = COEFFS[variant];
    let name = format!("efficientnetb{variant}");
    // Nominal depths as reported in the paper's Table I.
    let nominal = [240, 342, 342, 387, 477, 579, 669, 816][variant];
    let mut b = GraphBuilder::new(name, nominal);
    let x = b.input(TensorShape::square(res, 3));
    // Stem
    let stem_c = round_filters(32, width);
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(stem_c, 3, 2, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let mut x = swish(&mut b, x);
    // Blocks
    for (kernel, repeats, f_in, f_out, expand, stride) in BLOCKS {
        let f_in = round_filters(f_in, width);
        let f_out = round_filters(f_out, width);
        let repeats = round_repeats(repeats, depth);
        for i in 0..repeats {
            let (fi, s) = if i == 0 { (f_in, stride) } else { (f_out, 1) };
            x = mbconv(&mut b, x, fi, f_out, kernel, s, expand);
        }
    }
    // Head
    let head_c = round_filters(1280, width);
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(head_c, 1, 1, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let x = swish(&mut b, x);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dropout { rate: 0.2 }, &[x]);
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn round_filters_matches_keras() {
        assert_eq!(round_filters(32, 1.0), 32);
        assert_eq!(round_filters(32, 1.1), 32); // 35.2 -> 32 (>= 0.9*35.2)
        assert_eq!(round_filters(32, 1.2), 40); // 38.4 -> 40
        assert_eq!(round_filters(16, 1.4), 24); // 22.4 -> 24
        assert_eq!(round_filters(1280, 2.0), 2560);
    }

    #[test]
    fn round_repeats_is_ceil() {
        assert_eq!(round_repeats(1, 1.0), 1);
        assert_eq!(round_repeats(2, 1.1), 3);
        assert_eq!(round_repeats(4, 3.1), 13);
    }

    #[test]
    fn b0_params_match_keras_and_paper() {
        let s = analyze(&efficientnet(0)).unwrap();
        assert_eq!(s.trainable_params, 5_288_548); // == paper Table I
    }

    #[test]
    fn larger_variants_grow_monotonically() {
        let mut prev = 0u64;
        for v in 0..=7 {
            let p = analyze(&efficientnet(v)).unwrap().trainable_params;
            assert!(p > prev, "B{v} ({p}) not larger than predecessor ({prev})");
            prev = p;
        }
    }

    #[test]
    fn b7_params_close_to_paper() {
        let s = analyze(&efficientnet(7)).unwrap();
        let paper = 66_347_960f64;
        let rel = (s.trainable_params as f64 - paper).abs() / paper;
        assert!(
            rel < 0.02,
            "B7 params {} vs paper {paper}",
            s.trainable_params
        );
    }

    #[test]
    #[should_panic(expected = "B0..B7")]
    fn variant_out_of_range_panics() {
        let _ = efficientnet(8);
    }
}
