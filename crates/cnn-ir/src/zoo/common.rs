//! Shared building blocks used across zoo architectures.

use crate::graph::{GraphBuilder, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Layer, Pool2d, PoolKind};
use crate::shape::Padding;

/// `Conv -> BN -> ReLU` with a bias-free convolution (the dominant pattern in
/// post-2015 architectures).
pub fn conv_bn_relu(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    k: u32,
    s: u32,
    pad: Padding,
) -> NodeId {
    let x = b.layer(Layer::Conv2d(Conv2d::new(out_c, k, s, pad).no_bias()), &[x]);
    let x = b.layer(Layer::BatchNorm(BatchNorm::default()), &[x]);
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

/// `Conv -> BN` (no activation), bias-free.
pub fn conv_bn(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    k: u32,
    s: u32,
    pad: Padding,
) -> NodeId {
    let x = b.layer(Layer::Conv2d(Conv2d::new(out_c, k, s, pad).no_bias()), &[x]);
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

/// `BN -> ReLU` pre-activation (ResNet v2 / DenseNet style).
pub fn bn_relu(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let x = b.layer(Layer::BatchNorm(BatchNorm::default()), &[x]);
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

/// Inception-style conv: bias-free conv + BN *without* gamma + ReLU.
pub fn conv_bn_relu_noscale(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    kh: u32,
    kw: u32,
    s: u32,
    pad: Padding,
) -> NodeId {
    let mut conv = Conv2d::rect(out_c, kh, kw, pad).no_bias();
    conv.stride = (s, s);
    let x = b.layer(Layer::Conv2d(conv), &[x]);
    let x = b.layer(
        Layer::BatchNorm(BatchNorm {
            scale: false,
            center: true,
        }),
        &[x],
    );
    b.layer(Layer::Activation(ActKind::Relu), &[x])
}

/// Keras-style `SeparableConv2D` without bias: depthwise (no bias) followed
/// by a pointwise projection (no bias).
pub fn separable_conv(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    k: u32,
    s: u32,
    pad: Padding,
) -> NodeId {
    let x = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(k, s, pad).no_bias()),
        &[x],
    );
    b.layer(
        Layer::Conv2d(Conv2d::new(out_c, 1, 1, Padding::Same).no_bias()),
        &[x],
    )
}

/// Squeeze-and-excitation block: global-average pool, bottleneck MLP with
/// biased 1x1 convs, sigmoid gate, channel-wise multiply. Returns the gated
/// tensor. `se_c` is the bottleneck width.
pub fn se_block(b: &mut GraphBuilder, x: NodeId, channels: u32, se_c: u32, act: ActKind) -> NodeId {
    let _ = channels; // shape inference recovers it; kept for readability
    let s = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    // 1x1 convs on a 1x1 spatial map == dense layers with bias.
    let s = b.layer(Layer::Conv2d(Conv2d::new(se_c, 1, 1, Padding::Same)), &[s]);
    let s = b.layer(Layer::Activation(act), &[s]);
    let s = b.layer(
        Layer::Conv2d(Conv2d::new(channels, 1, 1, Padding::Same)),
        &[s],
    );
    let s = b.layer(Layer::Activation(ActKind::Sigmoid), &[s]);
    b.layer(Layer::Multiply, &[x, s])
}

/// Standard ImageNet classifier head: global average pool, dense, softmax.
pub fn classifier_head(b: &mut GraphBuilder, x: NodeId, classes: u32) -> NodeId {
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dense(Dense::new(classes)), &[x]);
    b.layer(Layer::Activation(ActKind::Softmax), &[x])
}

/// 3x3/2 `VALID` max pool after a one-pixel zero pad (ResNet stem idiom).
pub fn padded_maxpool_3x3_s2(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let x = b.layer(
        Layer::ZeroPad {
            top: 1,
            bottom: 1,
            left: 1,
            right: 1,
        },
        &[x],
    );
    b.layer(Layer::Pool2d(Pool2d::max(3, 2, Padding::Valid)), &[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::shape::TensorShape;

    #[test]
    fn conv_bn_relu_counts() {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(8, 3));
        let x = conv_bn_relu(&mut b, x, 16, 3, 1, Padding::Same);
        let g = b.finish(x);
        let s = analyze(&g).unwrap();
        // conv 3*3*3*16 = 432, BN gamma+beta = 32
        assert_eq!(s.trainable_params, 432 + 32);
        assert_eq!(s.non_trainable_params, 32);
    }

    #[test]
    fn separable_conv_matches_keras() {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(19, 128));
        let x = separable_conv(&mut b, x, 256, 3, 1, Padding::Same);
        let g = b.finish(x);
        let s = analyze(&g).unwrap();
        // depthwise 3*3*128 = 1152, pointwise 128*256 = 32768
        assert_eq!(s.trainable_params, 1152 + 32768);
    }

    #[test]
    fn se_block_params() {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(4, 32));
        let x = se_block(&mut b, x, 32, 8, ActKind::Swish);
        let g = b.finish(x);
        let s = analyze(&g).unwrap();
        // squeeze conv 32*8+8, excite conv 8*32+32
        assert_eq!(s.trainable_params, 32 * 8 + 8 + 8 * 32 + 32);
    }

    #[test]
    fn padded_maxpool_halves() {
        let mut b = GraphBuilder::new("t", 1);
        let x = b.input(TensorShape::square(112, 64));
        let x = padded_maxpool_3x3_s2(&mut b, x);
        let g = b.finish(x);
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes.last().unwrap().h, 56);
    }
}
