//! MobileNet v1 (Howard et al., 2017) and MobileNetV2 (Sandler et al., 2018),
//! Keras layouts with width multiplier 1.0.

use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Layer, PoolKind};
use crate::shape::{Padding, TensorShape};

fn bn(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::BatchNorm(BatchNorm::default()), &[x])
}

fn relu6(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Activation(ActKind::Relu6), &[x])
}

/// MobileNet v1 depthwise-separable block.
fn dw_sep_block(b: &mut GraphBuilder, x: NodeId, out_c: u32, stride: u32) -> NodeId {
    let x = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(3, stride, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(b, x);
    let x = relu6(b, x);
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(out_c, 1, 1, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(b, x);
    relu6(b, x)
}

pub fn mobilenet_v1() -> ModelGraph {
    let mut b = GraphBuilder::new("mobilenet", 28);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(32, 3, 2, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let mut x = relu6(&mut b, x);
    // (out_channels, stride) for the 13 separable blocks
    let cfg: [(u32, u32); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (c, s) in cfg {
        x = dw_sep_block(&mut b, x, c, s);
    }
    // Keras head: GAP -> dropout -> 1x1 conv classifier (with bias) -> softmax
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dropout { rate: 1e-3 }, &[x]);
    let x = b.layer(Layer::Conv2d(Conv2d::new(1000, 1, 1, Padding::Same)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

/// MobileNetV2 inverted residual. `expand` is the expansion factor `t`.
fn inverted_residual(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: u32,
    out_c: u32,
    stride: u32,
    expand: u32,
) -> NodeId {
    let mut y = x;
    if expand != 1 {
        y = b.layer(
            Layer::Conv2d(Conv2d::new(in_c * expand, 1, 1, Padding::Same).no_bias()),
            &[y],
        );
        y = bn(b, y);
        y = relu6(b, y);
    }
    y = b.layer(
        Layer::DepthwiseConv2d(DepthwiseConv2d::new(3, stride, Padding::Same).no_bias()),
        &[y],
    );
    y = bn(b, y);
    y = relu6(b, y);
    y = b.layer(
        Layer::Conv2d(Conv2d::new(out_c, 1, 1, Padding::Same).no_bias()),
        &[y],
    );
    y = bn(b, y);
    if stride == 1 && in_c == out_c {
        y = b.layer(Layer::Add, &[x, y]);
    }
    y
}

pub fn mobilenet_v2() -> ModelGraph {
    let mut b = GraphBuilder::new("MobileNetV2", 53);
    let x = b.input(TensorShape::square(224, 3));
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(32, 3, 2, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let mut x = relu6(&mut b, x);
    // (t, c, n, s)
    let cfg: [(u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_c = 32u32;
    for (t, c, n, s) in cfg {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            x = inverted_residual(&mut b, x, in_c, c, stride, t);
            in_c = c;
        }
    }
    let x = b.layer(
        Layer::Conv2d(Conv2d::new(1280, 1, 1, Padding::Same).no_bias()),
        &[x],
    );
    let x = bn(&mut b, x);
    let x = relu6(&mut b, x);
    let x = b.layer(
        Layer::GlobalPool {
            kind: PoolKind::Avg,
        },
        &[x],
    );
    let x = b.layer(Layer::Dense(Dense::new(1000)), &[x]);
    let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
    b.finish(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn v1_params_match_keras_and_paper() {
        let s = analyze(&mobilenet_v1()).unwrap();
        assert_eq!(s.trainable_params, 4_231_976); // == paper Table I
        assert_eq!(s.total_params(), 4_253_864); // == Keras total
    }

    #[test]
    fn v2_params_match_keras_and_paper() {
        let s = analyze(&mobilenet_v2()).unwrap();
        assert_eq!(s.trainable_params, 3_504_872); // == paper Table I
        assert_eq!(s.total_params(), 3_538_984); // == Keras total
    }

    #[test]
    fn v2_residuals_only_on_matching_shapes() {
        let g = mobilenet_v2();
        // every Add node must have two same-shaped inputs (checked by shape
        // inference succeeding) and MobileNetV2 has exactly 10 of them
        let adds = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Add))
            .count();
        assert_eq!(adds, 10);
    }

    #[test]
    fn v1_final_map_is_7x7x1024() {
        let g = mobilenet_v1();
        let shapes = g.infer_shapes().unwrap();
        let gap = g
            .nodes()
            .iter()
            .position(|n| matches!(n.layer, Layer::GlobalPool { .. }))
            .unwrap();
        let pre = g.nodes()[gap].inputs[0];
        assert_eq!(shapes[pre.index()], TensorShape::hwc(7, 7, 1024));
    }
}
