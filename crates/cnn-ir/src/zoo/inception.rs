//! Inception-V3 (Szegedy et al., 2016) and Inception-ResNet-V2 (Szegedy et
//! al., 2017), Keras layouts. Both use bias-free convolutions with
//! scale-free batch norm (`conv2d_bn`), except the residual "up" projections
//! in Inception-ResNet which are biased linear convolutions.

use super::common::{classifier_head, conv_bn_relu_noscale as cbr};
use crate::graph::{GraphBuilder, ModelGraph, NodeId};
use crate::layer::{ActKind, Conv2d, Layer, Pool2d};
use crate::shape::{Padding, TensorShape};

const V: Padding = Padding::Valid;
const S: Padding = Padding::Same;

fn maxpool32(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Pool2d(Pool2d::max(3, 2, V)), &[x])
}

fn avgpool31(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    b.layer(Layer::Pool2d(Pool2d::avg(3, 1, S)), &[x])
}

/// Shared stem of both architectures (299x299x3 -> 35x35x192).
fn stem(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let x = cbr(b, x, 32, 3, 3, 2, V);
    let x = cbr(b, x, 32, 3, 3, 1, V);
    let x = cbr(b, x, 64, 3, 3, 1, S);
    let x = maxpool32(b, x);
    let x = cbr(b, x, 80, 1, 1, 1, V);
    let x = cbr(b, x, 192, 3, 3, 1, V);
    maxpool32(b, x)
}

/// Inception-A module of V3 (`mixed0..2`), `pool_c` is the pool branch width.
fn v3_block_a(b: &mut GraphBuilder, x: NodeId, pool_c: u32) -> NodeId {
    let b1 = cbr(b, x, 64, 1, 1, 1, S);
    let b5 = cbr(b, x, 48, 1, 1, 1, S);
    let b5 = cbr(b, b5, 64, 5, 5, 1, S);
    let b3 = cbr(b, x, 64, 1, 1, 1, S);
    let b3 = cbr(b, b3, 96, 3, 3, 1, S);
    let b3 = cbr(b, b3, 96, 3, 3, 1, S);
    let bp = avgpool31(b, x);
    let bp = cbr(b, bp, pool_c, 1, 1, 1, S);
    b.layer(Layer::Concat, &[b1, b5, b3, bp])
}

/// Inception-B module of V3 (`mixed4..7`), `c` is the 7x1/1x7 channel width.
fn v3_block_b(b: &mut GraphBuilder, x: NodeId, c: u32) -> NodeId {
    let b1 = cbr(b, x, 192, 1, 1, 1, S);
    let b7 = cbr(b, x, c, 1, 1, 1, S);
    let b7 = cbr(b, b7, c, 1, 7, 1, S);
    let b7 = cbr(b, b7, 192, 7, 1, 1, S);
    let bd = cbr(b, x, c, 1, 1, 1, S);
    let bd = cbr(b, bd, c, 7, 1, 1, S);
    let bd = cbr(b, bd, c, 1, 7, 1, S);
    let bd = cbr(b, bd, c, 7, 1, 1, S);
    let bd = cbr(b, bd, 192, 1, 7, 1, S);
    let bp = avgpool31(b, x);
    let bp = cbr(b, bp, 192, 1, 1, 1, S);
    b.layer(Layer::Concat, &[b1, b7, bd, bp])
}

/// Inception-C module of V3 (`mixed9`, `mixed10`) with split branches.
fn v3_block_c(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let b1 = cbr(b, x, 320, 1, 1, 1, S);
    let b3 = cbr(b, x, 384, 1, 1, 1, S);
    let b3a = cbr(b, b3, 384, 1, 3, 1, S);
    let b3b = cbr(b, b3, 384, 3, 1, 1, S);
    let b3 = b.layer(Layer::Concat, &[b3a, b3b]);
    let bd = cbr(b, x, 448, 1, 1, 1, S);
    let bd = cbr(b, bd, 384, 3, 3, 1, S);
    let bda = cbr(b, bd, 384, 1, 3, 1, S);
    let bdb = cbr(b, bd, 384, 3, 1, 1, S);
    let bd = b.layer(Layer::Concat, &[bda, bdb]);
    let bp = avgpool31(b, x);
    let bp = cbr(b, bp, 192, 1, 1, 1, S);
    b.layer(Layer::Concat, &[b1, b3, bd, bp])
}

pub fn inception_v3() -> ModelGraph {
    let mut b = GraphBuilder::new("inceptionv3", 48);
    let x = b.input(TensorShape::square(299, 3));
    let x = stem(&mut b, x);
    // 35x35 modules
    let x = v3_block_a(&mut b, x, 32); // mixed0 -> 256
    let x = v3_block_a(&mut b, x, 64); // mixed1 -> 288
    let x = v3_block_a(&mut b, x, 64); // mixed2 -> 288
                                       // mixed3: reduction to 17x17x768
    let r3 = cbr(&mut b, x, 384, 3, 3, 2, V);
    let rd = cbr(&mut b, x, 64, 1, 1, 1, S);
    let rd = cbr(&mut b, rd, 96, 3, 3, 1, S);
    let rd = cbr(&mut b, rd, 96, 3, 3, 2, V);
    let rp = maxpool32(&mut b, x);
    let x = b.layer(Layer::Concat, &[r3, rd, rp]);
    // 17x17 modules
    let x = v3_block_b(&mut b, x, 128); // mixed4
    let x = v3_block_b(&mut b, x, 160); // mixed5
    let x = v3_block_b(&mut b, x, 160); // mixed6
    let x = v3_block_b(&mut b, x, 192); // mixed7
                                        // mixed8: reduction to 8x8x1280
    let r3 = cbr(&mut b, x, 192, 1, 1, 1, S);
    let r3 = cbr(&mut b, r3, 320, 3, 3, 2, V);
    let r7 = cbr(&mut b, x, 192, 1, 1, 1, S);
    let r7 = cbr(&mut b, r7, 192, 1, 7, 1, S);
    let r7 = cbr(&mut b, r7, 192, 7, 1, 1, S);
    let r7 = cbr(&mut b, r7, 192, 3, 3, 2, V);
    let rp = maxpool32(&mut b, x);
    let x = b.layer(Layer::Concat, &[r3, r7, rp]);
    // 8x8 modules
    let x = v3_block_c(&mut b, x); // mixed9 -> 2048
    let x = v3_block_c(&mut b, x); // mixed10
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

/// Biased linear 1x1 projection used by Inception-ResNet residual branches.
fn up_proj(b: &mut GraphBuilder, x: NodeId, out_c: u32) -> NodeId {
    b.layer(Layer::Conv2d(Conv2d::new(out_c, 1, 1, S)), &[x])
}

/// Inception-ResNet residual block. The constant residual scaling (0.17 /
/// 0.1 / 0.2) affects values only, so the IR models the merge as `Add`.
fn irv2_block35(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let b0 = cbr(b, x, 32, 1, 1, 1, S);
    let b1 = cbr(b, x, 32, 1, 1, 1, S);
    let b1 = cbr(b, b1, 32, 3, 3, 1, S);
    let b2 = cbr(b, x, 32, 1, 1, 1, S);
    let b2 = cbr(b, b2, 48, 3, 3, 1, S);
    let b2 = cbr(b, b2, 64, 3, 3, 1, S);
    let mixed = b.layer(Layer::Concat, &[b0, b1, b2]);
    let up = up_proj(b, mixed, 320);
    let y = b.layer(Layer::Add, &[x, up]);
    b.layer(Layer::Activation(ActKind::Relu), &[y])
}

fn irv2_block17(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let b0 = cbr(b, x, 192, 1, 1, 1, S);
    let b1 = cbr(b, x, 128, 1, 1, 1, S);
    let b1 = cbr(b, b1, 160, 1, 7, 1, S);
    let b1 = cbr(b, b1, 192, 7, 1, 1, S);
    let mixed = b.layer(Layer::Concat, &[b0, b1]);
    let up = up_proj(b, mixed, 1088);
    let y = b.layer(Layer::Add, &[x, up]);
    b.layer(Layer::Activation(ActKind::Relu), &[y])
}

fn irv2_block8(b: &mut GraphBuilder, x: NodeId, relu_out: bool) -> NodeId {
    let b0 = cbr(b, x, 192, 1, 1, 1, S);
    let b1 = cbr(b, x, 192, 1, 1, 1, S);
    let b1 = cbr(b, b1, 224, 1, 3, 1, S);
    let b1 = cbr(b, b1, 256, 3, 1, 1, S);
    let mixed = b.layer(Layer::Concat, &[b0, b1]);
    let up = up_proj(b, mixed, 2080);
    let y = b.layer(Layer::Add, &[x, up]);
    if relu_out {
        b.layer(Layer::Activation(ActKind::Relu), &[y])
    } else {
        y
    }
}

pub fn inception_resnet_v2() -> ModelGraph {
    let mut b = GraphBuilder::new("InceptionResNetV2", 164);
    let x = b.input(TensorShape::square(299, 3));
    let x = stem(&mut b, x);
    // mixed 5b (Inception-A) -> 35x35x320
    let b0 = cbr(&mut b, x, 96, 1, 1, 1, S);
    let b1 = cbr(&mut b, x, 48, 1, 1, 1, S);
    let b1 = cbr(&mut b, b1, 64, 5, 5, 1, S);
    let b2 = cbr(&mut b, x, 64, 1, 1, 1, S);
    let b2 = cbr(&mut b, b2, 96, 3, 3, 1, S);
    let b2 = cbr(&mut b, b2, 96, 3, 3, 1, S);
    let bp = avgpool31(&mut b, x);
    let bp = cbr(&mut b, bp, 64, 1, 1, 1, S);
    let mut x = b.layer(Layer::Concat, &[b0, b1, b2, bp]);
    // 10x block35
    for _ in 0..10 {
        x = irv2_block35(&mut b, x);
    }
    // mixed 6a (Reduction-A) -> 17x17x1088
    let r0 = cbr(&mut b, x, 384, 3, 3, 2, V);
    let r1 = cbr(&mut b, x, 256, 1, 1, 1, S);
    let r1 = cbr(&mut b, r1, 256, 3, 3, 1, S);
    let r1 = cbr(&mut b, r1, 384, 3, 3, 2, V);
    let rp = maxpool32(&mut b, x);
    let mut x = b.layer(Layer::Concat, &[r0, r1, rp]);
    // 20x block17
    for _ in 0..20 {
        x = irv2_block17(&mut b, x);
    }
    // mixed 7a (Reduction-B) -> 8x8x2080
    let r0 = cbr(&mut b, x, 256, 1, 1, 1, S);
    let r0 = cbr(&mut b, r0, 384, 3, 3, 2, V);
    let r1 = cbr(&mut b, x, 256, 1, 1, 1, S);
    let r1 = cbr(&mut b, r1, 288, 3, 3, 2, V);
    let r2 = cbr(&mut b, x, 256, 1, 1, 1, S);
    let r2 = cbr(&mut b, r2, 288, 3, 3, 1, S);
    let r2 = cbr(&mut b, r2, 320, 3, 3, 2, V);
    let rp = maxpool32(&mut b, x);
    let mut x = b.layer(Layer::Concat, &[r0, r1, r2, rp]);
    // 9x block8 + final linear block8
    for _ in 0..9 {
        x = irv2_block8(&mut b, x, true);
    }
    let x = irv2_block8(&mut b, x, false);
    // conv_7b
    let x = cbr(&mut b, x, 1536, 1, 1, 1, S);
    let x = classifier_head(&mut b, x, 1000);
    b.finish(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::shape::TensorShape;

    #[test]
    fn v3_params_match_keras_and_paper() {
        let s = analyze(&inception_v3()).unwrap();
        assert_eq!(s.trainable_params, 23_817_352); // == paper Table I
        assert_eq!(s.total_params(), 23_851_784); // == Keras total
    }

    #[test]
    fn irv2_params_match_keras_and_paper() {
        let s = analyze(&inception_resnet_v2()).unwrap();
        assert_eq!(s.trainable_params, 55_813_192); // == paper Table I
        assert_eq!(s.total_params(), 55_873_736); // == Keras total
    }

    #[test]
    fn v3_stage_shapes() {
        let g = inception_v3();
        let shapes = g.infer_shapes().unwrap();
        for want in [
            TensorShape::hwc(35, 35, 288),
            TensorShape::hwc(17, 17, 768),
            TensorShape::hwc(8, 8, 2048),
        ] {
            assert!(shapes.contains(&want), "missing stage shape {want}");
        }
    }

    #[test]
    fn irv2_stage_shapes() {
        let g = inception_resnet_v2();
        let shapes = g.infer_shapes().unwrap();
        for want in [
            TensorShape::hwc(35, 35, 320),
            TensorShape::hwc(17, 17, 1088),
            TensorShape::hwc(8, 8, 2080),
            TensorShape::hwc(8, 8, 1536),
        ] {
            assert!(shapes.contains(&want), "missing stage shape {want}");
        }
    }
}
