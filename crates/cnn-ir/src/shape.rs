//! Tensor shapes and padding arithmetic.
//!
//! Shapes describe a single sample (batch size is applied at lowering time),
//! laid out as `H x W x C` to match the conventions of the frameworks the
//! paper profiles (Keras/TensorFlow). A "flat" tensor (dense-layer activations)
//! is represented with `h == w == 1`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of one activation tensor: height, width, channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    pub h: u32,
    pub w: u32,
    pub c: u32,
}

impl TensorShape {
    /// A spatial `h x w x c` tensor.
    pub const fn hwc(h: u32, w: u32, c: u32) -> Self {
        Self { h, w, c }
    }

    /// A flat feature vector of `n` elements.
    pub const fn flat(n: u32) -> Self {
        Self { h: 1, w: 1, c: n }
    }

    /// Square spatial input of side `s` with `c` channels (most ImageNet CNNs).
    pub const fn square(s: u32, c: u32) -> Self {
        Self { h: s, w: s, c }
    }

    /// Total number of scalar elements.
    pub fn elements(&self) -> u64 {
        self.h as u64 * self.w as u64 * self.c as u64
    }

    /// True when the tensor carries no spatial extent (`1 x 1 x C`).
    pub fn is_flat(&self) -> bool {
        self.h == 1 && self.w == 1
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// Spatial padding policy for convolution and pooling windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// TensorFlow-style `SAME`: output spatial size is `ceil(in / stride)`.
    Same,
    /// No padding: output is `floor((in - k) / stride) + 1`.
    Valid,
    /// Explicit asymmetric padding in pixels.
    Explicit {
        top: u32,
        bottom: u32,
        left: u32,
        right: u32,
    },
}

impl Padding {
    /// Symmetric explicit padding of `p` pixels on all four sides.
    pub const fn uniform(p: u32) -> Self {
        Padding::Explicit {
            top: p,
            bottom: p,
            left: p,
            right: p,
        }
    }

    /// Output extent for the vertical (height) axis for window `k`, stride
    /// `s`, input `n`. Returns `None` when the window does not fit.
    pub fn out_h(&self, n: u32, k: u32, s: u32) -> Option<u32> {
        assert!(s > 0, "stride must be positive");
        assert!(k > 0, "window must be positive");
        match *self {
            Padding::Same => Some(n.div_ceil(s)),
            Padding::Valid => explicit_extent(n, k, s, 0, 0),
            Padding::Explicit { top, bottom, .. } => explicit_extent(n, k, s, top, bottom),
        }
    }

    /// Output extent for the horizontal (width) axis.
    pub fn out_w(&self, n: u32, k: u32, s: u32) -> Option<u32> {
        assert!(s > 0, "stride must be positive");
        assert!(k > 0, "window must be positive");
        match *self {
            Padding::Same => Some(n.div_ceil(s)),
            Padding::Valid => explicit_extent(n, k, s, 0, 0),
            Padding::Explicit { left, right, .. } => explicit_extent(n, k, s, left, right),
        }
    }

    /// Total padding applied along the height axis for input extent `n`.
    pub fn pad_h(&self, n: u32, k: u32, s: u32) -> u32 {
        match *self {
            Padding::Same => same_total_pad(n, k, s),
            Padding::Valid => 0,
            Padding::Explicit { top, bottom, .. } => top + bottom,
        }
    }

    /// Total padding applied along the width axis for input extent `n`.
    pub fn pad_w(&self, n: u32, k: u32, s: u32) -> u32 {
        match *self {
            Padding::Same => same_total_pad(n, k, s),
            Padding::Valid => 0,
            Padding::Explicit { left, right, .. } => left + right,
        }
    }
}

fn explicit_extent(n: u32, k: u32, s: u32, lo: u32, hi: u32) -> Option<u32> {
    let padded = n + lo + hi;
    if k > padded {
        None
    } else {
        Some((padded - k) / s + 1)
    }
}

/// Total `SAME` padding along one axis (TensorFlow semantics).
fn same_total_pad(n: u32, k: u32, s: u32) -> u32 {
    let out = n.div_ceil(s);
    ((out - 1) * s + k).saturating_sub(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_multiplies_dims() {
        assert_eq!(TensorShape::hwc(224, 224, 3).elements(), 224 * 224 * 3);
        assert_eq!(TensorShape::flat(1000).elements(), 1000);
    }

    #[test]
    fn flat_detection() {
        assert!(TensorShape::flat(10).is_flat());
        assert!(!TensorShape::hwc(2, 1, 10).is_flat());
    }

    #[test]
    fn same_padding_ceil_division() {
        // 224 / stride 2 -> 112
        assert_eq!(Padding::Same.out_h(224, 3, 2), Some(112));
        assert_eq!(Padding::Same.out_h(224, 3, 1), Some(224));
        // odd input
        assert_eq!(Padding::Same.out_h(7, 3, 2), Some(4));
    }

    #[test]
    fn valid_padding_floor() {
        assert_eq!(Padding::Valid.out_h(224, 3, 1), Some(222));
        assert_eq!(Padding::Valid.out_h(7, 7, 1), Some(1));
        assert_eq!(Padding::Valid.out_h(6, 7, 1), None);
        // AlexNet first conv: 227 input, 11x11 window, stride 4 -> 55
        assert_eq!(Padding::Valid.out_h(227, 11, 4), Some(55));
    }

    #[test]
    fn explicit_padding_asymmetric() {
        let p = Padding::Explicit {
            top: 0,
            bottom: 1,
            left: 0,
            right: 1,
        };
        // ResNet-style stride-2 3x3 with (0,1) pad on 224 -> 112
        assert_eq!(p.out_h(224, 3, 2), Some(112));
        assert_eq!(p.out_w(224, 3, 2), Some(112));
    }

    #[test]
    fn same_total_pad_matches_tf() {
        // k=3, s=1: pad 2 total regardless of n
        assert_eq!(same_total_pad(224, 3, 1), 2);
        // k=3, s=2, n even: pad 1 total
        assert_eq!(same_total_pad(224, 3, 2), 1);
        // k=1: no pad
        assert_eq!(same_total_pad(224, 1, 1), 0);
    }
}
