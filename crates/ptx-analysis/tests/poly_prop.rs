//! Property tests for the poly counting tier: randomly generated kernels
//! with affine guards and counted loops must count **bit-identically**
//! across the compiled-polynomial, interpreter and brute-force evaluators,
//! in every [`CountMode`] — including kernels the poly compiler refuses
//! (auto mode must fall back without changing a single number).

use proptest::prelude::*;
use ptx::builder::KernelBuilder;
use ptx::inst::Operand;
use ptx::kernel::{Kernel, KernelLaunch};
use ptx::types::{BinOp, Type};
use ptx_analysis::{count_launch_bruteforce, count_launch_mode, CountMode, ExecBudget};

/// Shape of one generated kernel: an optional `gid < n` guard, some
/// straight-line payload, then up to two sequential counted loops whose
/// bodies do affine integer math over the induction variable.
#[derive(Debug, Clone)]
struct Recipe {
    block: u32,
    guard: bool,
    prelude_movs: u8,
    loops: Vec<LoopShape>,
}

#[derive(Debug, Clone)]
struct LoopShape {
    /// Loop body length (f32 movs) on top of the affine ops.
    body_movs: u8,
    /// Add affine integer math over the induction variable (exercises
    /// loop-closure delta checking in the poly compiler).
    affine_math: bool,
    /// Trip count source: `false` = a dedicated uniform parameter (poly
    /// compiles), `true` = the guarded gid itself (tid-sloped guard, poly
    /// must refuse and auto must fall back bit-identically).
    trip_is_gid: bool,
}

fn build(recipe: &Recipe) -> Kernel {
    let mut kb = KernelBuilder::new("pk", recipe.block);
    let p_n = kb.param("n", Type::U32);
    let p_t0 = kb.param("t0", Type::U32);
    let p_t1 = kb.param("t1", Type::U32);
    let trip_params = [p_t0, p_t1];
    let n = kb.ld_param(&p_n, Type::U32);
    let guarded = recipe.guard.then(|| kb.guard_gid(n));
    for _ in 0..recipe.prelude_movs {
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(1.0));
    }
    for (li, shape) in recipe.loops.iter().enumerate() {
        let trip = match (shape.trip_is_gid, &guarded) {
            (true, Some((gid, _))) => *gid,
            _ => kb.ld_param(&trip_params[li], Type::U32),
        };
        kb.counted_loop(trip, |kb, i| {
            if shape.affine_math {
                let a = kb.r();
                kb.bin(BinOp::Add, Type::U32, a, i, Operand::ImmI(3));
                let b = kb.r();
                kb.mad(Type::U32, b, a, Operand::ImmI(5), i);
                let c = kb.r();
                kb.bin(BinOp::Shl, Type::U32, c, b, Operand::ImmI(2));
            }
            for _ in 0..shape.body_movs {
                let f = kb.f();
                kb.mov(Type::F32, f, Operand::ImmF(2.0));
            }
        });
    }
    if let Some((_, exit)) = guarded {
        kb.place_label(exit);
    }
    kb.ret();
    kb.finish()
}

fn launch(blocks: u32, args: Vec<u64>) -> KernelLaunch {
    KernelLaunch {
        kernel: 0,
        tag: String::new(),
        grid: (blocks, 1, 1),
        args,
        bytes_read: 0,
        bytes_written: 0,
    }
}

fn loop_shape() -> impl Strategy<Value = LoopShape> {
    (0u8..3, any::<bool>(), 0u32..8).prop_map(|(body_movs, affine_math, sel)| LoopShape {
        body_movs,
        affine_math,
        // bias toward compilable loops; 1-in-8 is gid-driven
        trip_is_gid: sel == 0,
    })
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop_oneof![Just(32u32), Just(64)],
        any::<bool>(),
        0u8..3,
        prop::collection::vec(loop_shape(), 0..3),
    )
        .prop_map(|(block, guard, prelude_movs, mut loops)| {
            // a gid-driven trip needs the guard's gid register
            if !guard {
                for l in &mut loops {
                    l.trip_is_gid = false;
                }
            }
            Recipe {
                block,
                guard,
                prelude_movs,
                loops,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small grids: all four modes agree with the executed-every-thread
    /// reference, field for field.
    #[test]
    fn all_modes_match_bruteforce(
        r in recipe(),
        blocks in 1u32..5,
        n in 0u64..400,
        t0 in 0u64..40,
        t1 in 0u64..40,
    ) {
        let k = build(&r);
        let l = launch(blocks, vec![n, t0, t1]);
        let budget = ExecBudget::default();
        let brute = count_launch_bruteforce(&k, &l).unwrap();
        for mode in [CountMode::Auto, CountMode::Interp, CountMode::Bruteforce] {
            let got = count_launch_mode(&k, &l, true, &budget, mode).unwrap();
            prop_assert_eq!(got.thread_instructions, brute.thread_instructions,
                "thread_instructions ({mode}) on {r:?} n={n} t0={t0} t1={t1}");
            prop_assert_eq!(got.warp_issues, brute.warp_issues,
                "warp_issues ({mode}) on {r:?}");
            prop_assert_eq!(got.by_category, brute.by_category,
                "by_category ({mode}) on {r:?}");
            prop_assert_eq!(got.threads, brute.threads);
        }
        // strict poly mode either agrees exactly or refuses with an
        // attributable reason — it never silently diverges
        match count_launch_mode(&k, &l, true, &budget, CountMode::Poly) {
            Ok(got) => {
                prop_assert_eq!(got.thread_instructions, brute.thread_instructions);
                prop_assert_eq!(got.warp_issues, brute.warp_issues);
            }
            Err(ptx_analysis::ExecError::Unlaunchable { reason, .. }) => {
                prop_assert!(reason.starts_with("poly: "), "{}", reason);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Large grids (brute force infeasible): the poly and interpreter
    /// tiers return structurally identical `LaunchCount`s — same totals,
    /// same rectangle decomposition, same representative count.
    #[test]
    fn poly_equals_interp_on_large_grids(
        r in recipe(),
        blocks in 1u32..2_000,
        n in 0u64..100_000,
        t0 in 0u64..5_000,
        t1 in 0u64..5_000,
    ) {
        // a gid-driven trip makes per-representative cost proportional to
        // the grid itself (every thread runs ~gid iterations and the grid
        // splits at every thread boundary) — keep those grids small; the
        // equivalence claim is unchanged
        let blocks = if r.loops.iter().any(|l| l.trip_is_gid) {
            1 + blocks % 7
        } else {
            blocks
        };
        let k = build(&r);
        let l = launch(blocks, vec![n, t0, t1]);
        // tight fuel also checks StepLimit payload parity across tiers
        let budget = ExecBudget::default().with_max_steps(250_000);
        // errors must agree too: a gid-driven trip over a huge grid
        // legitimately exhausts the split budget on every tier
        let interp = count_launch_mode(&k, &l, true, &budget, CountMode::Interp);
        let auto = count_launch_mode(&k, &l, true, &budget, CountMode::Auto);
        prop_assert_eq!(&auto, &interp, "auto vs interp on {:?}", &r);
        if let (Ok(poly), Ok(i)) = (
            count_launch_mode(&k, &l, true, &budget, CountMode::Poly),
            &interp,
        ) {
            prop_assert_eq!(&poly, i, "poly vs interp on {:?}", &r);
        }
    }
}
