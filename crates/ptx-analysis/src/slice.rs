//! Program slicing (paper Section IV-A): compute the subgraph
//! `G_v* = (V', E')` of instructions that must be *evaluated* to resolve
//! every branch — the rest of the kernel only needs to be counted.

use crate::depgraph::DepGraph;
use ptx::kernel::Kernel;
use std::collections::{HashMap, HashSet};

/// Branch slices computed.
static SLICE_COMPUTED: obs::LazyCounter = obs::LazyCounter::new("ptx.slice.computed");
/// Distribution of slice sizes (instructions per slice) — a value
/// histogram, fully deterministic.
static SLICE_SIZE: obs::LazyHistogram = obs::LazyHistogram::new("ptx.slice.size");

/// Instruction indices (label-free numbering) forming the backward slice of
/// all branch predicates, loop state included.
pub fn branch_slice(kernel: &Kernel) -> HashSet<usize> {
    let g = DepGraph::build(kernel);
    let seeds: Vec<usize> = g
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_terminator())
        .map(|(idx, _)| idx)
        .collect();
    let mut slice = g.backward_closure(&seeds);
    // guards of sliced instructions must be evaluable too: close over the
    // predicates guarding slice members (defs-by-register indexed once up
    // front instead of rescanning the body per slice member)
    let mut defs_of: HashMap<ptx::types::Reg, Vec<usize>> = HashMap::new();
    for (j, inst) in g.instrs.iter().enumerate() {
        if let Some(d) = inst.dst() {
            defs_of.entry(d).or_default().push(j);
        }
    }
    loop {
        let mut extra: Vec<usize> = Vec::new();
        for &i in &slice {
            if let Some((p, _)) = g.instrs[i].guard {
                // find defs of p: any instruction writing p
                for &j in defs_of.get(&p).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if !slice.contains(&j) {
                        extra.push(j);
                    }
                }
            }
        }
        if extra.is_empty() {
            break;
        }
        for e in extra {
            slice.extend(g.backward_closure(&[e]));
        }
    }
    SLICE_COMPUTED.inc();
    SLICE_SIZE.record(slice.len() as u64);
    slice
}

/// Fraction of the kernel body inside the slice (diagnostic; the paper's
/// speed argument rests on this being well below 1).
pub fn slice_fraction(kernel: &Kernel) -> f64 {
    let n = kernel.num_instructions();
    if n == 0 {
        return 0.0;
    }
    branch_slice(kernel).len() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_slice_is_a_small_fraction() {
        let k = ptx_codegen::Template::GemmTiled.build();
        let f = slice_fraction(&k);
        assert!(f < 0.5, "gemm slice fraction {f} too large");
        assert!(f > 0.0);
    }

    #[test]
    fn slice_contains_loop_counters() {
        let k = ptx_codegen::Template::Gemv.build();
        let slice = branch_slice(&k);
        let g = DepGraph::build(&k);
        // every setp must be in the slice of some branch... at least the
        // loop setp; check: all branch guards' defining setps are present
        for (i, inst) in g.instrs.iter().enumerate() {
            if inst.is_terminator() {
                if let Some((p, _)) = inst.guard {
                    let defs: Vec<usize> = g
                        .instrs
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| x.dst() == Some(p))
                        .map(|(j, _)| j)
                        .collect();
                    for d in defs {
                        assert!(slice.contains(&d), "branch {i} pred def {d} missing");
                    }
                }
            }
        }
    }

    #[test]
    fn elementwise_payload_outside_slice() {
        let k = ptx_codegen::Template::ActSwish.build();
        let slice = branch_slice(&k);
        let g = DepGraph::build(&k);
        let float_payload = g
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| {
                matches!(
                    i.category(),
                    ptx::inst::Category::FloatAlu | ptx::inst::Category::SpecialFunc
                )
            })
            .count();
        let sliced_payload = g
            .instrs
            .iter()
            .enumerate()
            .filter(|(idx, i)| {
                slice.contains(idx)
                    && matches!(
                        i.category(),
                        ptx::inst::Category::FloatAlu | ptx::inst::Category::SpecialFunc
                    )
            })
            .count();
        assert!(float_payload > 0);
        assert_eq!(sliced_payload, 0, "float payload leaked into the slice");
    }
}
