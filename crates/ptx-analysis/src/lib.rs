//! # ptx-analysis — the paper's dynamic code analysis module
//!
//! Implements Section IV-A of the paper: parse PTX into a data-dependency
//! graph `G = {V, E}` ([`depgraph`]), derive control flow ([`cfg`]), slice
//! the instructions needed to resolve branches (`G_v*`, [`slice`]), and
//! execute only those to obtain the **exact number of executed PTX
//! instructions** for any launch without hardware or a cycle-level
//! simulator ([`exec`], [`count`]).
//!
//! ```
//! let model = cnn_ir::zoo::build("alexnet").unwrap();
//! let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
//! let counts = ptx_analysis::count_plan(&plan, true).unwrap();
//! assert!(counts.thread_instructions > 0);
//! ```

pub mod cfg;
pub mod count;
pub mod depgraph;
pub mod exec;
pub mod poly;
pub mod slice;
pub mod stats;

pub use cfg::Cfg;
pub use count::{
    count_launch, count_launch_bruteforce, count_launch_budgeted, count_launch_mode,
    count_launch_poly_prepared, count_launch_prepared, count_plan, count_plan_budgeted,
    count_plan_mode_budgeted, count_plan_report_budgeted, default_count_mode,
    set_default_count_mode, CountMode, CountingReport, LaunchCount, PlanCount, WARP,
};
pub use depgraph::DepGraph;
pub use exec::{
    Break, DenseProgram, ExecBudget, ExecError, Machine, ThreadOutcome, Val, CANCEL_CHECK_INTERVAL,
    NCAT,
};
pub use poly::{compile_kernel, KernelPoly, PolyBail};
pub use slice::{branch_slice, slice_fraction};
pub use stats::{kernel_stats, KernelStats};
