//! The dynamic-code-analysis executor (paper Section IV-A).
//!
//! Executes one representative thread of a kernel launch, tracking every
//! integer value as an *affine form* `ct*ctaid.x + td*tid.x + b`. Branch
//! predicates over affine values are resolved exactly for the
//! representative *and* reported as breakpoints — thread indices where the
//! predicate flips — which lets the counting layer split the launch grid
//! into equivalence classes instead of executing every thread.
//!
//! Loads from global/shared memory produce opaque values. The kernels our
//! code generator emits never branch on loaded data (borders and max-pool
//! selections are `selp`-if-converted), which is what makes this analysis
//! exact; a data-dependent branch surfaces as [`ExecError::DataDependentBranch`].
//!
//! In *slice mode* the executor only evaluates the backward slice `G_v*` of
//! the branch predicates (computed via [`crate::depgraph`]) and merely
//! counts everything else — the paper's core trick for outrunning
//! simulators.
//!
//! # Dense decoding
//!
//! A kernel is decoded exactly once into a [`DenseProgram`]: virtual
//! registers become contiguous `u32` slots, labels become resolved `pc`
//! values, `ld.param` names become parameter-slot indices, and special
//! registers fold into immediate affine forms. The per-step register file
//! is then a flat `Vec<Val>` (plus a `Vec<Option<PredInfo>>` for
//! predicates) instead of `HashMap` probes per operand, and the counting
//! layer's per-grid-rectangle re-runs share the decoded program instead of
//! re-resolving operands every time. The decode is a pure re-encoding: the
//! interpreter's observable behaviour (counts, category mixes, breakpoints
//! and errors) is bit-identical to the original map-based machine.

use ptx::inst::{AddrBase, BodyElem, Category, Instruction, Op, Operand};
use ptx::kernel::Kernel;
use ptx::types::{BinOp, CmpOp, Reg, RegClass, Space, SpecialReg, Type, UnOp};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Completed representative-thread executions.
static EXEC_RUNS: obs::LazyCounter = obs::LazyCounter::new("ptx.exec.runs");
/// Instructions executed by completed representative threads.
static EXEC_STEPS: obs::LazyCounter = obs::LazyCounter::new("ptx.exec.steps");
/// Cooperative cancellation checks performed (one per
/// [`CANCEL_CHECK_INTERVAL`] interpreter steps).
static EXEC_CANCEL_CHECKS: obs::LazyCounter = obs::LazyCounter::new("ptx.exec.cancel_checks");
/// Executions actually aborted by a tripped cancellation token.
static EXEC_CANCELLED: obs::LazyCounter = obs::LazyCounter::new("ptx.exec.cancelled");
/// Kernels decoded into dense programs (once per prepared kernel, not per
/// representative run).
static EXEC_DECODES: obs::LazyCounter = obs::LazyCounter::new("ptx.exec.decodes");

/// Steps between cooperative-cancellation checks; amortizes the atomic
/// load to noise on the interpreter hot loop.
///
/// This is the executor's cancellation-latency contract: a tripped token
/// is observed within at most `CANCEL_CHECK_INTERVAL` interpreter steps of
/// any single representative-thread execution. The check also fires at
/// step 0, so in *nested* execution (the counting layer re-running the
/// machine once per grid rectangle, including slice mode) the bound holds
/// across representative runs too — a fresh run observes a pending cancel
/// before executing its first instruction. The dense-program decode did
/// not change this contract: the check sits on the same per-step loop.
pub const CANCEL_CHECK_INTERVAL: u64 = 8192;

/// Execution budget for the symbolic executor: step fuel plus an optional
/// cooperative cancellation token shared across threads. Replaces the old
/// hard-coded step limit, so callers (e.g. a profiling pipeline that wants
/// to kill hung analyses) can bound the work per representative thread.
#[derive(Clone, Default)]
pub struct ExecBudget {
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    /// Liveness observer, invoked at every cancellation check point (every
    /// [`CANCEL_CHECK_INTERVAL`] steps and at step 0 of each run). A
    /// supervisor stamps a heartbeat from here, so "observer went silent"
    /// implies "interpreter stopped making progress".
    observer: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for ExecBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecBudget")
            .field("max_steps", &self.max_steps)
            .field("cancel", &self.cancel)
            .field("observer", &self.observer.as_ref().map(|_| ".."))
            .finish()
    }
}

impl ExecBudget {
    /// Default fuel per representative-thread execution. Generous: the
    /// largest zoo kernels execute ~10^6 instructions per thread.
    pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Attach a cancellation token. Setting it to `true` makes every
    /// in-flight execution return [`ExecError::Cancelled`] at the next
    /// check point.
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    pub fn max_steps(&self) -> u64 {
        self.max_steps.unwrap_or(Self::DEFAULT_MAX_STEPS)
    }

    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Attach a liveness observer called at every cancellation check
    /// point. Used by `core::supervise` to stamp per-cell heartbeats.
    pub fn with_observer(mut self, observer: Arc<dyn Fn() + Send + Sync>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Invoke the liveness observer, if any. Called from the same sites
    /// (and at the same cadence) as [`Self::cancelled`] checks, so the
    /// cancellation-latency contract doubles as a heartbeat-cadence
    /// contract.
    #[inline]
    pub fn pulse(&self) {
        if let Some(obs) = &self.observer {
            obs();
        }
    }
}

/// Number of instruction categories tracked.
pub const NCAT: usize = Category::ALL.len();

pub(crate) fn cat_index(c: Category) -> usize {
    Category::ALL
        .iter()
        .position(|x| *x == c)
        .expect("category")
}

/// An abstract value: affine in `(ctaid.x, tid.x)`, a concrete float, or
/// opaque.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// `ct*ctaid.x + td*tid.x + b` over exact integers.
    Lin {
        ct: i128,
        td: i128,
        b: i128,
    },
    F32(f32),
    Unknown,
}

impl Val {
    pub fn cnst(v: i128) -> Val {
        Val::Lin { ct: 0, td: 0, b: v }
    }

    fn as_const(&self) -> Option<i128> {
        match *self {
            Val::Lin { ct: 0, td: 0, b } => Some(b),
            _ => None,
        }
    }

    /// Evaluate at a concrete (ctaid, tid).
    fn eval(&self, ctaid: i128, tid: i128) -> Option<i128> {
        match *self {
            Val::Lin { ct, td, b } => Some(ct * ctaid + td * tid + b),
            _ => None,
        }
    }
}

/// A grid split point discovered from an affine branch predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Break {
    /// Split the linear thread index `tau = ctaid*ntid + tid` at this value.
    Tau(i128),
    /// Split the tid dimension (same in every block).
    Tid(i128),
    /// Split the block dimension.
    Block(i128),
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A branch depended on a non-affine (e.g. loaded) value.
    DataDependentBranch { pc: usize },
    /// A branch predicate was affine but not expressible as a tau/tid/block
    /// split (mixed slopes).
    MixedSlopePredicate { pc: usize },
    /// Instruction budget exhausted (runaway loop) in the named kernel.
    StepLimit { limit: u64, kernel: String },
    /// Grid-splitting budget exhausted while counting the named kernel.
    SplitBudget { limit: u64, kernel: String },
    /// Execution cancelled via the [`ExecBudget`] cancellation token.
    /// `step` reports where the cancel landed: the interpreter step count
    /// of the representative execution (or, from the counting layer, the
    /// accumulated steps across all representative runs of the launch).
    Cancelled { kernel: String, step: u64 },
    /// `ld.param` referenced an unknown parameter name.
    UnknownParam { name: String },
    /// Branch to an undefined label.
    BadLabel { pc: usize },
    /// The launch configuration can never become resident on the target
    /// device (e.g. per-block shared memory exceeding the SM budget):
    /// zero blocks fit, so there is nothing meaningful to model.
    Unlaunchable { kernel: String, reason: String },
    /// An instruction-count accumulation overflowed `u64` (degenerate
    /// launches with huge `nblocks x ntid x per-thread counts`). Surfaced
    /// as a typed error instead of silently wrapping to a small count.
    CountOverflow { kernel: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DataDependentBranch { pc } => {
                write!(f, "data-dependent branch at instruction {pc}")
            }
            ExecError::MixedSlopePredicate { pc } => {
                write!(f, "mixed-slope affine predicate at instruction {pc}")
            }
            ExecError::StepLimit { limit, kernel } => {
                write!(f, "step limit {limit} exhausted in kernel `{kernel}`")
            }
            ExecError::SplitBudget { limit, kernel } => {
                write!(
                    f,
                    "grid-split budget {limit} exhausted in kernel `{kernel}`"
                )
            }
            ExecError::Cancelled { kernel, step } => {
                write!(f, "execution of kernel `{kernel}` cancelled at step {step}")
            }
            ExecError::UnknownParam { name } => write!(f, "unknown param {name}"),
            ExecError::BadLabel { pc } => write!(f, "bad label at {pc}"),
            ExecError::Unlaunchable { kernel, reason } => {
                write!(f, "kernel `{kernel}` is unlaunchable: {reason}")
            }
            ExecError::CountOverflow { kernel } => {
                write!(
                    f,
                    "instruction-count accumulation overflowed u64 in kernel `{kernel}`"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of executing one representative thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// Instructions on the thread's control-flow path (predicated-off
    /// instructions issue and are therefore counted).
    pub count: u64,
    pub by_cat: [u64; NCAT],
    /// Grid splits this thread's branch predicates imply.
    pub breaks: Vec<Break>,
}

/// Predicate-register state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PredInfo {
    pub(crate) truth: Option<bool>,
    /// The affine difference `d` with `cmp(d, 0)` defining the predicate,
    /// kept for breakpoint derivation.
    pub(crate) lin: Option<(CmpOp, Val)>,
}

const PRED_UNSET: PredInfo = PredInfo {
    truth: None,
    lin: None,
};

/// A decoded operand: either a dense register slot or an immediate value
/// resolved at decode time (integer/float immediates and all special
/// registers except `%nctaid.x`, which is a launch property).
#[derive(Debug, Clone, Copy)]
pub(crate) enum DOperand {
    /// Dense value-register slot.
    Slot(u32),
    /// Decode-time constant (immediates, `%tid.x`/`%ctaid.x` affine forms,
    /// `%ntid.x` and the y-dimension constants).
    Val(Val),
    /// `%nctaid.x`: resolved from the launch at run time.
    NCtaId,
}

/// Off-slice destination of an instruction, mirroring the original
/// machine's `inst.dst()` + register-class dispatch: predicate-class
/// destinations poison predicate state, everything else poisons the value
/// file.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OffDst {
    None,
    Value(u32),
    Pred(u32),
}

/// A decoded instruction operation over dense slots.
#[derive(Debug, Clone)]
pub(crate) enum DOp {
    /// Write `src` to a value slot (`mov`, non-param `ld`).
    Set {
        dst: u32,
        src: DOperand,
    },
    /// `mov` into a predicate register: copy predicate state when the
    /// source is a register with known predicate state (the original
    /// machine ignores immediates and never-defined sources).
    MovPred {
        dst: u32,
        src: Option<u32>,
    },
    /// `ld.param` with a resolved parameter slot; the argument value is
    /// looked up at run time (launches share the decoded program).
    LdParam {
        dst: u32,
        pslot: u32,
    },
    /// `ld.param` that can never resolve (unknown name or register-based
    /// address): errors when evaluated, opaque when off-slice.
    ParamErr {
        name: Box<str>,
    },
    Bin {
        op: BinOp,
        t: Type,
        dst: u32,
        a: DOperand,
        b: DOperand,
    },
    Un {
        op: UnOp,
        dst: u32,
        a: DOperand,
    },
    Mad {
        t: Type,
        dst: u32,
        a: DOperand,
        b: DOperand,
        c: DOperand,
    },
    Cvt {
        to: Type,
        from: Type,
        dst: u32,
        src: DOperand,
    },
    Setp {
        cmp: CmpOp,
        t: Type,
        dst: u32,
        a: DOperand,
        b: DOperand,
    },
    Selp {
        dst: u32,
        a: DOperand,
        b: DOperand,
        p: u32,
    },
    /// Branch with the label already resolved to a `pc` (`None` = the
    /// label is undefined and taking the branch is [`ExecError::BadLabel`]).
    Bra {
        target: Option<u32>,
    },
    /// `st` / `bar`: counted, no value semantics.
    Nop,
    Ret,
}

/// One decoded instruction: operation, guard (dense predicate slot),
/// pre-computed category and off-slice destination.
#[derive(Debug, Clone)]
pub(crate) struct DInst {
    pub(crate) op: DOp,
    pub(crate) guard: Option<(u32, bool)>,
    pub(crate) cat: Category,
    pub(crate) cat_idx: u8,
    pub(crate) off_dst: OffDst,
}

/// Deterministic dense-slot allocator: registers get contiguous indices in
/// first-appearance order, exactly mirroring the original `HashMap<Reg, _>`
/// keying (value and predicate files are separate namespaces, as before).
#[derive(Default)]
struct SlotAlloc {
    map: HashMap<Reg, u32>,
}

impl SlotAlloc {
    fn get(&mut self, r: Reg) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(r).or_insert(next)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A kernel pre-decoded for repeated representative-thread execution:
/// dense register slots, resolved branch targets, parameter-slot indices
/// and folded special registers. Launch-independent, so the counting layer
/// decodes each kernel exactly once and shares the program across all of
/// its launches (and all grid-rectangle re-runs within a launch).
pub struct DenseProgram {
    pub(crate) prog: Vec<DInst>,
    /// Parameter slot -> name, for `UnknownParam` attribution.
    pub(crate) param_names: Vec<String>,
    pub(crate) nregs: usize,
    pub(crate) npreds: usize,
    ntid: u32,
    pub(crate) kernel_name: String,
}

impl DenseProgram {
    /// Decode `kernel` into a dense program. The decode is deterministic
    /// and behaviour-preserving; see the module docs.
    pub fn decode(kernel: &Kernel) -> Self {
        EXEC_DECODES.inc();
        let mut instrs: Vec<&Instruction> = Vec::with_capacity(kernel.num_instructions());
        let mut label_at: HashMap<u32, u32> = HashMap::new();
        for e in &kernel.body {
            match e {
                BodyElem::Label(l) => {
                    label_at.insert(*l, instrs.len() as u32);
                }
                BodyElem::Inst(i) => instrs.push(i),
            }
        }
        let param_names: Vec<String> = kernel.params.iter().map(|p| p.name.clone()).collect();
        let param_index: HashMap<&str, u32> = param_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as u32))
            .collect();
        let ntid = kernel.block_threads();

        let mut vals = SlotAlloc::default();
        let mut preds = SlotAlloc::default();
        let operand = |vals: &mut SlotAlloc, o: &Operand| -> DOperand {
            match o {
                Operand::Reg(r) => DOperand::Slot(vals.get(*r)),
                Operand::ImmI(v) => DOperand::Val(Val::cnst(*v as i128)),
                Operand::ImmF(v) => DOperand::Val(Val::F32(*v)),
                Operand::Special(s) => DOperand::Val(match s {
                    SpecialReg::TidX => Val::Lin { ct: 0, td: 1, b: 0 },
                    SpecialReg::CtaIdX => Val::Lin { ct: 1, td: 0, b: 0 },
                    SpecialReg::NTidX => Val::cnst(ntid as i128),
                    SpecialReg::NCtaIdX => return DOperand::NCtaId,
                    SpecialReg::TidY | SpecialReg::CtaIdY => Val::cnst(0),
                    SpecialReg::NTidY | SpecialReg::NCtaIdY => Val::cnst(1),
                }),
            }
        };

        let mut prog = Vec::with_capacity(instrs.len());
        for inst in &instrs {
            let op = match &inst.op {
                Op::Mov { dst, src, .. } => {
                    if dst.class == RegClass::P {
                        let src = match src {
                            Operand::Reg(r) => Some(preds.get(*r)),
                            _ => None,
                        };
                        DOp::MovPred {
                            dst: preds.get(*dst),
                            src,
                        }
                    } else {
                        DOp::Set {
                            dst: vals.get(*dst),
                            src: operand(&mut vals, src),
                        }
                    }
                }
                Op::Ld {
                    space, dst, addr, ..
                } => match space {
                    Space::Param => match &addr.base {
                        AddrBase::Param(name) => match param_index.get(name.as_str()) {
                            Some(&pslot) => DOp::LdParam {
                                dst: vals.get(*dst),
                                pslot,
                            },
                            None => DOp::ParamErr {
                                name: name.as_str().into(),
                            },
                        },
                        AddrBase::Reg(_) => DOp::ParamErr {
                            name: "<reg>".into(),
                        },
                    },
                    _ => DOp::Set {
                        dst: vals.get(*dst),
                        src: DOperand::Val(Val::Unknown),
                    },
                },
                Op::St { .. } | Op::Bar => DOp::Nop,
                Op::Bin { op, t, dst, a, b } => DOp::Bin {
                    op: *op,
                    t: *t,
                    dst: vals.get(*dst),
                    a: operand(&mut vals, a),
                    b: operand(&mut vals, b),
                },
                Op::Un { op, dst, a, .. } => DOp::Un {
                    op: *op,
                    dst: vals.get(*dst),
                    a: operand(&mut vals, a),
                },
                Op::Mad { t, dst, a, b, c } => DOp::Mad {
                    t: *t,
                    dst: vals.get(*dst),
                    a: operand(&mut vals, a),
                    b: operand(&mut vals, b),
                    c: operand(&mut vals, c),
                },
                Op::Cvt { to, from, dst, src } => DOp::Cvt {
                    to: *to,
                    from: *from,
                    dst: vals.get(*dst),
                    src: operand(&mut vals, src),
                },
                Op::Setp { cmp, t, dst, a, b } => DOp::Setp {
                    cmp: *cmp,
                    t: *t,
                    dst: preds.get(*dst),
                    a: operand(&mut vals, a),
                    b: operand(&mut vals, b),
                },
                Op::Selp { dst, a, b, p, .. } => DOp::Selp {
                    dst: vals.get(*dst),
                    a: operand(&mut vals, a),
                    b: operand(&mut vals, b),
                    p: preds.get(*p),
                },
                Op::Bra { target, .. } => DOp::Bra {
                    target: label_at.get(target).copied(),
                },
                Op::Ret => DOp::Ret,
            };
            let guard = inst.guard.map(|(p, neg)| (preds.get(p), neg));
            let off_dst = match inst.dst() {
                None => OffDst::None,
                Some(d) if d.class == RegClass::P => OffDst::Pred(preds.get(d)),
                Some(d) => OffDst::Value(vals.get(d)),
            };
            let cat = inst.category();
            prog.push(DInst {
                op,
                guard,
                cat,
                cat_idx: cat_index(cat) as u8,
                off_dst,
            });
        }

        DenseProgram {
            prog,
            param_names,
            nregs: vals.len(),
            npreds: preds.len(),
            ntid,
            kernel_name: kernel.name.clone(),
        }
    }

    /// Instructions in the decoded program (labels excluded).
    pub fn len(&self) -> usize {
        self.prog.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prog.is_empty()
    }

    /// Threads per block of the decoded kernel.
    pub fn ntid(&self) -> u32 {
        self.ntid
    }

    /// Name of the decoded kernel (for error attribution).
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }
}

/// A prepared kernel ready for repeated thread execution: a shared
/// [`DenseProgram`] plus the launch-specific state (grid size, parameter
/// values, budget and slice flags).
pub struct Machine {
    program: Arc<DenseProgram>,
    pub ntid: u32,
    pub nctaid: u64,
    args: Vec<u64>,
    budget: ExecBudget,
    /// Per-pc evaluation flags (`false` = off-slice: count but poison).
    evaluate: Vec<bool>,
}

impl Machine {
    /// Prepare `kernel` for a launch of `nctaid` blocks with the given
    /// parameter values. Decodes the kernel; use [`Machine::from_program`]
    /// to share one decode across launches.
    pub fn new(kernel: &Kernel, nctaid: u64, args: &[u64]) -> Self {
        Self::from_program(Arc::new(DenseProgram::decode(kernel)), nctaid, args)
    }

    /// Prepare a launch over an already-decoded program.
    pub fn from_program(program: Arc<DenseProgram>, nctaid: u64, args: &[u64]) -> Self {
        let evaluate = vec![true; program.prog.len()];
        let ntid = program.ntid;
        Self {
            program,
            ntid,
            nctaid,
            args: args.to_vec(),
            budget: ExecBudget::default(),
            evaluate,
        }
    }

    /// Restrict value evaluation to the backward slice of branch predicates
    /// (the paper's `G_v*`). Counting is unaffected; only the interpreter
    /// work shrinks.
    pub fn with_slice(mut self, slice: HashSet<usize>) -> Self {
        for (pc, flag) in self.evaluate.iter_mut().enumerate() {
            *flag = slice.contains(&pc);
        }
        self
    }

    /// Replace the execution budget (fuel and/or cancellation token).
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }

    pub fn set_max_steps(&mut self, n: u64) {
        self.budget = self.budget.clone().with_max_steps(n);
    }

    /// Name of the prepared kernel (for error attribution).
    pub fn kernel_name(&self) -> &str {
        &self.program.kernel_name
    }

    #[inline]
    fn dval(&self, regs: &[Val], o: DOperand) -> Val {
        match o {
            DOperand::Slot(i) => regs[i as usize],
            DOperand::Val(v) => v,
            DOperand::NCtaId => Val::cnst(self.nctaid as i128),
        }
    }

    /// Execute `(ctaid, tid)` and also record the instruction-category
    /// trace along the path (used by the detailed GPU simulator to model
    /// per-warp pipelines).
    pub fn run_traced(
        &self,
        ctaid: u64,
        tid: u32,
    ) -> Result<(ThreadOutcome, Vec<Category>), ExecError> {
        let mut trace = Vec::new();
        let outcome = self.run_inner(ctaid, tid, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// Execute the representative thread `(ctaid, tid)`.
    pub fn run(&self, ctaid: u64, tid: u32) -> Result<ThreadOutcome, ExecError> {
        self.run_inner(ctaid, tid, None)
    }

    fn run_inner(
        &self,
        ctaid: u64,
        tid: u32,
        mut trace: Option<&mut Vec<Category>>,
    ) -> Result<ThreadOutcome, ExecError> {
        let prog = &self.program.prog;
        let mut regs: Vec<Val> = vec![Val::Unknown; self.program.nregs];
        let mut preds: Vec<Option<PredInfo>> = vec![None; self.program.npreds];
        let mut pc = 0usize;
        let mut count = 0u64;
        let mut by_cat = [0u64; NCAT];
        let mut breaks: Vec<Break> = Vec::new();
        let cta = ctaid as i128;
        let t = tid as i128;

        let max_steps = self.budget.max_steps();
        while pc < prog.len() {
            if count >= max_steps {
                return Err(ExecError::StepLimit {
                    limit: max_steps,
                    kernel: self.program.kernel_name.clone(),
                });
            }
            if count.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                EXEC_CANCEL_CHECKS.inc();
                self.budget.pulse();
                if self.budget.cancelled() {
                    EXEC_CANCELLED.inc();
                    return Err(ExecError::Cancelled {
                        kernel: self.program.kernel_name.clone(),
                        step: count,
                    });
                }
            }
            let inst = &prog[pc];
            count += 1;
            by_cat[inst.cat_idx as usize] += 1;
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(inst.cat);
            }

            // guard evaluation (for value semantics; issue is counted above)
            let guard_truth: Option<bool> = match inst.guard {
                None => Some(true),
                Some((p, neg)) => preds[p as usize].and_then(|pi| pi.truth).map(|v| v != neg),
            };

            // branches drive control flow and must be resolvable
            if let DOp::Bra { target } = inst.op {
                let taken = match inst.guard {
                    None => true,
                    Some((p, _neg)) => {
                        let pi = preds[p as usize].unwrap_or(PRED_UNSET);
                        // harvest breakpoints from the predicate
                        if let Some((cmp, d)) = pi.lin {
                            self.harvest_breaks(cmp, d, pc, &mut breaks)?;
                        }
                        match guard_truth {
                            Some(v) => v,
                            None => return Err(ExecError::DataDependentBranch { pc }),
                        }
                    }
                };
                if taken {
                    pc = target.ok_or(ExecError::BadLabel { pc })? as usize;
                } else {
                    pc += 1;
                }
                continue;
            }
            if matches!(inst.op, DOp::Ret) {
                break;
            }

            // slice mode: skip value evaluation of off-slice instructions
            if self.evaluate[pc] {
                self.eval_dinst(inst, guard_truth, cta, t, &mut regs, &mut preds)?;
            } else {
                // keep soundness: off-slice destinations become opaque
                match inst.off_dst {
                    OffDst::Pred(d) => preds[d as usize] = Some(PRED_UNSET),
                    OffDst::Value(d) => regs[d as usize] = Val::Unknown,
                    OffDst::None => {}
                }
            }
            pc += 1;
        }

        breaks.sort_unstable_by_key(|b| match b {
            Break::Tau(v) | Break::Tid(v) | Break::Block(v) => *v,
        });
        breaks.dedup();
        EXEC_RUNS.inc();
        EXEC_STEPS.add(count);
        Ok(ThreadOutcome {
            count,
            by_cat,
            breaks,
        })
    }

    /// Derive grid splits from an affine predicate `cmp(d, 0)`.
    fn harvest_breaks(
        &self,
        _cmp: CmpOp,
        d: Val,
        pc: usize,
        out: &mut Vec<Break>,
    ) -> Result<(), ExecError> {
        let Val::Lin { ct, td, b } = d else {
            return Ok(()); // non-affine predicates carry no split info
        };
        harvest_breaks_into(ct, td, b, self.ntid as i128, pc, out)
    }

    fn eval_dinst(
        &self,
        inst: &DInst,
        guard_truth: Option<bool>,
        cta: i128,
        tid: i128,
        regs: &mut [Val],
        preds: &mut [Option<PredInfo>],
    ) -> Result<(), ExecError> {
        // predicated-off instructions leave their destination untouched;
        // unknown guards poison it
        if guard_truth == Some(false) {
            return Ok(());
        }
        let poison = guard_truth.is_none();
        macro_rules! set {
            ($dst:expr, $v:expr) => {
                regs[$dst as usize] = if poison { Val::Unknown } else { $v }
            };
        }

        match &inst.op {
            DOp::Set { dst, src } => {
                let v = self.dval(regs, *src);
                set!(*dst, v);
            }
            DOp::MovPred { dst, src } => {
                // mov into predicate (rare): copy predicate state
                if let Some(s) = src {
                    if let Some(pi) = preds[*s as usize] {
                        preds[*dst as usize] = Some(pi);
                    }
                }
            }
            DOp::LdParam { dst, pslot } => {
                let v = match self.args.get(*pslot as usize) {
                    Some(a) => Val::cnst(*a as i128),
                    None => {
                        return Err(ExecError::UnknownParam {
                            name: self.program.param_names[*pslot as usize].clone(),
                        })
                    }
                };
                set!(*dst, v);
            }
            DOp::ParamErr { name } => {
                return Err(ExecError::UnknownParam {
                    name: name.to_string(),
                });
            }
            DOp::Bin { op, t, dst, a, b } => {
                let va = self.dval(regs, *a);
                let vb = self.dval(regs, *b);
                let v = bin_val(*op, *t, va, vb, self.ntid as i128, self.nctaid as i128);
                set!(*dst, v);
            }
            DOp::Un { op, dst, a } => {
                let va = self.dval(regs, *a);
                set!(*dst, un_val(*op, va));
            }
            DOp::Mad { t, dst, a, b, c } => {
                let va = self.dval(regs, *a);
                let vb = self.dval(regs, *b);
                let vc = self.dval(regs, *c);
                let prod = bin_val(
                    BinOp::Mul,
                    *t,
                    va,
                    vb,
                    self.ntid as i128,
                    self.nctaid as i128,
                );
                let v = bin_val(
                    BinOp::Add,
                    *t,
                    prod,
                    vc,
                    self.ntid as i128,
                    self.nctaid as i128,
                );
                set!(*dst, v);
            }
            DOp::Cvt { to, from, dst, src } => {
                let v = self.dval(regs, *src);
                set!(*dst, cvt_val(*to, *from, v));
            }
            DOp::Setp { cmp, t, dst, a, b } => {
                let va = self.dval(regs, *a);
                let vb = self.dval(regs, *b);
                preds[*dst as usize] = Some(setp_val(*cmp, *t, va, vb, cta, tid));
            }
            DOp::Selp { dst, a, b, p } => {
                let truth = preds[*p as usize].and_then(|pi| pi.truth);
                let v = match truth {
                    Some(true) => self.dval(regs, *a),
                    Some(false) => self.dval(regs, *b),
                    None => Val::Unknown,
                };
                set!(*dst, v);
            }
            DOp::Bra { .. } | DOp::Nop | DOp::Ret => {}
        }
        Ok(())
    }
}

/// Classify an affine predicate difference `ct*ctaid + td*tid + b` into
/// grid split points. Shared verbatim by the interpreter and the poly
/// tier's evaluator so both harvest bit-identical breakpoints.
pub(crate) fn harvest_breaks_into(
    ct: i128,
    td: i128,
    b: i128,
    ntid: i128,
    pc: usize,
    out: &mut Vec<Break>,
) -> Result<(), ExecError> {
    if ct == 0 && td == 0 {
        return Ok(()); // constant predicate
    }
    if ct == td * ntid && td != 0 {
        // affine in tau = ctaid*ntid + tid with slope td
        for r in roots(td, b) {
            out.push(Break::Tau(r));
        }
        Ok(())
    } else if ct == 0 {
        for r in roots(td, b) {
            out.push(Break::Tid(r));
        }
        Ok(())
    } else if td == 0 {
        for r in roots(ct, b) {
            out.push(Break::Block(r));
        }
        Ok(())
    } else {
        Err(ExecError::MixedSlopePredicate { pc })
    }
}

/// Split points of `sign(s*i + b)` over integer `i`: the smallest `i` values
/// around the real root, so interval splitting at these points yields
/// constant truth on each side.
fn roots(s: i128, b: i128) -> Vec<i128> {
    debug_assert!(s != 0);
    // real root at -b/s; floor and the next integer bracket every flip
    let q = -b / s;
    // adjust for negative division toward -inf
    let fl = if (-b) % s != 0 && ((-b < 0) != (s < 0)) {
        q - 1
    } else {
        q
    };
    vec![fl, fl + 1]
}

/// u32 wrap helper for concrete comparisons.
pub(crate) fn wrap_for(t: Type, v: i128) -> i128 {
    match t {
        Type::U32 | Type::B32 => (v as u64 & 0xFFFF_FFFF) as i128,
        Type::U64 => (v as u128 & 0xFFFF_FFFF_FFFF_FFFF) as i128,
        _ => v,
    }
}

fn setp_val(cmp: CmpOp, t: Type, a: Val, b: Val, cta: i128, tid: i128) -> PredInfo {
    match (a, b) {
        (Val::F32(x), Val::F32(y)) => PredInfo {
            truth: Some(cmp.eval_f(x, y)),
            lin: None,
        },
        (Val::Lin { .. }, Val::Lin { .. }) => {
            let (
                Val::Lin {
                    ct: c1,
                    td: t1,
                    b: b1,
                },
                Val::Lin {
                    ct: c2,
                    td: t2,
                    b: b2,
                },
            ) = (a, b)
            else {
                unreachable!()
            };
            let d = Val::Lin {
                ct: c1 - c2,
                td: t1 - t2,
                b: b1 - b2,
            };
            let (Some(va), Some(vb)) = (a.eval(cta, tid), b.eval(cta, tid)) else {
                unreachable!()
            };
            // concrete truth with type-aware wrap; affine guards are
            // non-negative by construction so wrap only matters for the
            // constant-vs-constant case (borders), which carries no slope.
            let truth = if d.as_const().is_some() {
                cmp.eval_i(wrap_for(t, va), wrap_for(t, vb))
            } else {
                cmp.eval_i(va, vb)
            };
            PredInfo {
                truth: Some(truth),
                lin: Some((cmp, d)),
            }
        }
        _ => PredInfo {
            truth: None,
            lin: None,
        },
    }
}

fn lin_add(a: Val, b: Val) -> Val {
    match (a, b) {
        (
            Val::Lin {
                ct: c1,
                td: t1,
                b: b1,
            },
            Val::Lin {
                ct: c2,
                td: t2,
                b: b2,
            },
        ) => Val::Lin {
            ct: c1 + c2,
            td: t1 + t2,
            b: b1 + b2,
        },
        _ => Val::Unknown,
    }
}

fn lin_scale(a: Val, k: i128) -> Val {
    match a {
        Val::Lin { ct, td, b } => Val::Lin {
            ct: ct * k,
            td: td * k,
            b: b * k,
        },
        _ => Val::Unknown,
    }
}

/// Value range of an affine form given `ctaid < nctaid`, `tid < ntid`.
fn lin_range(v: Val, ntid: i128, nctaid: i128) -> Option<(i128, i128)> {
    let Val::Lin { ct, td, b } = v else {
        return None;
    };
    let (cl, ch) = if ct >= 0 {
        (0, ct * (nctaid - 1))
    } else {
        (ct * (nctaid - 1), 0)
    };
    let (tl, th) = if td >= 0 {
        (0, td * (ntid - 1))
    } else {
        (td * (ntid - 1), 0)
    };
    Some((cl + tl + b, ch + th + b))
}

fn bin_val(op: BinOp, t: Type, a: Val, b: Val, ntid: i128, nctaid: i128) -> Val {
    use BinOp::*;
    // float arithmetic
    if t.is_float() {
        return match (op, a, b) {
            (Add, Val::F32(x), Val::F32(y)) => Val::F32(x + y),
            (Sub, Val::F32(x), Val::F32(y)) => Val::F32(x - y),
            (Mul, Val::F32(x), Val::F32(y)) => Val::F32(x * y),
            (Div, Val::F32(x), Val::F32(y)) => Val::F32(x / y),
            (Min, Val::F32(x), Val::F32(y)) => Val::F32(x.min(y)),
            (Max, Val::F32(x), Val::F32(y)) => Val::F32(x.max(y)),
            _ => Val::Unknown,
        };
    }
    match op {
        Add => lin_add(a, b),
        Sub => lin_add(a, lin_scale(b, -1)),
        Mul | MulWide => match (a.as_const(), b.as_const()) {
            (Some(ka), _) => lin_scale(b, ka),
            (_, Some(kb)) => lin_scale(a, kb),
            _ => Val::Unknown,
        },
        Div => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if y != 0 => Val::cnst(x.div_euclid(y)),
            _ => Val::Unknown,
        },
        Rem => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if y != 0 => Val::cnst(x.rem_euclid(y)),
            _ => Val::Unknown,
        },
        Min => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Val::cnst(x.min(y)),
            _ => Val::Unknown,
        },
        Max => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Val::cnst(x.max(y)),
            _ => Val::Unknown,
        },
        Shl => match b.as_const() {
            Some(k) if (0..63).contains(&k) => lin_scale(a, 1i128 << k),
            _ => Val::Unknown,
        },
        Shr => match (a.as_const(), b.as_const()) {
            (Some(x), Some(k)) if (0..63).contains(&k) => Val::cnst(x >> k),
            _ => Val::Unknown,
        },
        And => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Val::cnst(x & y),
            _ => Val::Unknown,
        },
        Or => {
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => Val::cnst(x | y),
                _ => {
                    // disjoint-range OR folds to ADD (the Fig. 2 gid idiom):
                    // one side a multiple of 2^k, the other within [0, 2^k)
                    let ra = lin_range(a, ntid, nctaid);
                    let rb = lin_range(b, ntid, nctaid);
                    match (ra, rb) {
                        (Some((al, ah)), Some((bl, bh))) if al >= 0 && bl >= 0 => {
                            if disjoint_or(a, (al, ah), b, (bl, bh)) {
                                lin_add(a, b)
                            } else {
                                Val::Unknown
                            }
                        }
                        _ => Val::Unknown,
                    }
                }
            }
        }
        Xor => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => Val::cnst(x ^ y),
            _ => Val::Unknown,
        },
    }
}

/// Is `a | b == a + b` provable? True when one side's every value is a
/// multiple of `2^k` and the other side stays below `2^k`.
fn disjoint_or(a: Val, ra: (i128, i128), b: Val, rb: (i128, i128)) -> bool {
    fn alignment(v: Val) -> i128 {
        // gcd-of-coefficients power-of-two alignment
        if let Val::Lin { ct, td, b } = v {
            let g = gcd(gcd(ct.unsigned_abs(), td.unsigned_abs()), b.unsigned_abs());
            let g = g as i128;
            if g == 0 {
                i128::MAX
            } else {
                g & g.wrapping_neg() // largest power-of-two divisor
            }
        } else {
            1
        }
    }
    let (_, ah) = ra;
    let (_, bh) = rb;
    alignment(a) > bh || alignment(b) > ah
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn un_val(op: UnOp, a: Val) -> Val {
    match (op, a) {
        (UnOp::Neg, v @ Val::Lin { .. }) => lin_scale(v, -1),
        (UnOp::Neg, Val::F32(x)) => Val::F32(-x),
        (UnOp::Abs, Val::F32(x)) => Val::F32(x.abs()),
        (UnOp::Sqrt, Val::F32(x)) => Val::F32(x.sqrt()),
        (UnOp::Rcp, Val::F32(x)) => Val::F32(1.0 / x),
        (UnOp::Ex2, Val::F32(x)) => Val::F32(x.exp2()),
        (UnOp::Lg2, Val::F32(x)) => Val::F32(x.log2()),
        (UnOp::Not, v) => match v.as_const() {
            Some(x) => Val::cnst(!x),
            None => Val::Unknown,
        },
        _ => Val::Unknown,
    }
}

fn cvt_val(to: Type, from: Type, v: Val) -> Val {
    match (to, from) {
        // widening/narrowing integer conversions preserve affine forms
        (Type::U64, Type::U32) | (Type::U32, Type::U64) | (Type::S32, Type::U32) => v,
        // bit reinterpretation
        (Type::F32, Type::B32) => match v.as_const() {
            Some(x) => Val::F32(f32::from_bits(x as u32)),
            None => Val::Unknown,
        },
        (Type::F32, Type::U32) | (Type::F32, Type::S32) => match v.as_const() {
            Some(x) => Val::F32(x as f32),
            None => Val::Unknown,
        },
        (Type::U32, Type::F32) | (Type::S32, Type::F32) => match v {
            Val::F32(x) => Val::cnst(x as i128),
            _ => Val::Unknown,
        },
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;

    /// Fig. 2-style kernel: guard `gid < n`, then a body instruction.
    fn guard_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("k", 256);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(1.0));
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    #[test]
    fn guard_thread_below_bound_runs_body() {
        let k = guard_kernel();
        let m = Machine::new(&k, 4, &[700]);
        let lo = m.run(0, 0).unwrap();
        let hi = m.run(3, 255).unwrap(); // gid 1023 >= 700: skips body
        assert_eq!(lo.count, hi.count + 1, "body is a single mov");
    }

    #[test]
    fn guard_reports_tau_breakpoint() {
        let k = guard_kernel();
        let m = Machine::new(&k, 4, &[700]);
        let o = m.run(0, 0).unwrap();
        assert!(
            o.breaks
                .iter()
                .any(|b| matches!(b, Break::Tau(v) if (699..=701).contains(v))),
            "expected a tau break near 700, got {:?}",
            o.breaks
        );
    }

    #[test]
    fn counted_loop_executes_n_times() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        kb.counted_loop(n, |kb, _| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.ret();
        let k = kb.finish();
        let count_for = |trip: u64| Machine::new(&k, 1, &[trip]).run(0, 0).unwrap().count;
        // body is 4 instructions per iteration (mov, add, setp, bra)
        assert_eq!(count_for(10) - count_for(9), 4);
        assert_eq!(count_for(100) - count_for(99), 4);
        // zero-trip loop works (pre-check)
        assert!(count_for(0) < count_for(1));
    }

    #[test]
    fn strided_loop_breaks_on_tid() {
        // for (i = tid; i < n; i += 32): threads with tid < n%32 do one more
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let tid = kb.special(SpecialReg::TidX);
        let i = kb.r();
        kb.mov(Type::U32, i, tid);
        let p0 = kb.p();
        kb.setp(CmpOp::Ge, Type::U32, p0, i, n);
        let done = kb.label();
        kb.bra_if(p0, false, done);
        let head = kb.label();
        kb.place_label(head);
        kb.bin(BinOp::Add, Type::U32, i, i, Operand::ImmI(32));
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, p, i, n);
        kb.bra_if(p, false, head);
        kb.place_label(done);
        kb.ret();
        let k = kb.finish();
        let m = Machine::new(&k, 1, &[70]); // 70 = 2*32 + 6
        let t0 = m.run(0, 0).unwrap(); // 3 iterations
        let t6 = m.run(0, 6).unwrap(); // 2 iterations
        assert!(t0.count > t6.count);
        assert!(
            t0.breaks.iter().any(|b| matches!(b, Break::Tid(_))),
            "expected tid breaks, got {:?}",
            t0.breaks
        );
    }

    #[test]
    fn data_dependent_branch_is_an_error() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_x = kb.param("x", Type::U64);
        let x = kb.ld_param(&p_x, Type::U64);
        let f = kb.f();
        kb.ld(Space::Global, Type::F32, f, ptx::inst::Address::reg(x));
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::F32, p, f, Operand::ImmF(0.0));
        let l = kb.label();
        kb.bra_if(p, false, l);
        kb.place_label(l);
        kb.ret();
        let k = kb.finish();
        let m = Machine::new(&k, 1, &[0x1000]);
        assert!(matches!(
            m.run(0, 0),
            Err(ExecError::DataDependentBranch { .. })
        ));
    }

    #[test]
    fn fig2_or_idiom_resolves_gid() {
        // gid = (ctaid << 8) | tid with ntid=256 must behave as addition
        let k = guard_kernel();
        let m = Machine::new(&k, 8, &[2048]);
        // thread (4, 17): gid = 1041 < 2048 -> body runs
        let a = m.run(4, 17).unwrap();
        // thread (7, 255): gid = 2047 < 2048 -> body runs
        let b = m.run(7, 255).unwrap();
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn selp_with_unknown_pred_is_opaque_but_counted() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_x = kb.param("x", Type::U64);
        let x = kb.ld_param(&p_x, Type::U64);
        let f = kb.f();
        kb.ld(Space::Global, Type::F32, f, ptx::inst::Address::reg(x));
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::F32, p, f, Operand::ImmF(0.0));
        let g = kb.f();
        kb.selp(Type::F32, g, f, Operand::ImmF(0.0), p);
        kb.ret();
        let k = kb.finish();
        let m = Machine::new(&k, 1, &[0x1000]);
        let o = m.run(0, 0).unwrap();
        assert_eq!(o.count, 5);
    }

    #[test]
    fn step_limit_catches_runaway() {
        // while(true) loop
        let mut kb = KernelBuilder::new("k", 32);
        let head = kb.label();
        kb.place_label(head);
        let r = kb.r();
        kb.mov(Type::U32, r, Operand::ImmI(1));
        kb.bra_uni(head);
        let k = kb.finish();
        let mut m = Machine::new(&k, 1, &[]);
        m.set_max_steps(1000);
        assert!(matches!(m.run(0, 0), Err(ExecError::StepLimit { .. })));
    }

    #[test]
    fn step_limit_error_names_the_kernel() {
        let mut kb = KernelBuilder::new("runaway_kernel", 32);
        let head = kb.label();
        kb.place_label(head);
        let r = kb.r();
        kb.mov(Type::U32, r, Operand::ImmI(1));
        kb.bra_uni(head);
        let k = kb.finish();
        let m = Machine::new(&k, 1, &[]).with_budget(ExecBudget::default().with_max_steps(500));
        match m.run(0, 0) {
            Err(ExecError::StepLimit { limit, kernel }) => {
                assert_eq!(limit, 500);
                assert_eq!(kernel, "runaway_kernel");
            }
            other => panic!("expected StepLimit, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_token_aborts_execution() {
        let mut kb = KernelBuilder::new("spin", 32);
        let head = kb.label();
        kb.place_label(head);
        let r = kb.r();
        kb.mov(Type::U32, r, Operand::ImmI(1));
        kb.bra_uni(head);
        let k = kb.finish();
        let token = Arc::new(AtomicBool::new(true)); // pre-cancelled
        let m = Machine::new(&k, 1, &[]).with_budget(ExecBudget::default().with_cancel(token));
        assert!(matches!(
            m.run(0, 0),
            Err(ExecError::Cancelled { kernel, step: 0 }) if kernel == "spin"
        ));
    }

    #[test]
    fn cancellation_observed_within_documented_interval() {
        // cancel mid-flight: trip the token from another thread and check
        // the reported step is a multiple of the documented interval
        let mut kb = KernelBuilder::new("spin2", 32);
        let head = kb.label();
        kb.place_label(head);
        let r = kb.r();
        kb.mov(Type::U32, r, Operand::ImmI(1));
        kb.bra_uni(head);
        let k = kb.finish();
        let token = Arc::new(AtomicBool::new(false));
        let m = Machine::new(&k, 1, &[])
            .with_budget(ExecBudget::default().with_cancel(Arc::clone(&token)));
        let t = {
            let token = Arc::clone(&token);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.store(true, Ordering::Relaxed);
            })
        };
        match m.run(0, 0) {
            Err(ExecError::Cancelled { kernel, step }) => {
                assert_eq!(kernel, "spin2");
                assert_eq!(step % CANCEL_CHECK_INTERVAL, 0, "step {step} off-interval");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn untripped_token_does_not_disturb_execution() {
        let k = guard_kernel();
        let token = Arc::new(AtomicBool::new(false));
        let budgeted =
            Machine::new(&k, 4, &[700]).with_budget(ExecBudget::default().with_cancel(token));
        let plain = Machine::new(&k, 4, &[700]);
        assert_eq!(
            budgeted.run(0, 0).unwrap().count,
            plain.run(0, 0).unwrap().count
        );
    }

    #[test]
    fn category_accounting_sums_to_count() {
        let k = guard_kernel();
        let m = Machine::new(&k, 4, &[700]);
        let o = m.run(0, 0).unwrap();
        assert_eq!(o.by_cat.iter().sum::<u64>(), o.count);
    }

    #[test]
    fn shared_program_matches_fresh_decode() {
        // one decode shared by two launches must behave like two decodes
        let k = guard_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        for (nctaid, n) in [(4u64, 700u64), (8, 1024), (2, 100)] {
            let shared = Machine::from_program(Arc::clone(&prog), nctaid, &[n]);
            let fresh = Machine::new(&k, nctaid, &[n]);
            let a = shared.run(0, 0).unwrap();
            let b = fresh.run(0, 0).unwrap();
            assert_eq!(a.count, b.count);
            assert_eq!(a.by_cat, b.by_cat);
            assert_eq!(a.breaks, b.breaks);
        }
    }

    #[test]
    fn missing_argument_is_unknown_param_with_name() {
        // a kernel whose param list is known but whose launch forgot args
        let k = guard_kernel();
        let m = Machine::new(&k, 4, &[]);
        match m.run(0, 0) {
            Err(ExecError::UnknownParam { name }) => assert_eq!(name, k.params[0].name),
            other => panic!("expected UnknownParam, got {other:?}"),
        }
    }

    #[test]
    fn decode_is_launch_independent() {
        let k = guard_kernel();
        let prog = DenseProgram::decode(&k);
        assert_eq!(prog.len(), k.num_instructions());
        assert_eq!(prog.ntid(), 256);
        assert_eq!(prog.kernel_name(), "k");
    }
}
