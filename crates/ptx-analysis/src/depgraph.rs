//! The paper's data-dependency graph `G = {V, E}` (Section IV-A): one node
//! per PTX instruction, one edge per def-use data dependency.
//!
//! The graph is built with a reaching-definitions pass over the kernel body.
//! Because kernels contain loops, a use may be reached by definitions that
//! appear *later* in program order (loop-carried dependencies); the builder
//! handles this with a two-pass fixpoint over the label-resolved control
//! flow.

use crate::cfg::Cfg;
use ptx::inst::BodyElem;
use ptx::kernel::Kernel;
use ptx::types::Reg;
use std::collections::{HashMap, HashSet};

/// Dense register numbering for the reaching-definitions pass: every
/// register mentioned by the kernel gets a contiguous slot (first-appearance
/// order), so per-block reach sets become flat `Vec`s indexed by slot
/// instead of `HashMap<Reg, _>` probes in the fixpoint loop.
struct RegSlots {
    map: HashMap<Reg, usize>,
}

impl RegSlots {
    fn build(instrs: &[ptx::inst::Instruction]) -> Self {
        let mut map = HashMap::new();
        for i in instrs {
            for r in i.srcs().into_iter().chain(i.dst()) {
                let next = map.len();
                map.entry(r).or_insert(next);
            }
        }
        Self { map }
    }

    fn get(&self, r: Reg) -> Option<usize> {
        self.map.get(&r).copied()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Data-dependency graph over the instructions of one kernel.
#[derive(Debug)]
pub struct DepGraph {
    /// `edges[i]` = instruction indices whose values instruction `i` reads.
    pub edges: Vec<Vec<usize>>,
    /// Instruction index (into [`Self::instrs`]) of every body element that
    /// is an instruction.
    pub instrs: Vec<ptx::inst::Instruction>,
}

impl DepGraph {
    /// Build the dependency graph of `kernel`.
    pub fn build(kernel: &Kernel) -> Self {
        let instrs: Vec<_> = kernel
            .body
            .iter()
            .filter_map(|e| match e {
                BodyElem::Inst(i) => Some(i.clone()),
                BodyElem::Label(_) => None,
            })
            .collect();
        let cfg = Cfg::build(kernel);
        let slots = RegSlots::build(&instrs);

        // per-block gen sets (last def of each reg in the block) and the
        // set of (slot -> defs) reaching each block entry, iterated to
        // fixpoint over flat slot-indexed vectors
        let nblocks = cfg.blocks.len();
        let empty: Vec<HashSet<usize>> = vec![HashSet::new(); slots.len()];
        let mut reach_in: Vec<Vec<HashSet<usize>>> = vec![empty.clone(); nblocks];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nblocks {
                // in = union of predecessors' out
                let mut inset = empty.clone();
                for &p in &cfg.preds[b] {
                    let out = block_out(&cfg, p, &reach_in[p], &instrs, &slots);
                    for (slot, defs) in out.into_iter().enumerate() {
                        inset[slot].extend(defs);
                    }
                }
                if inset != reach_in[b] {
                    reach_in[b] = inset;
                    changed = true;
                }
            }
        }

        // second pass: record edges
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];
        for (reach, block) in reach_in.iter().zip(&cfg.blocks) {
            let mut live: Vec<HashSet<usize>> = reach.clone();
            for &i in block {
                for src in instrs[i].srcs() {
                    if let Some(slot) = slots.get(src) {
                        for &d in &live[slot] {
                            if !edges[i].contains(&d) {
                                edges[i].push(d);
                            }
                        }
                    }
                }
                if let Some(d) = instrs[i].dst() {
                    if let Some(slot) = slots.get(d) {
                        live[slot] = HashSet::from([i]);
                    }
                }
            }
        }
        for e in &mut edges {
            e.sort_unstable();
        }
        DepGraph { edges, instrs }
    }

    /// Number of nodes (instructions).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// Backward transitive closure from `seeds` (instruction indices):
    /// the paper's slice subgraph `G_v*`.
    pub fn backward_closure(&self, seeds: &[usize]) -> HashSet<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = seeds.to_vec();
        while let Some(i) = stack.pop() {
            if seen.insert(i) {
                for &d in &self.edges[i] {
                    if !seen.contains(&d) {
                        stack.push(d);
                    }
                }
            }
        }
        seen
    }
}

/// Compute the reaching-definitions out-set of block `b` given its in-set
/// (both flat slot-indexed vectors).
fn block_out(
    cfg: &Cfg,
    b: usize,
    inset: &[HashSet<usize>],
    instrs: &[ptx::inst::Instruction],
    slots: &RegSlots,
) -> Vec<HashSet<usize>> {
    let mut out = inset.to_vec();
    for &i in &cfg.blocks[b] {
        if let Some(d) = instrs[i].dst() {
            if let Some(slot) = slots.get(d) {
                out[slot] = HashSet::from([i]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::{BinOp, Type};

    #[test]
    fn straight_line_deps() {
        let mut kb = KernelBuilder::new("k", 32);
        let a = kb.r();
        kb.mov(Type::U32, a, Operand::ImmI(1)); // 0
        let b = kb.bin_r(BinOp::Add, Type::U32, a, Operand::ImmI(2)); // 1
        let _c = kb.bin_r(BinOp::Mul, Type::U32, b, a); // 2
        kb.ret(); // 3
        let g = DepGraph::build(&kb.finish());
        assert_eq!(g.edges[1], vec![0]);
        assert_eq!(g.edges[2], vec![0, 1]);
        assert!(g.edges[3].is_empty());
    }

    #[test]
    fn loop_carried_dependency() {
        // i = 0; L: i = i + 1; if (i < n) goto L
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32); // 0
        let i = kb.r();
        kb.mov(Type::U32, i, Operand::ImmI(0)); // 1
        let head = kb.label();
        kb.place_label(head);
        kb.bin(BinOp::Add, Type::U32, i, i, Operand::ImmI(1)); // 2
        let p = kb.p();
        kb.setp(ptx::types::CmpOp::Lt, Type::U32, p, i, n); // 3
        kb.bra_if(p, false, head); // 4
        kb.ret(); // 5
        let g = DepGraph::build(&kb.finish());
        // the add reads i defined by mov (1) AND by itself (2) around the loop
        assert!(g.edges[2].contains(&1));
        assert!(
            g.edges[2].contains(&2),
            "loop-carried edge missing: {:?}",
            g.edges[2]
        );
        // setp depends on the add and the param load
        assert!(g.edges[3].contains(&2));
        assert!(g.edges[3].contains(&0));
        // the branch depends on the predicate
        assert!(g.edges[4].contains(&3));
    }

    #[test]
    fn backward_closure_is_the_slice() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32); // 0: in slice
        let x = kb.f(); // payload value, not in slice
        kb.mov(Type::F32, x, Operand::ImmF(1.0)); // 1
        let y = kb.bin_r(BinOp::Mul, Type::F32, x, x); // 2
        let _ = y;
        let p = kb.p();
        kb.setp(ptx::types::CmpOp::Lt, Type::U32, p, n, Operand::ImmI(5)); // 3
        let l = kb.label();
        kb.bra_if(p, false, l); // 4
        kb.place_label(l);
        kb.ret(); // 5
        let g = DepGraph::build(&kb.finish());
        let slice = g.backward_closure(&[4]);
        assert!(slice.contains(&0));
        assert!(slice.contains(&3));
        assert!(slice.contains(&4));
        assert!(!slice.contains(&1), "payload leaked into slice");
        assert!(!slice.contains(&2));
    }

    #[test]
    fn gemm_slice_excludes_fma_payload() {
        let k = ptx_codegen_kernels::gemm();
        let g = DepGraph::build(&k);
        let branches: Vec<usize> = g
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_terminator())
            .map(|(idx, _)| idx)
            .collect();
        let slice = g.backward_closure(&branches);
        // the slice must be a strict subset: fma payloads are excluded
        assert!(slice.len() < g.len());
        let fmas: Vec<usize> = g
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.category() == ptx::inst::Category::FloatFma)
            .map(|(idx, _)| idx)
            .collect();
        for f in fmas {
            assert!(!slice.contains(&f), "fma {f} should not be in the slice");
        }
    }

    /// Access the codegen templates without a circular dev-dependency fuss.
    mod ptx_codegen_kernels {
        pub fn gemm() -> ptx::kernel::Kernel {
            ptx_codegen::Template::GemmTiled.build()
        }
    }
}
