//! Control-flow graph over a kernel body, derived from the data
//! dependencies and branch structure (paper Section IV-A: "based on these
//! data dependencies, a control flow is generated").

use ptx::inst::{BodyElem, LabelId, Op};
use ptx::kernel::Kernel;
use std::collections::HashMap;

/// Basic blocks and edges of one kernel. Instruction indices refer to the
/// label-free instruction sequence (labels removed, order preserved).
#[derive(Debug)]
pub struct Cfg {
    /// Instruction indices of each block, in order.
    pub blocks: Vec<Vec<usize>>,
    /// Successor block ids.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block ids.
    pub preds: Vec<Vec<usize>>,
    /// Block containing each instruction.
    pub block_of: Vec<usize>,
    /// Instruction index each label resolves to.
    pub label_target: HashMap<LabelId, usize>,
}

impl Cfg {
    pub fn build(kernel: &Kernel) -> Self {
        // map labels to the index of the next instruction
        let mut label_target: HashMap<LabelId, usize> = HashMap::new();
        let mut idx = 0usize;
        for e in &kernel.body {
            match e {
                BodyElem::Label(l) => {
                    label_target.insert(*l, idx);
                }
                BodyElem::Inst(_) => idx += 1,
            }
        }
        let n = idx;
        let instrs: Vec<_> = kernel.instructions().collect();

        // block leaders: entry, branch targets, instruction after a
        // terminator or conditional branch
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        for (i, inst) in instrs.iter().enumerate() {
            match &inst.op {
                Op::Bra { target, .. } => {
                    if let Some(&t) = label_target.get(target) {
                        if t < n {
                            leader[t] = true;
                        }
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Op::Ret if i + 1 < n => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }

        // form blocks
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        let mut block_of = vec![0usize; n];
        for i in 0..n {
            if leader[i] {
                blocks.push(Vec::new());
            }
            let b = blocks.len() - 1;
            blocks.last_mut().expect("entry leader").push(i);
            block_of[i] = b;
        }

        // edges
        let nb = blocks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let add_edge =
            |succs: &mut Vec<Vec<usize>>, preds: &mut Vec<Vec<usize>>, a: usize, b: usize| {
                if !succs[a].contains(&b) {
                    succs[a].push(b);
                    preds[b].push(a);
                }
            };
        for (b, blk) in blocks.iter().enumerate() {
            let last = *blk.last().expect("non-empty block");
            match &instrs[last].op {
                Op::Bra { target, .. } => {
                    if let Some(&t) = label_target.get(target) {
                        if t < n {
                            add_edge(&mut succs, &mut preds, b, block_of[t]);
                        }
                    }
                    // conditional (guarded) branches fall through too
                    if instrs[last].guard.is_some() && last + 1 < n {
                        add_edge(&mut succs, &mut preds, b, block_of[last + 1]);
                    }
                }
                Op::Ret => {}
                _ => {
                    if last + 1 < n {
                        add_edge(&mut succs, &mut preds, b, block_of[last + 1]);
                    }
                }
            }
        }

        Cfg {
            blocks,
            succs,
            preds,
            block_of,
            label_target,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::{CmpOp, Type};

    #[test]
    fn straight_line_is_one_block() {
        let mut kb = KernelBuilder::new("k", 32);
        let r = kb.r();
        kb.mov(Type::U32, r, Operand::ImmI(1));
        kb.mov(Type::U32, r, Operand::ImmI(2));
        kb.ret();
        let cfg = Cfg::build(&kb.finish());
        assert_eq!(cfg.num_blocks(), 1);
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn guard_pattern_has_diamond_shape() {
        // guard_gid produces: header (setp + @p bra exit) -> body -> exit
        let mut kb = KernelBuilder::new("k", 256);
        let (_gid, exit) = kb.guard_gid(Operand::ImmI(100));
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(0.0));
        kb.place_label(exit);
        kb.ret();
        let cfg = Cfg::build(&kb.finish());
        assert_eq!(cfg.num_blocks(), 3);
        // header has two successors: body and exit
        assert_eq!(cfg.succs[0].len(), 2);
        // exit block has two predecessors
        assert_eq!(cfg.preds[2].len(), 2);
    }

    #[test]
    fn loop_has_back_edge() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        kb.counted_loop(n, |kb, _i| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.ret();
        let cfg = Cfg::build(&kb.finish());
        // some block must have a successor with a smaller id (back edge)
        let back = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(b, ss)| ss.iter().any(|&s| s <= b));
        assert!(back, "no back edge found: {:?}", cfg.succs);
    }

    #[test]
    fn every_instruction_is_in_exactly_one_block() {
        let mut kb = KernelBuilder::new("k", 256);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        kb.counted_loop(n, |kb, _| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.place_label(exit);
        kb.ret();
        let k = kb.finish();
        let cfg = Cfg::build(&k);
        let total: usize = cfg.blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, k.num_instructions());
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for &i in blk {
                assert_eq!(cfg.block_of[i], b);
            }
        }
    }

    #[test]
    fn setp_feeding_guard_is_resolvable() {
        let mut kb = KernelBuilder::new("k", 256);
        let p = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, p, Operand::ImmI(1), Operand::ImmI(2));
        let l = kb.label();
        kb.bra_if(p, false, l);
        kb.place_label(l);
        kb.ret();
        let cfg = Cfg::build(&kb.finish());
        assert_eq!(cfg.num_blocks(), 2);
    }
}
