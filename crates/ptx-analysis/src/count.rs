//! Exact executed-instruction counting for kernel launches.
//!
//! The counting layer runs a per-thread evaluator on *representative
//! threads* only. The grid is recursively split into rectangles
//! `(block range) x (tid range)` at the breakpoints reported by affine
//! branch predicates; within a final rectangle every thread takes the same
//! control-flow path, so one representative's count multiplies by the
//! rectangle's area. Typical CNN kernels need fewer than ten representative
//! executions per launch regardless of grid size.
//!
//! Two evaluators share the identical splitting driver:
//!
//! * the [`crate::exec::Machine`] interpreter (O(steps) per representative),
//! * the [`crate::poly`] compiled trip-count polynomials (O(1) per
//!   representative), proven bit-identical and used whenever a kernel
//!   compiles (see [`CountMode`]).

use crate::exec::{Break, DenseProgram, ExecBudget, ExecError, Machine, ThreadOutcome, NCAT};
use crate::poly::{compile_kernel, KernelPoly, PolyBail};
use crate::slice::branch_slice;
use ptx::kernel::{Kernel, KernelLaunch, LaunchPlan};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Warp width of every modeled GPU.
pub const WARP: u32 = 32;

/// Launches counted to completion.
static COUNT_LAUNCHES: obs::LazyCounter = obs::LazyCounter::new("ptx.count.launches");
/// Representative-thread executions spent across counted launches.
static COUNT_REPS: obs::LazyCounter = obs::LazyCounter::new("ptx.count.representatives");
/// Uniform grid rectangles the counted launches decomposed into.
static COUNT_PIECES: obs::LazyCounter = obs::LazyCounter::new("ptx.count.pieces");
/// Representative threads evaluated through a compiled polynomial.
static POLY_EVALS: obs::LazyCounter = obs::LazyCounter::new("ptx.poly.evals");
/// Launches that started on the poly tier but re-ran on the interpreter
/// (evaluation-time range/overflow refusals; compile-time refusals are
/// `ptx.poly.fallbacks`).
static POLY_EVAL_FALLBACKS: obs::LazyCounter = obs::LazyCounter::new("ptx.poly.eval_fallbacks");

/// How `count_launch`/`count_plan` evaluate representative threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountMode {
    /// Compile to trip-count polynomials; fall back to the interpreter
    /// per kernel (compile refusal) or per launch (evaluation refusal).
    Auto,
    /// Polynomials only: a refusal becomes `ExecError::Unlaunchable`
    /// with a `poly:`-prefixed reason (test/diagnostic mode).
    Poly,
    /// Dense interpreter only (the pre-poly behavior).
    Interp,
    /// Execute every thread (validation reference; exponentially slower).
    Bruteforce,
}

impl CountMode {
    fn as_u8(self) -> u8 {
        match self {
            CountMode::Auto => 0,
            CountMode::Poly => 1,
            CountMode::Interp => 2,
            CountMode::Bruteforce => 3,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => CountMode::Poly,
            2 => CountMode::Interp,
            3 => CountMode::Bruteforce,
            _ => CountMode::Auto,
        }
    }
}

impl std::str::FromStr for CountMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(CountMode::Auto),
            "poly" => Ok(CountMode::Poly),
            "interp" => Ok(CountMode::Interp),
            "bruteforce" => Ok(CountMode::Bruteforce),
            other => Err(format!(
                "unknown count mode '{other}' (expected auto|poly|interp|bruteforce)"
            )),
        }
    }
}

impl std::fmt::Display for CountMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CountMode::Auto => "auto",
            CountMode::Poly => "poly",
            CountMode::Interp => "interp",
            CountMode::Bruteforce => "bruteforce",
        })
    }
}

static DEFAULT_COUNT_MODE: AtomicU8 = AtomicU8::new(0); // Auto

/// Set the process-wide default [`CountMode`] used by the non-`_mode`
/// counting entry points (and therefore by every engine tier and corpus
/// build that doesn't pass a mode explicitly).
pub fn set_default_count_mode(mode: CountMode) {
    DEFAULT_COUNT_MODE.store(mode.as_u8(), Ordering::Relaxed);
}

/// The process-wide default [`CountMode`].
pub fn default_count_mode() -> CountMode {
    CountMode::from_u8(DEFAULT_COUNT_MODE.load(Ordering::Relaxed))
}

/// Exact instruction statistics for one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchCount {
    pub threads: u64,
    /// Per-thread executed instructions summed over all threads (the
    /// paper's "total number of PTX instructions" predictor).
    pub thread_instructions: u64,
    /// Warp-level issue count: per warp the maximum thread path within it
    /// (divergent warps execute the union of their threads' paths, which
    /// for guard-style divergence equals the longer path).
    pub warp_issues: u64,
    /// Thread-level instruction mix by [`ptx::inst::Category`] index.
    pub by_category: [u64; NCAT],
    /// Number of uniform rectangles the grid decomposed into.
    pub pieces: u32,
    /// Representative-thread executions performed.
    pub reps_executed: u32,
}

/// Counting statistics for a whole launch plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCount {
    pub per_launch: Vec<LaunchCount>,
    pub thread_instructions: u64,
    pub warp_issues: u64,
    pub by_category: [u64; NCAT],
}

/// How a plan was counted: which tier did the work and how often the poly
/// tier deferred. Deliberately *not* part of [`PlanCount`] — counts are
/// bit-identical across modes (the equivalence suite asserts it), so the
/// mode story rides alongside, never inside, the numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingReport {
    pub mode: CountMode,
    /// Distinct kernels the plan references.
    pub kernels: u32,
    /// Kernels that compiled to a trip-count polynomial (0 unless the
    /// mode consults the poly tier).
    pub poly_compiled: u32,
    /// Kernels the poly compiler refused (counted on the interpreter).
    pub poly_rejected: u32,
    /// Unique launches whose poly evaluation deferred to the interpreter
    /// at evaluation time (range/overflow refusals).
    pub poly_eval_fallbacks: u32,
    /// Unique `(kernel, grid, args)` signatures actually evaluated.
    pub unique_launches: u32,
}

/// One uniform rectangle of the launch grid.
#[derive(Debug, Clone)]
struct Rect {
    b0: u64,
    b1: u64, // block range [b0, b1)
    t0: u32,
    t1: u32, // tid range [t0, t1)
}

impl Rect {
    /// `None` when the thread count itself overflows `u64` (degenerate
    /// hostile launches; surfaced as [`ExecError::CountOverflow`]).
    fn area(&self) -> Option<u64> {
        (self.b1 - self.b0).checked_mul((self.t1 - self.t0) as u64)
    }
}

/// Internal evaluator error: a real execution error, or a poly-tier
/// "this launch needs the interpreter" refusal.
enum RunErr {
    Exec(ExecError),
    Unsupported(&'static str),
}

impl From<ExecError> for RunErr {
    fn from(e: ExecError) -> Self {
        RunErr::Exec(e)
    }
}

/// Count one launch exactly. `use_slice` enables slice-mode execution (the
/// paper's `G_v*` optimization; results are identical, evaluation is
/// cheaper). Uses the process-wide default [`CountMode`].
pub fn count_launch(
    kernel: &Kernel,
    launch: &KernelLaunch,
    use_slice: bool,
) -> Result<LaunchCount, ExecError> {
    count_launch_budgeted(kernel, launch, use_slice, &ExecBudget::default())
}

/// [`count_launch`] with an explicit execution budget (step fuel and
/// cooperative cancellation) applied to every representative thread.
pub fn count_launch_budgeted(
    kernel: &Kernel,
    launch: &KernelLaunch,
    use_slice: bool,
    budget: &ExecBudget,
) -> Result<LaunchCount, ExecError> {
    count_launch_mode(kernel, launch, use_slice, budget, default_count_mode())
}

/// [`count_launch_budgeted`] with an explicit [`CountMode`].
pub fn count_launch_mode(
    kernel: &Kernel,
    launch: &KernelLaunch,
    use_slice: bool,
    budget: &ExecBudget,
    mode: CountMode,
) -> Result<LaunchCount, ExecError> {
    if mode == CountMode::Bruteforce {
        return count_launch_bruteforce(kernel, launch);
    }
    let program = Arc::new(DenseProgram::decode(kernel));
    let slice = use_slice.then(|| branch_slice(kernel));
    match mode {
        CountMode::Interp => count_launch_prepared(&program, slice.as_ref(), launch, budget),
        CountMode::Auto => match compile_kernel(&program, slice.as_ref()) {
            Ok(kp) => match count_launch_poly_prepared(&kp, launch, budget) {
                Ok(lc) => Ok(lc),
                Err(PolyBail::Exec(e)) => Err(e),
                Err(PolyBail::Unsupported(_)) => {
                    POLY_EVAL_FALLBACKS.inc();
                    count_launch_prepared(&program, slice.as_ref(), launch, budget)
                }
            },
            Err(_) => count_launch_prepared(&program, slice.as_ref(), launch, budget),
        },
        CountMode::Poly => {
            let unl = |reason: &str| ExecError::Unlaunchable {
                kernel: program.kernel_name().to_string(),
                reason: format!("poly: {reason}"),
            };
            let kp = compile_kernel(&program, slice.as_ref()).map_err(&unl)?;
            count_launch_poly_prepared(&kp, launch, budget).map_err(|e| match e {
                PolyBail::Exec(e) => e,
                PolyBail::Unsupported(r) => unl(r),
            })
        }
        CountMode::Bruteforce => unreachable!("handled above"),
    }
}

/// [`count_launch_budgeted`] over an already-decoded kernel, always on
/// the dense interpreter (the counting layer's `interp` tier). The
/// grid-rectangle re-runs all execute the shared [`DenseProgram`];
/// [`count_plan_budgeted`] uses this to decode (and slice) each kernel of a
/// plan exactly once across all of its launches.
pub fn count_launch_prepared(
    program: &Arc<DenseProgram>,
    slice: Option<&HashSet<usize>>,
    launch: &KernelLaunch,
    budget: &ExecBudget,
) -> Result<LaunchCount, ExecError> {
    let nblocks = launch.blocks();
    let ntid = program.ntid();
    let mut machine = Machine::from_program(Arc::clone(program), nblocks, &launch.args)
        .with_budget(budget.clone());
    if let Some(s) = slice {
        machine = machine.with_slice(s.clone());
    }
    let run = |b: u64, t: u32| machine.run(b, t).map_err(RunErr::Exec);
    match count_launch_rects(run, program.kernel_name(), nblocks, ntid, budget) {
        Ok(lc) => Ok(lc),
        Err(RunErr::Exec(e)) => Err(e),
        Err(RunErr::Unsupported(_)) => unreachable!("interpreter never defers"),
    }
}

/// Count one launch through a compiled [`KernelPoly`], sharing the exact
/// splitting driver with the interpreter path. `Unsupported` means this
/// launch must re-run on the interpreter (counts would not be provably
/// identical); `Exec` errors carry interpreter-identical payloads.
pub fn count_launch_poly_prepared(
    kp: &KernelPoly,
    launch: &KernelLaunch,
    budget: &ExecBudget,
) -> Result<LaunchCount, PolyBail> {
    let nblocks = launch.blocks();
    let ntid = kp.ntid();
    let max_steps = budget.max_steps();
    let run = |b: u64, t: u32| {
        POLY_EVALS.inc();
        kp.eval_thread(nblocks, b, t, &launch.args, max_steps)
            .map_err(|e| match e {
                PolyBail::Exec(x) => RunErr::Exec(x),
                PolyBail::Unsupported(r) => RunErr::Unsupported(r),
            })
    };
    match count_launch_rects(run, kp.kernel_name(), nblocks, ntid, budget) {
        Ok(lc) => Ok(lc),
        Err(RunErr::Exec(e)) => Err(PolyBail::Exec(e)),
        Err(RunErr::Unsupported(r)) => Err(PolyBail::Unsupported(r)),
    }
}

/// The shared grid-splitting driver: evaluate representative threads via
/// `run`, split at reported breakpoints, and accumulate exact totals with
/// overflow-checked arithmetic.
fn count_launch_rects<F>(
    mut run: F,
    kernel_name: &str,
    nblocks: u64,
    ntid: u32,
    budget: &ExecBudget,
) -> Result<LaunchCount, RunErr>
where
    F: FnMut(u64, u32) -> Result<ThreadOutcome, RunErr>,
{
    let mut work = vec![Rect {
        b0: 0,
        b1: nblocks,
        t0: 0,
        t1: ntid,
    }];
    let mut finals: Vec<(Rect, ThreadOutcome)> = Vec::new();
    let mut reps = 0u32;
    // evaluator steps across all representative runs so far: lets a
    // cancellation report where in the whole launch count it landed
    let mut steps_done = 0u64;
    // safety valve: pathological kernels could split forever
    const MAX_PIECES: usize = 4096;

    while let Some(r) = work.pop() {
        // nested-execution cancellation bound: besides the per-run check
        // every CANCEL_CHECK_INTERVAL steps, a pending cancel is observed
        // between rectangles, so the worst-case observation latency stays
        // one interval regardless of how many representatives run
        if budget.cancelled() {
            return Err(RunErr::Exec(ExecError::Cancelled {
                kernel: kernel_name.to_string(),
                step: steps_done,
            }));
        }
        if finals.len() + work.len() > MAX_PIECES {
            return Err(RunErr::Exec(ExecError::SplitBudget {
                limit: MAX_PIECES as u64,
                kernel: kernel_name.to_string(),
            }));
        }
        let outcome = run(r.b0, r.t0).map_err(|e| match e {
            RunErr::Exec(ExecError::Cancelled { kernel, step }) => {
                RunErr::Exec(ExecError::Cancelled {
                    kernel,
                    step: steps_done + step,
                })
            }
            other => other,
        })?;
        steps_done += outcome.count;
        reps += 1;
        // find one applicable split
        let mut split: Option<(bool, u64)> = None; // (is_block_dim, at)
        'outer: for br in &outcome.breaks {
            match *br {
                Break::Tid(t) => {
                    if t > r.t0 as i128 && t < r.t1 as i128 {
                        split = Some((false, t as u64));
                        break 'outer;
                    }
                }
                Break::Block(c) => {
                    if c > r.b0 as i128 && c < r.b1 as i128 {
                        split = Some((true, c as u64));
                        break 'outer;
                    }
                }
                Break::Tau(tau) => {
                    if tau <= 0 {
                        continue;
                    }
                    let tau = tau as u64;
                    let blk = tau / ntid as u64;
                    let tid = (tau % ntid as u64) as u32;
                    // isolate the straddling block, then split its tids
                    if blk > r.b0 && blk < r.b1 {
                        split = Some((true, blk));
                        break 'outer;
                    }
                    if tid > 0 && blk + 1 > r.b0 && blk + 1 < r.b1 {
                        split = Some((true, blk + 1));
                        break 'outer;
                    }
                    if r.b1 - r.b0 == 1 && r.b0 == blk && tid > r.t0 && tid < r.t1 {
                        split = Some((false, tid as u64));
                        break 'outer;
                    }
                }
            }
        }
        match split {
            Some((true, at)) => {
                work.push(Rect {
                    b1: at,
                    ..r.clone()
                });
                work.push(Rect { b0: at, ..r });
            }
            Some((false, at)) => {
                work.push(Rect {
                    t1: at as u32,
                    ..r.clone()
                });
                work.push(Rect { t0: at as u32, ..r });
            }
            None => finals.push((r, outcome)),
        }
    }

    // accumulate thread-level totals; a hostile/degenerate launch whose
    // `area * count` wraps u64 must surface a typed error, never a small
    // wrapped count
    let overflow = || {
        RunErr::Exec(ExecError::CountOverflow {
            kernel: kernel_name.to_string(),
        })
    };
    let mut thread_instructions = 0u64;
    let mut by_category = [0u64; NCAT];
    for (r, o) in &finals {
        let area = r.area().ok_or_else(overflow)?;
        thread_instructions = area
            .checked_mul(o.count)
            .and_then(|x| thread_instructions.checked_add(x))
            .ok_or_else(overflow)?;
        for (acc, v) in by_category.iter_mut().zip(&o.by_cat) {
            *acc = area
                .checked_mul(*v)
                .and_then(|x| acc.checked_add(x))
                .ok_or_else(overflow)?;
        }
    }

    let warp_issues = warp_issue_total(&finals, nblocks, ntid).ok_or_else(overflow)?;
    let threads = nblocks.checked_mul(ntid as u64).ok_or_else(overflow)?;

    COUNT_LAUNCHES.inc();
    COUNT_REPS.add(reps as u64);
    COUNT_PIECES.add(finals.len() as u64);
    Ok(LaunchCount {
        threads,
        thread_instructions,
        warp_issues,
        by_category,
        pieces: finals.len() as u32,
        reps_executed: reps,
    })
}

/// Warp-level issue total: per warp, the maximum per-thread path length
/// among the rectangles covering it, summed over all warps of all blocks.
/// `None` on `u64` overflow (surfaced by the caller as
/// [`ExecError::CountOverflow`]).
fn warp_issue_total(finals: &[(Rect, ThreadOutcome)], nblocks: u64, ntid: u32) -> Option<u64> {
    // global boundary grid
    let mut bbs: Vec<u64> = vec![0, nblocks];
    let mut tbs: Vec<u32> = vec![0, ntid];
    for (r, _) in finals {
        bbs.push(r.b0);
        bbs.push(r.b1);
        tbs.push(r.t0);
        tbs.push(r.t1);
    }
    // warp boundaries in the tid dimension
    let mut w = 0;
    while w <= ntid {
        tbs.push(w);
        w += WARP;
    }
    bbs.sort_unstable();
    bbs.dedup();
    tbs.sort_unstable();
    tbs.dedup();

    let count_at = |b: u64, t: u32| -> u64 {
        finals
            .iter()
            .find(|(r, _)| b >= r.b0 && b < r.b1 && t >= r.t0 && t < r.t1)
            .map(|(_, o)| o.count)
            .unwrap_or(0)
    };

    let mut total = 0u64;
    for bi in bbs.windows(2) {
        let (b0, b1) = (bi[0], bi[1]);
        if b0 >= b1 {
            continue;
        }
        // per-warp max within this block stripe
        let mut stripe = 0u64;
        let mut w0 = 0u32;
        while w0 < ntid {
            let w1 = (w0 + WARP).min(ntid);
            let mut mx = 0u64;
            for ti in tbs.windows(2) {
                let (t0, t1) = (ti[0], ti[1]);
                if t0 >= w0 && t0 < w1 && t1 > t0 {
                    mx = mx.max(count_at(b0, t0));
                }
            }
            stripe = stripe.checked_add(mx)?;
            w0 = w1;
        }
        total = stripe
            .checked_mul(b1 - b0)
            .and_then(|x| total.checked_add(x))?;
    }
    Some(total)
}

/// Reference counter: executes *every* thread. Exponentially slower; used
/// by tests and the ablation bench to validate [`count_launch`].
pub fn count_launch_bruteforce(
    kernel: &Kernel,
    launch: &KernelLaunch,
) -> Result<LaunchCount, ExecError> {
    let nblocks = launch.blocks();
    let ntid = kernel.block_threads();
    let machine = Machine::new(kernel, nblocks, &launch.args);
    let mut thread_instructions = 0u64;
    let mut by_category = [0u64; NCAT];
    let mut warp_issues = 0u64;
    for b in 0..nblocks {
        let mut warp_max = 0u64;
        for t in 0..ntid {
            let o = machine.run(b, t)?;
            thread_instructions += o.count;
            for (acc, v) in by_category.iter_mut().zip(&o.by_cat) {
                *acc += v;
            }
            warp_max = warp_max.max(o.count);
            if (t + 1) % WARP == 0 || t + 1 == ntid {
                warp_issues += warp_max;
                warp_max = 0;
            }
        }
    }
    Ok(LaunchCount {
        threads: nblocks * ntid as u64,
        thread_instructions,
        warp_issues,
        by_category,
        pieces: 0,
        reps_executed: (nblocks * ntid as u64) as u32,
    })
}

/// Count a whole launch plan, in parallel over distinct `(kernel, args)`
/// signatures (repeated layers hit the memo table). Uses the process-wide
/// default [`CountMode`].
pub fn count_plan(plan: &LaunchPlan, use_slice: bool) -> Result<PlanCount, ExecError> {
    count_plan_budgeted(plan, use_slice, &ExecBudget::default())
}

/// [`count_plan`] with an explicit execution budget. A shared cancellation
/// token in the budget aborts all parallel launch counts cooperatively.
pub fn count_plan_budgeted(
    plan: &LaunchPlan,
    use_slice: bool,
    budget: &ExecBudget,
) -> Result<PlanCount, ExecError> {
    count_plan_mode_budgeted(plan, use_slice, budget, default_count_mode())
}

/// [`count_plan_mode_budgeted`] plus a [`CountingReport`] describing which
/// tier did the work (the `PlanCount` itself is mode-invariant).
pub fn count_plan_report_budgeted(
    plan: &LaunchPlan,
    use_slice: bool,
    budget: &ExecBudget,
    mode: CountMode,
) -> Result<(PlanCount, CountingReport), ExecError> {
    // memoize by (kernel index, grid, args)
    type Key = (usize, u32, Vec<u64>);
    let mut keys: Vec<Key> = Vec::new();
    let mut key_of: Vec<usize> = Vec::with_capacity(plan.launches.len());
    let mut index: HashMap<Key, usize> = HashMap::new();
    for l in &plan.launches {
        let key = (l.kernel, l.grid.0, l.args.clone());
        let id = *index.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            keys.len() - 1
        });
        key_of.push(id);
    }

    struct Prep {
        program: Arc<DenseProgram>,
        slice: Option<HashSet<usize>>,
        /// `None` when the mode never consults the poly tier.
        poly: Option<Result<KernelPoly, &'static str>>,
    }

    // decode (and slice, and poly-compile) each referenced kernel exactly
    // once; every unique launch of that kernel shares the prepared state
    let mut prepared: HashMap<usize, Prep> = HashMap::new();
    for (kidx, _, _) in &keys {
        prepared.entry(*kidx).or_insert_with(|| {
            let kernel = &plan.module.kernels[*kidx];
            let program = Arc::new(DenseProgram::decode(kernel));
            let slice = use_slice.then(|| branch_slice(kernel));
            let poly = matches!(mode, CountMode::Auto | CountMode::Poly)
                .then(|| compile_kernel(&program, slice.as_ref()));
            Prep {
                program,
                slice,
                poly,
            }
        });
    }

    let poly_compiled = prepared
        .values()
        .filter(|p| matches!(p.poly, Some(Ok(_))))
        .count() as u32;
    let poly_rejected = prepared
        .values()
        .filter(|p| matches!(p.poly, Some(Err(_))))
        .count() as u32;
    let eval_fallbacks = std::sync::atomic::AtomicU32::new(0);

    let uniques: Result<Vec<LaunchCount>, ExecError> = keys
        .par_iter()
        .map(|(kidx, grid, args)| {
            let launch = KernelLaunch {
                kernel: *kidx,
                tag: String::new(),
                grid: (*grid, 1, 1),
                args: args.clone(),
                bytes_read: 0,
                bytes_written: 0,
            };
            let prep = &prepared[kidx];
            let unl = |reason: &str| ExecError::Unlaunchable {
                kernel: prep.program.kernel_name().to_string(),
                reason: format!("poly: {reason}"),
            };
            if mode == CountMode::Bruteforce {
                return count_launch_bruteforce(&plan.module.kernels[*kidx], &launch);
            }
            match &prep.poly {
                Some(Ok(kp)) => match count_launch_poly_prepared(kp, &launch, budget) {
                    Ok(lc) => Ok(lc),
                    Err(PolyBail::Exec(e)) => Err(e),
                    Err(PolyBail::Unsupported(r)) => {
                        POLY_EVAL_FALLBACKS.inc();
                        eval_fallbacks.fetch_add(1, Ordering::Relaxed);
                        if mode == CountMode::Poly {
                            return Err(unl(r));
                        }
                        count_launch_prepared(&prep.program, prep.slice.as_ref(), &launch, budget)
                    }
                },
                Some(Err(r)) if mode == CountMode::Poly => Err(unl(r)),
                _ => count_launch_prepared(&prep.program, prep.slice.as_ref(), &launch, budget),
            }
        })
        .collect();
    let uniques = uniques?;

    let per_launch: Vec<LaunchCount> = key_of.iter().map(|&id| uniques[id].clone()).collect();
    let mut thread_instructions = 0u64;
    let mut warp_issues = 0u64;
    let mut by_category = [0u64; NCAT];
    for lc in &per_launch {
        thread_instructions += lc.thread_instructions;
        warp_issues += lc.warp_issues;
        for (acc, v) in by_category.iter_mut().zip(&lc.by_category) {
            *acc += v;
        }
    }
    let report = CountingReport {
        mode,
        kernels: prepared.len() as u32,
        poly_compiled,
        poly_rejected,
        poly_eval_fallbacks: eval_fallbacks.into_inner(),
        unique_launches: keys.len() as u32,
    };
    Ok((
        PlanCount {
            per_launch,
            thread_instructions,
            warp_issues,
            by_category,
        },
        report,
    ))
}

/// [`count_plan_budgeted`] with an explicit [`CountMode`]. Each referenced
/// kernel is decoded, sliced and poly-compiled exactly once; every unique
/// launch of that kernel shares the prepared artifacts.
pub fn count_plan_mode_budgeted(
    plan: &LaunchPlan,
    use_slice: bool,
    budget: &ExecBudget,
    mode: CountMode,
) -> Result<PlanCount, ExecError> {
    count_plan_report_budgeted(plan, use_slice, budget, mode).map(|(pc, _)| pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::Type;

    fn guard_kernel(block: u32) -> Kernel {
        let mut kb = KernelBuilder::new("k", block);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        for _ in 0..5 {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        }
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    fn launch_of(kernel: &Kernel, threads: u64, args: Vec<u64>) -> KernelLaunch {
        KernelLaunch {
            kernel: 0,
            tag: "t".into(),
            grid: (threads.div_ceil(kernel.block_threads() as u64) as u32, 1, 1),
            args,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    fn loop_kernel(block: u32) -> Kernel {
        let mut kb = KernelBuilder::new("k", block);
        let p_n = kb.param("n", Type::U32);
        let p_trip = kb.param("trip", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let trip = kb.ld_param(&p_trip, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        kb.counted_loop(trip, |kb, _| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    #[test]
    fn matches_bruteforce_on_guard_kernel() {
        let k = guard_kernel(64);
        for n in [1u64, 63, 64, 100, 255, 256, 300] {
            let l = launch_of(&k, 320, vec![n]);
            let fast = count_launch(&k, &l, false).unwrap();
            let brute = count_launch_bruteforce(&k, &l).unwrap();
            assert_eq!(
                fast.thread_instructions, brute.thread_instructions,
                "thread counts differ at n={n}"
            );
            assert_eq!(
                fast.warp_issues, brute.warp_issues,
                "warp issues differ at n={n}"
            );
            assert_eq!(fast.by_category, brute.by_category, "mix differs at n={n}");
        }
    }

    #[test]
    fn slice_mode_gives_identical_counts() {
        let k = guard_kernel(64);
        let l = launch_of(&k, 640, vec![423]);
        let full = count_launch(&k, &l, false).unwrap();
        let sliced = count_launch(&k, &l, true).unwrap();
        assert_eq!(full.thread_instructions, sliced.thread_instructions);
        assert_eq!(full.warp_issues, sliced.warp_issues);
    }

    #[test]
    fn piece_count_is_small_and_constant_in_grid_size() {
        let k = guard_kernel(256);
        let small = count_launch(&k, &launch_of(&k, 10_000, vec![9_000]), false).unwrap();
        let large = count_launch(&k, &launch_of(&k, 10_000_000, vec![9_000_000]), false).unwrap();
        assert!(small.pieces <= 6, "{}", small.pieces);
        assert_eq!(small.pieces, large.pieces);
        assert!(large.reps_executed < 20);
    }

    #[test]
    fn exact_boundary_no_divergence() {
        // n exactly fills the grid: single piece
        let k = guard_kernel(64);
        let l = launch_of(&k, 256, vec![256]);
        let c = count_launch(&k, &l, false).unwrap();
        assert_eq!(c.pieces, 1);
    }

    #[test]
    fn loop_kernel_matches_bruteforce() {
        let k = loop_kernel(32);
        let l = launch_of(&k, 96, vec![70, 9]);
        let fast = count_launch(&k, &l, false).unwrap();
        let brute = count_launch_bruteforce(&k, &l).unwrap();
        assert_eq!(fast.thread_instructions, brute.thread_instructions);
        assert_eq!(fast.warp_issues, brute.warp_issues);
    }

    #[test]
    fn poly_and_interp_modes_agree_exactly() {
        let budget = ExecBudget::default();
        for k in [guard_kernel(64), loop_kernel(32)] {
            for threads in [64u64, 320] {
                let l = launch_of(&k, threads, vec![61, 7]);
                let l = KernelLaunch {
                    args: l.args[..k.params.len()].to_vec(),
                    ..l
                };
                let poly = count_launch_mode(&k, &l, true, &budget, CountMode::Poly).unwrap();
                let interp = count_launch_mode(&k, &l, true, &budget, CountMode::Interp).unwrap();
                let auto = count_launch_mode(&k, &l, true, &budget, CountMode::Auto).unwrap();
                assert_eq!(poly, interp, "poly vs interp on {}", k.name);
                assert_eq!(auto, interp, "auto vs interp on {}", k.name);
            }
        }
    }

    #[test]
    fn count_overflow_is_reported_not_wrapped() {
        // 4e9 blocks x 1024 threads x ~4.7M-instruction paths: the exact
        // total exceeds u64, which previously wrapped silently
        let k = loop_kernel(1024);
        let l = KernelLaunch {
            kernel: 0,
            tag: "t".into(),
            grid: (4_000_000_000, 1, 1),
            args: vec![u64::MAX, 1_560_000],
            bytes_read: 0,
            bytes_written: 0,
        };
        let budget = ExecBudget::default();
        for mode in [CountMode::Interp, CountMode::Auto, CountMode::Poly] {
            match count_launch_mode(&k, &l, true, &budget, mode) {
                Err(ExecError::CountOverflow { kernel }) => assert_eq!(kernel, "k"),
                other => panic!("{mode}: expected CountOverflow, got {other:?}"),
            }
        }
    }

    #[test]
    fn strict_poly_mode_surfaces_fallback_reason() {
        // data-dependent branch: compiles on no mode, so strict poly must
        // error with an attributable reason while auto falls back cleanly
        let mut kb = KernelBuilder::new("dd", 32);
        let _p = kb.param("buf", Type::U64);
        let a = kb.rd();
        kb.mov(Type::U64, a, Operand::ImmI(0));
        let v = kb.r();
        kb.ld(
            ptx::types::Space::Global,
            Type::U32,
            v,
            ptx::inst::Address::reg(a),
        );
        let pr = kb.p();
        kb.setp(ptx::types::CmpOp::Lt, Type::U32, pr, v, Operand::ImmI(10));
        let done = kb.label();
        kb.bra_if(pr, false, done);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(0.0));
        kb.place_label(done);
        kb.ret();
        let k = kb.finish();
        let l = launch_of(&k, 64, vec![0]);
        let budget = ExecBudget::default();
        match count_launch_mode(&k, &l, true, &budget, CountMode::Poly) {
            Err(ExecError::Unlaunchable { reason, .. }) => {
                assert!(reason.starts_with("poly: "), "{reason}");
            }
            other => panic!("expected Unlaunchable, got {other:?}"),
        }
        // auto mode silently uses the interpreter — but the interpreter
        // itself can't resolve a data-dependent branch either, so expect
        // its error, not a poly-attributed one
        match count_launch_mode(&k, &l, true, &budget, CountMode::Auto) {
            Err(ExecError::DataDependentBranch { .. }) => {}
            other => panic!("expected DataDependentBranch, got {other:?}"),
        }
    }

    #[test]
    fn plan_totals_are_sums() {
        let model = cnn_ir::zoo::build("alexnet").unwrap();
        let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
        let pc = count_plan(&plan, true).unwrap();
        assert_eq!(pc.per_launch.len(), plan.launches.len());
        let sum: u64 = pc.per_launch.iter().map(|l| l.thread_instructions).sum();
        assert_eq!(sum, pc.thread_instructions);
        assert!(
            pc.thread_instructions > 1_000_000_000,
            "{}",
            pc.thread_instructions
        );
        // warp-level is less than thread-level by roughly the warp width
        assert!(pc.warp_issues * 2 < pc.thread_instructions);
    }

    #[test]
    fn memoization_reuses_repeated_launches() {
        let model = cnn_ir::zoo::build("vgg16").unwrap();
        let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
        let pc = count_plan(&plan, true).unwrap();
        // vgg has repeated same-shape convs; identical launches must have
        // identical counts
        let mut seen: HashMap<(usize, Vec<u64>), u64> = HashMap::new();
        for (l, c) in plan.launches.iter().zip(&pc.per_launch) {
            let key = (l.kernel, l.args.clone());
            if let Some(prev) = seen.insert(key, c.thread_instructions) {
                assert_eq!(prev, c.thread_instructions);
            }
        }
    }
}
