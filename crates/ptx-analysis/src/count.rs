//! Exact executed-instruction counting for kernel launches.
//!
//! The counting layer runs the [`crate::exec::Machine`] on *representative
//! threads* only. The grid is recursively split into rectangles
//! `(block range) x (tid range)` at the breakpoints reported by affine
//! branch predicates; within a final rectangle every thread takes the same
//! control-flow path, so one representative's count multiplies by the
//! rectangle's area. Typical CNN kernels need fewer than ten representative
//! executions per launch regardless of grid size.

use crate::exec::{Break, DenseProgram, ExecBudget, ExecError, Machine, ThreadOutcome, NCAT};
use crate::slice::branch_slice;
use ptx::kernel::{Kernel, KernelLaunch, LaunchPlan};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Warp width of every modeled GPU.
pub const WARP: u32 = 32;

/// Launches counted to completion.
static COUNT_LAUNCHES: obs::LazyCounter = obs::LazyCounter::new("ptx.count.launches");
/// Representative-thread executions spent across counted launches.
static COUNT_REPS: obs::LazyCounter = obs::LazyCounter::new("ptx.count.representatives");
/// Uniform grid rectangles the counted launches decomposed into.
static COUNT_PIECES: obs::LazyCounter = obs::LazyCounter::new("ptx.count.pieces");

/// Exact instruction statistics for one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchCount {
    pub threads: u64,
    /// Per-thread executed instructions summed over all threads (the
    /// paper's "total number of PTX instructions" predictor).
    pub thread_instructions: u64,
    /// Warp-level issue count: per warp the maximum thread path within it
    /// (divergent warps execute the union of their threads' paths, which
    /// for guard-style divergence equals the longer path).
    pub warp_issues: u64,
    /// Thread-level instruction mix by [`ptx::inst::Category`] index.
    pub by_category: [u64; NCAT],
    /// Number of uniform rectangles the grid decomposed into.
    pub pieces: u32,
    /// Representative-thread executions performed.
    pub reps_executed: u32,
}

/// Counting statistics for a whole launch plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCount {
    pub per_launch: Vec<LaunchCount>,
    pub thread_instructions: u64,
    pub warp_issues: u64,
    pub by_category: [u64; NCAT],
}

/// One uniform rectangle of the launch grid.
#[derive(Debug, Clone)]
struct Rect {
    b0: u64,
    b1: u64, // block range [b0, b1)
    t0: u32,
    t1: u32, // tid range [t0, t1)
}

impl Rect {
    fn area(&self) -> u64 {
        (self.b1 - self.b0) * (self.t1 - self.t0) as u64
    }
}

/// Count one launch exactly. `use_slice` enables slice-mode execution (the
/// paper's `G_v*` optimization; results are identical, evaluation is
/// cheaper).
pub fn count_launch(
    kernel: &Kernel,
    launch: &KernelLaunch,
    use_slice: bool,
) -> Result<LaunchCount, ExecError> {
    count_launch_budgeted(kernel, launch, use_slice, &ExecBudget::default())
}

/// [`count_launch`] with an explicit execution budget (step fuel and
/// cooperative cancellation) applied to every representative thread.
pub fn count_launch_budgeted(
    kernel: &Kernel,
    launch: &KernelLaunch,
    use_slice: bool,
    budget: &ExecBudget,
) -> Result<LaunchCount, ExecError> {
    let program = Arc::new(DenseProgram::decode(kernel));
    let slice = use_slice.then(|| branch_slice(kernel));
    count_launch_prepared(&program, slice.as_ref(), launch, budget)
}

/// [`count_launch_budgeted`] over an already-decoded kernel. The counting
/// layer's grid-rectangle re-runs all execute the shared [`DenseProgram`];
/// [`count_plan_budgeted`] uses this to decode (and slice) each kernel of a
/// plan exactly once across all of its launches.
pub fn count_launch_prepared(
    program: &Arc<DenseProgram>,
    slice: Option<&HashSet<usize>>,
    launch: &KernelLaunch,
    budget: &ExecBudget,
) -> Result<LaunchCount, ExecError> {
    let nblocks = launch.blocks();
    let ntid = program.ntid();
    let mut machine = Machine::from_program(Arc::clone(program), nblocks, &launch.args)
        .with_budget(budget.clone());
    if let Some(s) = slice {
        machine = machine.with_slice(s.clone());
    }

    let mut work = vec![Rect {
        b0: 0,
        b1: nblocks,
        t0: 0,
        t1: ntid,
    }];
    let mut finals: Vec<(Rect, ThreadOutcome)> = Vec::new();
    let mut reps = 0u32;
    // interpreter steps across all representative runs so far: lets a
    // cancellation report where in the whole launch count it landed
    let mut steps_done = 0u64;
    // safety valve: pathological kernels could split forever
    const MAX_PIECES: usize = 4096;

    while let Some(r) = work.pop() {
        // nested-execution cancellation bound: besides the per-run check
        // every CANCEL_CHECK_INTERVAL steps, a pending cancel is observed
        // between rectangles, so the worst-case observation latency stays
        // one interval regardless of how many representatives run
        if budget.cancelled() {
            return Err(ExecError::Cancelled {
                kernel: program.kernel_name().to_string(),
                step: steps_done,
            });
        }
        if finals.len() + work.len() > MAX_PIECES {
            return Err(ExecError::SplitBudget {
                limit: MAX_PIECES as u64,
                kernel: program.kernel_name().to_string(),
            });
        }
        let outcome = machine.run(r.b0, r.t0).map_err(|e| match e {
            ExecError::Cancelled { kernel, step } => ExecError::Cancelled {
                kernel,
                step: steps_done + step,
            },
            other => other,
        })?;
        steps_done += outcome.count;
        reps += 1;
        // find one applicable split
        let mut split: Option<(bool, u64)> = None; // (is_block_dim, at)
        'outer: for br in &outcome.breaks {
            match *br {
                Break::Tid(t) => {
                    if t > r.t0 as i128 && t < r.t1 as i128 {
                        split = Some((false, t as u64));
                        break 'outer;
                    }
                }
                Break::Block(c) => {
                    if c > r.b0 as i128 && c < r.b1 as i128 {
                        split = Some((true, c as u64));
                        break 'outer;
                    }
                }
                Break::Tau(tau) => {
                    if tau <= 0 {
                        continue;
                    }
                    let tau = tau as u64;
                    let blk = tau / ntid as u64;
                    let tid = (tau % ntid as u64) as u32;
                    // isolate the straddling block, then split its tids
                    if blk > r.b0 && blk < r.b1 {
                        split = Some((true, blk));
                        break 'outer;
                    }
                    if tid > 0 && blk + 1 > r.b0 && blk + 1 < r.b1 {
                        split = Some((true, blk + 1));
                        break 'outer;
                    }
                    if r.b1 - r.b0 == 1 && r.b0 == blk && tid > r.t0 && tid < r.t1 {
                        split = Some((false, tid as u64));
                        break 'outer;
                    }
                }
            }
        }
        match split {
            Some((true, at)) => {
                work.push(Rect {
                    b1: at,
                    ..r.clone()
                });
                work.push(Rect { b0: at, ..r });
            }
            Some((false, at)) => {
                work.push(Rect {
                    t1: at as u32,
                    ..r.clone()
                });
                work.push(Rect { t0: at as u32, ..r });
            }
            None => finals.push((r, outcome)),
        }
    }

    // accumulate thread-level totals
    let mut thread_instructions = 0u64;
    let mut by_category = [0u64; NCAT];
    for (r, o) in &finals {
        let area = r.area();
        thread_instructions += area * o.count;
        for (acc, v) in by_category.iter_mut().zip(&o.by_cat) {
            *acc += area * v;
        }
    }

    let warp_issues = warp_issue_total(&finals, nblocks, ntid);

    COUNT_LAUNCHES.inc();
    COUNT_REPS.add(reps as u64);
    COUNT_PIECES.add(finals.len() as u64);
    Ok(LaunchCount {
        threads: nblocks * ntid as u64,
        thread_instructions,
        warp_issues,
        by_category,
        pieces: finals.len() as u32,
        reps_executed: reps,
    })
}

/// Warp-level issue total: per warp, the maximum per-thread path length
/// among the rectangles covering it, summed over all warps of all blocks.
fn warp_issue_total(finals: &[(Rect, ThreadOutcome)], nblocks: u64, ntid: u32) -> u64 {
    // global boundary grid
    let mut bbs: Vec<u64> = vec![0, nblocks];
    let mut tbs: Vec<u32> = vec![0, ntid];
    for (r, _) in finals {
        bbs.push(r.b0);
        bbs.push(r.b1);
        tbs.push(r.t0);
        tbs.push(r.t1);
    }
    // warp boundaries in the tid dimension
    let mut w = 0;
    while w <= ntid {
        tbs.push(w);
        w += WARP;
    }
    bbs.sort_unstable();
    bbs.dedup();
    tbs.sort_unstable();
    tbs.dedup();

    let count_at = |b: u64, t: u32| -> u64 {
        finals
            .iter()
            .find(|(r, _)| b >= r.b0 && b < r.b1 && t >= r.t0 && t < r.t1)
            .map(|(_, o)| o.count)
            .unwrap_or(0)
    };

    let mut total = 0u64;
    for bi in bbs.windows(2) {
        let (b0, b1) = (bi[0], bi[1]);
        if b0 >= b1 {
            continue;
        }
        // per-warp max within this block stripe
        let mut stripe = 0u64;
        let mut w0 = 0u32;
        while w0 < ntid {
            let w1 = (w0 + WARP).min(ntid);
            let mut mx = 0u64;
            for ti in tbs.windows(2) {
                let (t0, t1) = (ti[0], ti[1]);
                if t0 >= w0 && t0 < w1 && t1 > t0 {
                    mx = mx.max(count_at(b0, t0));
                }
            }
            stripe += mx;
            w0 = w1;
        }
        total += stripe * (b1 - b0);
    }
    total
}

/// Reference counter: executes *every* thread. Exponentially slower; used
/// by tests and the ablation bench to validate [`count_launch`].
pub fn count_launch_bruteforce(
    kernel: &Kernel,
    launch: &KernelLaunch,
) -> Result<LaunchCount, ExecError> {
    let nblocks = launch.blocks();
    let ntid = kernel.block_threads();
    let machine = Machine::new(kernel, nblocks, &launch.args);
    let mut thread_instructions = 0u64;
    let mut by_category = [0u64; NCAT];
    let mut warp_issues = 0u64;
    for b in 0..nblocks {
        let mut warp_max = 0u64;
        for t in 0..ntid {
            let o = machine.run(b, t)?;
            thread_instructions += o.count;
            for (acc, v) in by_category.iter_mut().zip(&o.by_cat) {
                *acc += v;
            }
            warp_max = warp_max.max(o.count);
            if (t + 1) % WARP == 0 || t + 1 == ntid {
                warp_issues += warp_max;
                warp_max = 0;
            }
        }
    }
    Ok(LaunchCount {
        threads: nblocks * ntid as u64,
        thread_instructions,
        warp_issues,
        by_category,
        pieces: 0,
        reps_executed: (nblocks * ntid as u64) as u32,
    })
}

/// Count a whole launch plan, in parallel over distinct `(kernel, args)`
/// signatures (repeated layers hit the memo table).
pub fn count_plan(plan: &LaunchPlan, use_slice: bool) -> Result<PlanCount, ExecError> {
    count_plan_budgeted(plan, use_slice, &ExecBudget::default())
}

/// [`count_plan`] with an explicit execution budget. A shared cancellation
/// token in the budget aborts all parallel launch counts cooperatively.
pub fn count_plan_budgeted(
    plan: &LaunchPlan,
    use_slice: bool,
    budget: &ExecBudget,
) -> Result<PlanCount, ExecError> {
    // memoize by (kernel index, grid, args)
    type Key = (usize, u32, Vec<u64>);
    let mut keys: Vec<Key> = Vec::new();
    let mut key_of: Vec<usize> = Vec::with_capacity(plan.launches.len());
    let mut index: HashMap<Key, usize> = HashMap::new();
    for l in &plan.launches {
        let key = (l.kernel, l.grid.0, l.args.clone());
        let id = *index.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            keys.len() - 1
        });
        key_of.push(id);
    }

    // decode (and slice) each referenced kernel exactly once; every unique
    // launch of that kernel shares the dense program
    let mut prepared: HashMap<usize, (Arc<DenseProgram>, Option<HashSet<usize>>)> = HashMap::new();
    for (kidx, _, _) in &keys {
        prepared.entry(*kidx).or_insert_with(|| {
            let kernel = &plan.module.kernels[*kidx];
            (
                Arc::new(DenseProgram::decode(kernel)),
                use_slice.then(|| branch_slice(kernel)),
            )
        });
    }

    let uniques: Result<Vec<LaunchCount>, ExecError> = keys
        .par_iter()
        .map(|(kidx, grid, args)| {
            let launch = KernelLaunch {
                kernel: *kidx,
                tag: String::new(),
                grid: (*grid, 1, 1),
                args: args.clone(),
                bytes_read: 0,
                bytes_written: 0,
            };
            let (program, slice) = &prepared[kidx];
            count_launch_prepared(program, slice.as_ref(), &launch, budget)
        })
        .collect();
    let uniques = uniques?;

    let per_launch: Vec<LaunchCount> = key_of.iter().map(|&id| uniques[id].clone()).collect();
    let mut thread_instructions = 0u64;
    let mut warp_issues = 0u64;
    let mut by_category = [0u64; NCAT];
    for lc in &per_launch {
        thread_instructions += lc.thread_instructions;
        warp_issues += lc.warp_issues;
        for (acc, v) in by_category.iter_mut().zip(&lc.by_category) {
            *acc += v;
        }
    }
    Ok(PlanCount {
        per_launch,
        thread_instructions,
        warp_issues,
        by_category,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::Type;

    fn guard_kernel(block: u32) -> Kernel {
        let mut kb = KernelBuilder::new("k", block);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        for _ in 0..5 {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        }
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    fn launch_of(kernel: &Kernel, threads: u64, args: Vec<u64>) -> KernelLaunch {
        KernelLaunch {
            kernel: 0,
            tag: "t".into(),
            grid: (threads.div_ceil(kernel.block_threads() as u64) as u32, 1, 1),
            args,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    #[test]
    fn matches_bruteforce_on_guard_kernel() {
        let k = guard_kernel(64);
        for n in [1u64, 63, 64, 100, 255, 256, 300] {
            let l = launch_of(&k, 320, vec![n]);
            let fast = count_launch(&k, &l, false).unwrap();
            let brute = count_launch_bruteforce(&k, &l).unwrap();
            assert_eq!(
                fast.thread_instructions, brute.thread_instructions,
                "thread counts differ at n={n}"
            );
            assert_eq!(
                fast.warp_issues, brute.warp_issues,
                "warp issues differ at n={n}"
            );
            assert_eq!(fast.by_category, brute.by_category, "mix differs at n={n}");
        }
    }

    #[test]
    fn slice_mode_gives_identical_counts() {
        let k = guard_kernel(64);
        let l = launch_of(&k, 640, vec![423]);
        let full = count_launch(&k, &l, false).unwrap();
        let sliced = count_launch(&k, &l, true).unwrap();
        assert_eq!(full.thread_instructions, sliced.thread_instructions);
        assert_eq!(full.warp_issues, sliced.warp_issues);
    }

    #[test]
    fn piece_count_is_small_and_constant_in_grid_size() {
        let k = guard_kernel(256);
        let small = count_launch(&k, &launch_of(&k, 10_000, vec![9_000]), false).unwrap();
        let large = count_launch(&k, &launch_of(&k, 10_000_000, vec![9_000_000]), false).unwrap();
        assert!(small.pieces <= 6, "{}", small.pieces);
        assert_eq!(small.pieces, large.pieces);
        assert!(large.reps_executed < 20);
    }

    #[test]
    fn exact_boundary_no_divergence() {
        // n exactly fills the grid: single piece
        let k = guard_kernel(64);
        let l = launch_of(&k, 256, vec![256]);
        let c = count_launch(&k, &l, false).unwrap();
        assert_eq!(c.pieces, 1);
    }

    #[test]
    fn loop_kernel_matches_bruteforce() {
        let mut kb = KernelBuilder::new("k", 32);
        let p_n = kb.param("n", Type::U32);
        let p_trip = kb.param("trip", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let trip = kb.ld_param(&p_trip, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        kb.counted_loop(trip, |kb, _| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.place_label(exit);
        kb.ret();
        let k = kb.finish();
        let l = launch_of(&k, 96, vec![70, 9]);
        let fast = count_launch(&k, &l, false).unwrap();
        let brute = count_launch_bruteforce(&k, &l).unwrap();
        assert_eq!(fast.thread_instructions, brute.thread_instructions);
        assert_eq!(fast.warp_issues, brute.warp_issues);
    }

    #[test]
    fn plan_totals_are_sums() {
        let model = cnn_ir::zoo::build("alexnet").unwrap();
        let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
        let pc = count_plan(&plan, true).unwrap();
        assert_eq!(pc.per_launch.len(), plan.launches.len());
        let sum: u64 = pc.per_launch.iter().map(|l| l.thread_instructions).sum();
        assert_eq!(sum, pc.thread_instructions);
        assert!(
            pc.thread_instructions > 1_000_000_000,
            "{}",
            pc.thread_instructions
        );
        // warp-level is less than thread-level by roughly the warp width
        assert!(pc.warp_issues * 2 < pc.thread_instructions);
    }

    #[test]
    fn memoization_reuses_repeated_launches() {
        let model = cnn_ir::zoo::build("vgg16").unwrap();
        let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
        let pc = count_plan(&plan, true).unwrap();
        // vgg has repeated same-shape convs; identical launches must have
        // identical counts
        let mut seen: HashMap<(usize, Vec<u64>), u64> = HashMap::new();
        for (l, c) in plan.launches.iter().zip(&pc.per_launch) {
            let key = (l.kernel, l.args.clone());
            if let Some(prev) = seen.insert(key, c.thread_instructions) {
                assert_eq!(prev, c.thread_instructions);
            }
        }
    }
}
