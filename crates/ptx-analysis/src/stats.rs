//! Static per-kernel statistics: instruction histograms, CFG shape and
//! slice metrics — the diagnostics surface of the dynamic code analysis
//! (used by the `ptx_inspect` example and the ablation benches).

use crate::cfg::Cfg;
use crate::depgraph::DepGraph;
use crate::slice::branch_slice;
use ptx::inst::Category;
use ptx::kernel::Kernel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static structure metrics for one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelStats {
    pub name: String,
    pub instructions: usize,
    pub basic_blocks: usize,
    pub dependency_edges: usize,
    pub slice_size: usize,
    pub slice_fraction: f64,
    pub branches: usize,
    pub loops: usize,
    /// Instruction count per category name.
    pub histogram: BTreeMap<String, usize>,
}

/// Compute the full statistics bundle for one kernel.
pub fn kernel_stats(kernel: &Kernel) -> KernelStats {
    let g = DepGraph::build(kernel);
    let cfg = Cfg::build(kernel);
    let slice = branch_slice(kernel);
    let n = kernel.num_instructions();

    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    for inst in kernel.instructions() {
        *histogram
            .entry(format!("{:?}", inst.category()))
            .or_insert(0) += 1;
    }

    let branches = kernel
        .instructions()
        .filter(|i| matches!(i.op, ptx::inst::Op::Bra { .. }))
        .count();
    // back edges in the CFG indicate loops
    let loops = cfg
        .succs
        .iter()
        .enumerate()
        .map(|(b, ss)| ss.iter().filter(|&&s| s <= b).count())
        .sum();

    KernelStats {
        name: kernel.name.clone(),
        instructions: n,
        basic_blocks: cfg.num_blocks(),
        dependency_edges: g.num_edges(),
        slice_size: slice.len(),
        slice_fraction: if n == 0 {
            0.0
        } else {
            slice.len() as f64 / n as f64
        },
        branches,
        loops,
        histogram,
    }
}

/// Histogram share of a category (0 when absent).
impl KernelStats {
    pub fn share(&self, cat: Category) -> f64 {
        let key = format!("{cat:?}");
        let count = self.histogram.get(&key).copied().unwrap_or(0);
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_stats_are_consistent() {
        let k = ptx_codegen::Template::GemmTiled.build();
        let s = kernel_stats(&k);
        assert_eq!(s.instructions, k.num_instructions());
        assert!(s.basic_blocks >= 3);
        assert!(s.loops >= 1, "tiled gemm has a k-loop");
        assert!(s.branches >= 2);
        assert!(s.slice_fraction > 0.0 && s.slice_fraction < 0.5);
        let total: usize = s.histogram.values().sum();
        assert_eq!(total, s.instructions);
        // the unrolled inner product makes FMA a visible share
        assert!(s.share(Category::FloatFma) > 0.1);
    }

    #[test]
    fn straightline_kernel_has_no_loops() {
        let k = ptx_codegen::Template::EwAdd.build();
        let s = kernel_stats(&k);
        assert_eq!(s.loops, 0);
        assert!(s.share(Category::LoadGlobal) > 0.0);
    }

    #[test]
    fn histogram_keys_are_category_names() {
        let k = ptx_codegen::Template::ActRelu.build();
        let s = kernel_stats(&k);
        assert!(s.histogram.contains_key("Control"));
        assert_eq!(s.share(Category::Sync), 0.0);
    }
}
