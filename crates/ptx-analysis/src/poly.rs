//! Closed-form trip-count polynomials for the DCA counting layer.
//!
//! The dense interpreter ([`crate::exec`]) executes a representative
//! thread instruction-by-instruction; this module *compiles* a kernel
//! instead. Values are tracked as symbolic affine forms
//! `ct*ctaid + td*tid + b` whose three coefficients are polynomials over
//! the kernel's parameter slots (plus the launch's `%nctaid.x`), so the
//! compiled artifact — a small DAG of [`PNode`]s — evaluates any
//! `(ctaid, tid, args)` in O(nodes) instead of O(steps).
//!
//! # Equivalence contract
//!
//! The compiled program must be **bit-identical** to the interpreter on
//! every launch: same `ThreadOutcome` (count, category mix, breakpoints)
//! and same typed errors (`StepLimit`, `UnknownParam`, ...). The compiler
//! therefore only folds what the interpreter folds *for every launch*
//! (e.g. a symbolic constant is folded only when it is launch-independent
//! or uniform — exactly the cases where the interpreter's runtime
//! `as_const()` succeeds), and bails out to the interpreter on anything
//! it cannot prove:
//!
//! * compile-time bail ([`compile_kernel`] returns `Err`): the kernel
//!   keeps using the interpreter (`ptx.poly.fallbacks`);
//! * eval-time bail ([`PolyBail::Unsupported`]): that one launch is
//!   re-counted by the interpreter (`ptx.poly.eval_fallbacks` in the
//!   counting layer).
//!
//! # Loop closure
//!
//! A backward branch with a runtime-resolvable uniform guard becomes a
//! [`PNode::Loop`]. Iteration 1 is compiled inline (it is part of the
//! straight-line prefix); the compiler then symbolically runs the body
//! three more times and requires a *translation-stable* fixed point:
//! identical instruction path, costs and guard decisions, and equal
//! consecutive deltas on the guard operands and on every untainted affine
//! register the body writes. Because the untainted registers then evolve
//! as an affine map `x -> Mx + c` with `M·delta = delta`, the observed
//! deltas extrapolate exactly to *all* iterations, and the trip count is
//! the first root of a linear function (solved in [`first_exit`]).
//! Anything that could break linear extrapolation — non-affine ops over
//! drifting inputs, float-derived decisions, predicates captured from
//! tainted state — either taints the destination (tainted values may be
//! wrong but can never influence a decision: a tainted predicate rejects
//! the loop) or rejects the loop outright.

use crate::exec::{
    harvest_breaks_into, wrap_for, Break, DInst, DOp, DOperand, DenseProgram, ExecError, OffDst,
    ThreadOutcome, Val, NCAT,
};
use ptx::types::{BinOp, CmpOp, Type, UnOp};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::mem::discriminant;

/// Kernels submitted to the polynomial compiler.
static POLY_ATTEMPTS: obs::LazyCounter = obs::LazyCounter::new("ptx.poly.attempts");
/// Kernels successfully compiled to closed form.
static POLY_COMPILED: obs::LazyCounter = obs::LazyCounter::new("ptx.poly.compiled");
/// Kernels rejected by the compiler (interpreter fallback).
static POLY_FALLBACKS: obs::LazyCounter = obs::LazyCounter::new("ptx.poly.fallbacks");

/// Sentinel parameter slot denoting `%nctaid.x` in an [`ArgPoly`].
pub(crate) const NCTAID_SLOT: u16 = u16::MAX;
/// Max monomials per polynomial before the compiler gives up.
const MAX_TERMS: usize = 64;
/// Max monomial degree before the compiler gives up.
const MAX_DEG: usize = 6;
/// Symbolic instruction budget for one kernel compile (covers literal
/// loop unrolling; a symbolic "infinite" loop exhausts this and bails).
const MAX_SYM_STEPS: u64 = 250_000;
/// Max compiled nodes per kernel.
const MAX_NODES: usize = 4096;
/// Max branch/loop nesting depth during compilation.
const MAX_DEPTH: u32 = 64;

/// Compile-time bail reason (the kernel falls back to the interpreter).
type Bail = &'static str;

/// A polynomial over kernel-argument slots (and [`NCTAID_SLOT`]): a map
/// from a sorted monomial multiset of slots to its `i128` coefficient.
/// The zero polynomial is the empty map; all arithmetic is checked and
/// returns `None` on overflow or size blowup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct ArgPoly {
    terms: BTreeMap<Box<[u16]>, i128>,
}

impl ArgPoly {
    fn cnst(v: i128) -> Self {
        let mut terms = BTreeMap::new();
        if v != 0 {
            terms.insert(Box::from([] as [u16; 0]), v);
        }
        ArgPoly { terms }
    }

    fn slot(s: u16) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Box::from([s]), 1);
        ArgPoly { terms }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn as_const(&self) -> Option<i128> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Box::from([] as [u16; 0])).copied(),
            _ => None,
        }
    }

    fn checked_insert(
        terms: &mut BTreeMap<Box<[u16]>, i128>,
        k: Box<[u16]>,
        v: i128,
    ) -> Option<()> {
        if k.len() > MAX_DEG {
            return None;
        }
        let e = terms.entry(k).or_insert(0);
        *e = e.checked_add(v)?;
        Some(())
    }

    fn finish(mut terms: BTreeMap<Box<[u16]>, i128>) -> Option<Self> {
        terms.retain(|_, v| *v != 0);
        if terms.len() > MAX_TERMS {
            return None;
        }
        Some(ArgPoly { terms })
    }

    fn add(&self, o: &Self) -> Option<Self> {
        let mut terms = self.terms.clone();
        for (k, v) in &o.terms {
            Self::checked_insert(&mut terms, k.clone(), *v)?;
        }
        Self::finish(terms)
    }

    fn neg(&self) -> Option<Self> {
        let mut terms = BTreeMap::new();
        for (k, v) in &self.terms {
            terms.insert(k.clone(), v.checked_neg()?);
        }
        Self::finish(terms)
    }

    fn sub(&self, o: &Self) -> Option<Self> {
        self.add(&o.neg()?)
    }

    fn mul(&self, o: &Self) -> Option<Self> {
        let mut terms = BTreeMap::new();
        for (ka, va) in &self.terms {
            for (kb, vb) in &o.terms {
                let mut k: Vec<u16> = ka.iter().chain(kb.iter()).copied().collect();
                k.sort_unstable();
                Self::checked_insert(&mut terms, k.into_boxed_slice(), va.checked_mul(*vb)?)?;
            }
        }
        Self::finish(terms)
    }

    /// Evaluate at concrete launch arguments. `None` on `i128` overflow
    /// or an out-of-range slot (which the caller surfaces as an
    /// eval-time fallback, never a wrong count).
    fn eval(&self, args: &[u64], nctaid: u64) -> Option<i128> {
        let mut acc: i128 = 0;
        for (k, coeff) in &self.terms {
            let mut term = *coeff;
            for &s in k.iter() {
                let v: i128 = if s == NCTAID_SLOT {
                    nctaid as i128
                } else {
                    *args.get(s as usize)? as i128
                };
                term = term.checked_mul(v)?;
            }
            acc = acc.checked_add(term)?;
        }
        Some(acc)
    }
}

/// Symbolic affine form `ct*ctaid + td*tid + b` with polynomial
/// coefficients — the symbolic counterpart of [`Val::Lin`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SLin {
    ct: ArgPoly,
    td: ArgPoly,
    b: ArgPoly,
}

impl SLin {
    fn from_poly(b: ArgPoly) -> Self {
        SLin {
            ct: ArgPoly::cnst(0),
            td: ArgPoly::cnst(0),
            b,
        }
    }

    fn literal(ct: i128, td: i128, b: i128) -> Self {
        SLin {
            ct: ArgPoly::cnst(ct),
            td: ArgPoly::cnst(td),
            b: ArgPoly::cnst(b),
        }
    }

    /// Launch-uniform: no ctaid/tid slope (the symbolic analogue of the
    /// interpreter's runtime `as_const()` succeeding on every launch).
    fn is_uniform(&self) -> bool {
        self.ct.is_zero() && self.td.is_zero()
    }

    /// Fully launch-independent constant value, if any.
    fn as_literal(&self) -> Option<i128> {
        if self.is_uniform() {
            self.b.as_const()
        } else {
            None
        }
    }

    fn add(&self, o: &Self) -> Option<Self> {
        Some(SLin {
            ct: self.ct.add(&o.ct)?,
            td: self.td.add(&o.td)?,
            b: self.b.add(&o.b)?,
        })
    }

    fn sub(&self, o: &Self) -> Option<Self> {
        Some(SLin {
            ct: self.ct.sub(&o.ct)?,
            td: self.td.sub(&o.td)?,
            b: self.b.sub(&o.b)?,
        })
    }

    fn scale_poly(&self, k: &ArgPoly) -> Option<Self> {
        Some(SLin {
            ct: self.ct.mul(k)?,
            td: self.td.mul(k)?,
            b: self.b.mul(k)?,
        })
    }
}

/// A symbolic value: affine, a concrete float, or opaque.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SVal {
    Lin(SLin),
    F32(f32),
    Unknown,
}

impl SVal {
    fn lit(v: i128) -> Self {
        SVal::Lin(SLin::literal(0, 0, v))
    }

    fn as_literal(&self) -> Option<i128> {
        match self {
            SVal::Lin(l) => l.as_literal(),
            _ => None,
        }
    }
}

/// A runtime-resolvable comparison `cmp(a, b)` over symbolic affine
/// operands; evaluated per launch exactly like the interpreter's
/// `setp_val` (including the type-aware wrap on constant differences).
#[derive(Debug, Clone)]
pub(crate) struct CondExpr {
    cmp: CmpOp,
    t: Type,
    a: SLin,
    b: SLin,
}

/// Symbolic predicate-register state.
#[derive(Debug, Clone)]
struct SPred {
    /// Truth known at compile time (same on every launch).
    truth: Option<bool>,
    /// Runtime-resolvable comparison, when the operands were affine.
    cond: Option<CondExpr>,
    /// Captured from tainted state inside a loop body: may be wrong for
    /// extrapolated iterations, so it must never drive a decision.
    tainted: bool,
}

impl SPred {
    fn opaque(tainted: bool) -> Self {
        SPred {
            truth: None,
            cond: None,
            tainted,
        }
    }
}

/// Symbolic machine state: value registers, their taint flags, and
/// predicate registers.
#[derive(Clone)]
struct SEnv {
    regs: Vec<SVal>,
    taint: Vec<bool>,
    preds: Vec<Option<SPred>>,
}

impl SEnv {
    fn new(p: &DenseProgram) -> Self {
        SEnv {
            regs: vec![SVal::Unknown; p.nregs],
            taint: vec![false; p.nregs],
            preds: vec![None; p.npreds],
        }
    }
}

/// One node of a compiled kernel.
#[derive(Debug, Clone)]
enum PNode {
    /// A straight-line segment: fixed instruction count and category mix,
    /// plus the `ld.param` slots it reads (`(pslot, offset)` where
    /// `offset` is the number of instructions executed in the segment
    /// before the load — needed to replicate the interpreter's
    /// `StepLimit`-before-`UnknownParam` ordering).
    Cost {
        count: u64,
        by_cat: Box<[u64; NCAT]>,
        params: Vec<(u32, u64)>,
        next: u32,
    },
    /// A forward conditional branch resolved per launch.
    Branch {
        pc: u32,
        neg: bool,
        cond: CondExpr,
        taken: u32,
        fall: u32,
    },
    /// A closed loop: the guard's operand trajectories are linear per
    /// iteration (`va_k = va1 + (k-1)*dva`), so the trip count is the
    /// first exit of a linear function and iterations 2..=T cost
    /// `(T-1) * body`.
    Loop {
        cmp: CmpOp,
        t: Type,
        neg: bool,
        va1: ArgPoly,
        dva: ArgPoly,
        vb1: ArgPoly,
        dvb: ArgPoly,
        body_count: u64,
        body_cat: Box<[u64; NCAT]>,
        /// Params first read in iterations >= 2, with in-iteration offsets.
        body_params: Vec<(u32, u64)>,
        next: u32,
    },
    End,
}

/// Why a compiled kernel could not evaluate one launch.
#[derive(Debug)]
pub enum PolyBail {
    /// The launch needs the interpreter (counts would not be provably
    /// identical); the counting layer re-runs it there.
    Unsupported(&'static str),
    /// A real execution error the interpreter would also raise, with an
    /// identical payload; propagated as-is.
    Exec(ExecError),
}

/// A kernel compiled to piecewise trip-count polynomials.
pub struct KernelPoly {
    nodes: Vec<PNode>,
    root: u32,
    ntid: u32,
    kernel_name: String,
    param_names: Vec<String>,
}

impl KernelPoly {
    /// Compiled node count (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Kernel name (error attribution).
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Block width the kernel was compiled for.
    pub fn ntid(&self) -> u32 {
        self.ntid
    }

    fn step_limit(&self, max_steps: u64) -> PolyBail {
        PolyBail::Exec(ExecError::StepLimit {
            limit: max_steps,
            kernel: self.kernel_name.clone(),
        })
    }

    fn check_params(
        &self,
        count: u128,
        params: &[(u32, u64)],
        args: &[u64],
        max_steps: u64,
    ) -> Result<(), PolyBail> {
        for &(pslot, off) in params {
            // the interpreter's StepLimit check precedes the instruction,
            // so a load past the fuel limit never reports UnknownParam
            if count + off as u128 >= max_steps as u128 {
                return Err(self.step_limit(max_steps));
            }
            if args.get(pslot as usize).is_none() {
                return Err(PolyBail::Exec(ExecError::UnknownParam {
                    name: self.param_names[pslot as usize].clone(),
                }));
            }
        }
        Ok(())
    }

    /// Evaluate the representative thread `(ctaid, tid)` of a launch.
    /// Bit-identical to `Machine::run` on the same launch whenever it
    /// returns `Ok` or `Exec`; `Unsupported` means "use the interpreter".
    pub fn eval_thread(
        &self,
        nctaid: u64,
        ctaid: u64,
        tid: u32,
        args: &[u64],
        max_steps: u64,
    ) -> Result<ThreadOutcome, PolyBail> {
        let cta = ctaid as i128;
        let t = tid as i128;
        let ntid = self.ntid as i128;
        let mut count: u128 = 0;
        let mut by_cat = [0u128; NCAT];
        let mut breaks: Vec<Break> = Vec::new();
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                PNode::Cost {
                    count: c,
                    by_cat: bc,
                    params,
                    next,
                } => {
                    self.check_params(count, params, args, max_steps)?;
                    count += *c as u128;
                    if count > max_steps as u128 {
                        return Err(self.step_limit(max_steps));
                    }
                    for (acc, v) in by_cat.iter_mut().zip(bc.iter()) {
                        *acc += *v as u128;
                    }
                    cur = *next;
                }
                PNode::Branch {
                    pc,
                    neg,
                    cond,
                    taken,
                    fall,
                } => {
                    let truth = eval_cond(cond, cta, t, ntid, args, nctaid, *pc, &mut breaks)?;
                    cur = if truth != *neg { *taken } else { *fall };
                }
                PNode::Loop {
                    cmp,
                    t: lt,
                    neg,
                    va1,
                    dva,
                    vb1,
                    dvb,
                    body_count,
                    body_cat,
                    body_params,
                    next,
                } => {
                    let ev = |p: &ArgPoly| {
                        p.eval(args, nctaid)
                            .ok_or(PolyBail::Unsupported("loop poly overflow"))
                    };
                    let (va1, dva, vb1, dvb) = (ev(va1)?, ev(dva)?, ev(vb1)?, ev(dvb)?);
                    let d1 = va1
                        .checked_sub(vb1)
                        .ok_or(PolyBail::Unsupported("loop poly overflow"))?;
                    let dd = dva
                        .checked_sub(dvb)
                        .ok_or(PolyBail::Unsupported("loop poly overflow"))?;
                    let trips = first_exit(*cmp, *neg, d1, dd)
                        .ok_or(PolyBail::Unsupported("loop never exits"))?;
                    // the linear model is exact only while both operand
                    // trajectories stay inside the type's wrap-identity
                    // domain (trajectories are linear in k, so checking
                    // the endpoints bounds every iteration)
                    check_range(*lt, va1, dva, trips)?;
                    check_range(*lt, vb1, dvb, trips)?;
                    let extra = (trips - 1) as u128;
                    if extra > 0 {
                        self.check_params(count, body_params, args, max_steps)?;
                        count = extra
                            .checked_mul(*body_count as u128)
                            .and_then(|x| count.checked_add(x))
                            .ok_or_else(|| self.step_limit(max_steps))?;
                        if count > max_steps as u128 {
                            return Err(self.step_limit(max_steps));
                        }
                        for (acc, v) in by_cat.iter_mut().zip(body_cat.iter()) {
                            *acc += extra * *v as u128;
                        }
                    }
                    cur = *next;
                }
                PNode::End => break,
            }
        }
        breaks.sort_unstable_by_key(|b| match b {
            Break::Tau(v) | Break::Tid(v) | Break::Block(v) => *v,
        });
        breaks.dedup();
        let mut cat = [0u64; NCAT];
        for (o, v) in cat.iter_mut().zip(by_cat.iter()) {
            *o = *v as u64;
        }
        Ok(ThreadOutcome {
            count: count as u64,
            by_cat: cat,
            breaks,
        })
    }
}

/// Evaluate a [`CondExpr`] for a concrete thread, replicating
/// `setp_val`'s harvest + truth exactly: breakpoints are harvested from
/// the affine difference, and constant differences compare with the
/// type-aware wrap.
#[allow(clippy::too_many_arguments)]
fn eval_cond(
    cond: &CondExpr,
    cta: i128,
    tid: i128,
    ntid: i128,
    args: &[u64],
    nctaid: u64,
    pc: u32,
    breaks: &mut Vec<Break>,
) -> Result<bool, PolyBail> {
    let ev = |l: &SLin| -> Option<(i128, i128, i128)> {
        Some((
            l.ct.eval(args, nctaid)?,
            l.td.eval(args, nctaid)?,
            l.b.eval(args, nctaid)?,
        ))
    };
    let ((act, atd, ab), (bct, btd, bb)) = ev(&cond.a)
        .zip(ev(&cond.b))
        .ok_or(PolyBail::Unsupported("cond poly overflow"))?;
    let lin = |ct: i128, td: i128, b: i128| -> Option<i128> {
        ct.checked_mul(cta)?
            .checked_add(td.checked_mul(tid)?)?
            .checked_add(b)
    };
    let (dct, dtd, db) = (
        act.checked_sub(bct),
        atd.checked_sub(btd),
        ab.checked_sub(bb),
    );
    let ((dct, dtd), db) = dct
        .zip(dtd)
        .zip(db)
        .ok_or(PolyBail::Unsupported("cond poly overflow"))?;
    harvest_breaks_into(dct, dtd, db, ntid, pc as usize, breaks).map_err(PolyBail::Exec)?;
    let (va, vb) = lin(act, atd, ab)
        .zip(lin(bct, btd, bb))
        .ok_or(PolyBail::Unsupported("cond poly overflow"))?;
    let truth = if dct == 0 && dtd == 0 {
        cond.cmp.eval_i(wrap_for(cond.t, va), wrap_for(cond.t, vb))
    } else {
        cond.cmp.eval_i(va, vb)
    };
    Ok(truth)
}

fn complement(c: CmpOp) -> CmpOp {
    match c {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

/// First `k >= 1` at which the loop guard says *exit*, for the guard
/// difference trajectory `d_k = d1 + (k-1)*dd`. The back edge is taken
/// while `truth != neg`, so the exit predicate is `cmp` itself when
/// `neg` and its complement otherwise. `None` = the loop never exits
/// under the linear model (the interpreter would run to its step limit;
/// the caller falls back so it does exactly that).
fn first_exit(cmp: CmpOp, neg: bool, d1: i128, dd: i128) -> Option<i128> {
    let q = if neg { cmp } else { complement(cmp) };
    match q {
        CmpOp::Eq => {
            if d1 == 0 {
                Some(1)
            } else if dd == 0 || (-d1) % dd != 0 {
                None
            } else {
                let km1 = (-d1) / dd;
                if km1 >= 1 {
                    Some(1 + km1)
                } else {
                    None
                }
            }
        }
        CmpOp::Ne => {
            if d1 != 0 {
                Some(1)
            } else if dd != 0 {
                Some(2)
            } else {
                None
            }
        }
        CmpOp::Lt => first_low(d1, dd, -1),
        CmpOp::Le => first_low(d1, dd, 0),
        CmpOp::Gt => first_high(d1, dd, 1),
        CmpOp::Ge => first_high(d1, dd, 0),
    }
}

/// First `k >= 1` with `d1 + (k-1)*dd >= bound`.
fn first_high(d1: i128, dd: i128, bound: i128) -> Option<i128> {
    if d1 >= bound {
        return Some(1);
    }
    if dd <= 0 {
        return None;
    }
    let need = bound.checked_sub(d1)?; // > 0
    Some(1 + (need - 1) / dd + 1)
}

/// First `k >= 1` with `d1 + (k-1)*dd <= bound`.
fn first_low(d1: i128, dd: i128, bound: i128) -> Option<i128> {
    if d1 <= bound {
        return Some(1);
    }
    if dd >= 0 {
        return None;
    }
    let need = d1.checked_sub(bound)?; // > 0
    let step = dd.checked_neg()?; // > 0
    Some(1 + (need - 1) / step + 1)
}

/// Verify a guard-operand trajectory stays inside the wrap-identity
/// domain of its comparison type for `k` in `1..=trips` (endpoints
/// suffice: the trajectory is linear in `k`). Outside the domain the
/// interpreter's wrapped compare diverges from the linear model, so the
/// launch falls back.
fn check_range(t: Type, v1: i128, dv: i128, trips: i128) -> Result<(), PolyBail> {
    let (lo, hi) = match t {
        Type::U32 | Type::B32 => (0, u32::MAX as i128),
        Type::U64 => (0, u64::MAX as i128),
        _ => return Ok(()), // wrap_for is the identity for signed/float
    };
    let vend = dv
        .checked_mul(trips - 1)
        .and_then(|x| v1.checked_add(x))
        .ok_or(PolyBail::Unsupported("loop range overflow"))?;
    if v1 < lo || v1 > hi || vend < lo || vend > hi {
        return Err(PolyBail::Unsupported("loop leaves wrap domain"));
    }
    Ok(())
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn s_add(a: &SVal, b: &SVal) -> SVal {
    match (a, b) {
        (SVal::Lin(la), SVal::Lin(lb)) => la.add(lb).map(SVal::Lin).unwrap_or(SVal::Unknown),
        _ => SVal::Unknown,
    }
}

fn s_sub(a: &SVal, b: &SVal) -> SVal {
    match (a, b) {
        (SVal::Lin(la), SVal::Lin(lb)) => la.sub(lb).map(SVal::Lin).unwrap_or(SVal::Unknown),
        _ => SVal::Unknown,
    }
}

fn s_scale_lit(a: &SVal, k: i128) -> SVal {
    match a {
        SVal::Lin(l) => l
            .scale_poly(&ArgPoly::cnst(k))
            .map(SVal::Lin)
            .unwrap_or(SVal::Unknown),
        _ => SVal::Unknown,
    }
}

/// `a | b` folded to `a + b` when provably disjoint *on every launch*:
/// the symbolic analogue of the interpreter's Fig. 2 `shl`/`or` gid
/// idiom. All six affine components must be launch-independent and
/// non-negative (so both runtime ranges have non-negative lower bounds),
/// and the bounded side must have no block slope (so its upper bound is
/// launch-independent); then "alignment of one side exceeds the other's
/// upper bound" implies the interpreter's runtime check for every
/// launch.
fn or_idiom(a: &SVal, b: &SVal, ntid: u32) -> SVal {
    let (SVal::Lin(la), SVal::Lin(lb)) = (a, b) else {
        return SVal::Unknown;
    };
    let lits = |l: &SLin| -> Option<(i128, i128, i128)> {
        Some((l.ct.as_const()?, l.td.as_const()?, l.b.as_const()?))
    };
    let (Some(ca), Some(cb)) = (lits(la), lits(lb)) else {
        return SVal::Unknown;
    };
    let ((act, atd, ab), (bct, btd, bb)) = (ca, cb);
    if [act, atd, ab, bct, btd, bb].iter().any(|&x| x < 0) {
        return SVal::Unknown;
    }
    let n = ntid as i128;
    let align = |ct: i128, td: i128, b: i128| -> i128 {
        let g = gcd(gcd(ct.unsigned_abs(), td.unsigned_abs()), b.unsigned_abs()) as i128;
        if g == 0 {
            i128::MAX
        } else {
            g & g.wrapping_neg()
        }
    };
    let bh = (bct == 0).then(|| btd * (n - 1) + bb);
    let ah = (act == 0).then(|| atd * (n - 1) + ab);
    let disjoint = bh.is_some_and(|bh| align(act, atd, ab) > bh)
        || ah.is_some_and(|ah| align(bct, btd, bb) > ah);
    if disjoint {
        s_add(a, b)
    } else {
        SVal::Unknown
    }
}

/// Symbolic mirror of the interpreter's `bin_val`. Folds only where the
/// interpreter folds on *every* launch: uniform forms stand in for
/// runtime constants, literals for launch-independent constants.
/// Anything less precise degrades to `Unknown`, which can only cause a
/// fallback — never a diverging count.
fn sym_bin(op: BinOp, t: Type, a: &SVal, b: &SVal, ntid: u32) -> SVal {
    use BinOp::*;
    if t.is_float() {
        return match (op, a, b) {
            (Add, SVal::F32(x), SVal::F32(y)) => SVal::F32(x + y),
            (Sub, SVal::F32(x), SVal::F32(y)) => SVal::F32(x - y),
            (Mul, SVal::F32(x), SVal::F32(y)) => SVal::F32(x * y),
            (Div, SVal::F32(x), SVal::F32(y)) => SVal::F32(x / y),
            (Min, SVal::F32(x), SVal::F32(y)) => SVal::F32(x.min(*y)),
            (Max, SVal::F32(x), SVal::F32(y)) => SVal::F32(x.max(*y)),
            _ => SVal::Unknown,
        };
    }
    let lit2 = || a.as_literal().zip(b.as_literal());
    match op {
        Add => s_add(a, b),
        Sub => s_sub(a, b),
        Mul | MulWide => match (a, b) {
            (SVal::Lin(la), SVal::Lin(lb)) if la.is_uniform() => {
                lb.scale_poly(&la.b).map(SVal::Lin).unwrap_or(SVal::Unknown)
            }
            (SVal::Lin(la), SVal::Lin(lb)) if lb.is_uniform() => {
                la.scale_poly(&lb.b).map(SVal::Lin).unwrap_or(SVal::Unknown)
            }
            _ => SVal::Unknown,
        },
        Div => match lit2() {
            Some((x, y)) if y != 0 => SVal::lit(x.div_euclid(y)),
            _ => SVal::Unknown,
        },
        Rem => match lit2() {
            Some((x, y)) if y != 0 => SVal::lit(x.rem_euclid(y)),
            _ => SVal::Unknown,
        },
        Min => match lit2() {
            Some((x, y)) => SVal::lit(x.min(y)),
            _ => SVal::Unknown,
        },
        Max => match lit2() {
            Some((x, y)) => SVal::lit(x.max(y)),
            _ => SVal::Unknown,
        },
        Shl => match b.as_literal() {
            Some(k) if (0..63).contains(&k) => s_scale_lit(a, 1i128 << k),
            _ => SVal::Unknown,
        },
        Shr => match lit2() {
            Some((x, k)) if (0..63).contains(&k) => SVal::lit(x >> k),
            _ => SVal::Unknown,
        },
        And => match lit2() {
            Some((x, y)) => SVal::lit(x & y),
            _ => SVal::Unknown,
        },
        Or => match lit2() {
            Some((x, y)) => SVal::lit(x | y),
            _ => or_idiom(a, b, ntid),
        },
        Xor => match lit2() {
            Some((x, y)) => SVal::lit(x ^ y),
            _ => SVal::Unknown,
        },
    }
}

/// Symbolic mirror of `un_val`. `Not` folds to `-x - 1` on uniform forms
/// (exactly the two's-complement fold the interpreter applies to its
/// runtime constants); sloped operands stay `Unknown` like the
/// interpreter's.
fn sym_un(op: UnOp, a: &SVal) -> SVal {
    match (op, a) {
        (UnOp::Neg, SVal::Lin(_)) => s_scale_lit(a, -1),
        (UnOp::Neg, SVal::F32(x)) => SVal::F32(-x),
        (UnOp::Abs, SVal::F32(x)) => SVal::F32(x.abs()),
        (UnOp::Sqrt, SVal::F32(x)) => SVal::F32(x.sqrt()),
        (UnOp::Rcp, SVal::F32(x)) => SVal::F32(1.0 / x),
        (UnOp::Ex2, SVal::F32(x)) => SVal::F32(x.exp2()),
        (UnOp::Lg2, SVal::F32(x)) => SVal::F32(x.log2()),
        (UnOp::Not, SVal::Lin(l)) if l.is_uniform() => {
            l.b.neg()
                .and_then(|p| p.sub(&ArgPoly::cnst(1)))
                .map(|p| SVal::Lin(SLin::from_poly(p)))
                .unwrap_or(SVal::Unknown)
        }
        _ => SVal::Unknown,
    }
}

/// Symbolic mirror of `cvt_val`. Bit reinterpretations fold only on full
/// literals (the interpreter also folds launch-dependent runtime
/// constants there; losing those cases degrades to `Unknown`, which is
/// fallback-safe).
fn sym_cvt(to: Type, from: Type, v: &SVal) -> SVal {
    match (to, from) {
        (Type::U64, Type::U32) | (Type::U32, Type::U64) | (Type::S32, Type::U32) => v.clone(),
        (Type::F32, Type::B32) => match v.as_literal() {
            Some(x) => SVal::F32(f32::from_bits(x as u32)),
            None => SVal::Unknown,
        },
        (Type::F32, Type::U32) | (Type::F32, Type::S32) => match v.as_literal() {
            Some(x) => SVal::F32(x as f32),
            None => SVal::Unknown,
        },
        (Type::U32, Type::F32) | (Type::S32, Type::F32) => match v {
            SVal::F32(x) => SVal::lit(*x as i128),
            _ => SVal::Unknown,
        },
        _ => v.clone(),
    }
}

/// Symbolic mirror of `setp_val`. Truth is `Some` only when it is the
/// same on every launch (both operands fully literal, compared with the
/// interpreter's wrap rule, or a float compare); affine operand pairs
/// always carry a [`CondExpr`] for runtime resolution.
fn sym_setp(cmp: CmpOp, t: Type, a: &SVal, b: &SVal, tainted: bool) -> SPred {
    match (a, b) {
        (SVal::F32(x), SVal::F32(y)) => SPred {
            truth: Some(cmp.eval_f(*x, *y)),
            cond: None,
            tainted,
        },
        (SVal::Lin(la), SVal::Lin(lb)) => {
            if la.sub(lb).is_none() {
                // coefficient overflow: can't carry an exact difference
                return SPred::opaque(tainted);
            }
            let truth = la
                .as_literal()
                .zip(lb.as_literal())
                .map(|(x, y)| cmp.eval_i(wrap_for(t, x), wrap_for(t, y)));
            SPred {
                truth,
                cond: Some(CondExpr {
                    cmp,
                    t,
                    a: la.clone(),
                    b: lb.clone(),
                }),
                tainted,
            }
        }
        _ => SPred::opaque(tainted),
    }
}

/// Straight-line cost accumulator (one pending [`PNode::Cost`]).
#[derive(Debug, Clone, PartialEq)]
struct CostAcc {
    count: u64,
    by_cat: [u64; NCAT],
    params: Vec<(u32, u64)>,
}

impl CostAcc {
    fn new() -> Self {
        CostAcc {
            count: 0,
            by_cat: [0; NCAT],
            params: Vec::new(),
        }
    }
}

/// One compile-known guard decision inside a loop body. The symbolic
/// difference `d` is recorded so pass-to-pass equality proves the
/// decision can never drift (equal captured polynomials across passes
/// force the drift functional to zero).
#[derive(Debug, Clone, PartialEq)]
struct SeqEntry {
    pc: u32,
    d: SLin,
    taken: bool,
}

/// Per-pass body bookkeeping.
#[derive(Debug, Default)]
struct BodyScratch {
    seq: Vec<SeqEntry>,
    written: BTreeSet<u32>,
    pwritten: BTreeSet<u32>,
}

/// Guard classification for one instruction.
enum G {
    /// Executes (no guard, or compile-known true).
    T,
    /// Predicated off on every launch: destination untouched.
    F,
    /// Runtime-resolvable comparison (drives [`PNode::Branch`]).
    Cond { slot: u32 },
    /// Truth unknown to the compiler (the interpreter may still know it):
    /// destinations become opaque, error-carrying ops bail.
    Opaque,
    /// Compile-known *this* iteration but not provably stable across
    /// iterations (body mode only).
    Unstable,
}

fn classify(env: &SEnv, guard: Option<(u32, bool)>, body: bool) -> G {
    let Some((p, neg)) = guard else {
        return G::T;
    };
    let Some(sp) = &env.preds[p as usize] else {
        return G::Opaque;
    };
    if let Some(v) = sp.truth {
        // a body decision is only stable if the fixed-point check can see
        // its defining comparison (cond) and the capture is untainted
        if body && (sp.cond.is_none() || sp.tainted) {
            return G::Unstable;
        }
        if v != neg {
            G::T
        } else {
            G::F
        }
    } else if sp.cond.is_some() && !sp.tainted {
        G::Cond { slot: p }
    } else if body {
        G::Unstable
    } else {
        G::Opaque
    }
}

fn sval(env: &SEnv, o: &DOperand) -> SVal {
    match *o {
        DOperand::Slot(i) => env.regs[i as usize].clone(),
        DOperand::Val(Val::Lin { ct, td, b }) => SVal::Lin(SLin::literal(ct, td, b)),
        DOperand::Val(Val::F32(x)) => SVal::F32(x),
        DOperand::Val(Val::Unknown) => SVal::Unknown,
        DOperand::NCtaId => SVal::Lin(SLin::from_poly(ArgPoly::slot(NCTAID_SLOT))),
    }
}

fn otaint(env: &SEnv, o: &DOperand) -> bool {
    matches!(*o, DOperand::Slot(i) if env.taint[i as usize])
}

/// Does this operand's value drift across loop iterations (written in
/// the body, or already tainted)? Non-affine folds over drifting inputs
/// can mimic linearity for the three checked passes and then diverge, so
/// their destinations must be tainted.
fn drifts(env: &SEnv, w: &BTreeSet<u32>, o: &DOperand) -> bool {
    matches!(*o, DOperand::Slot(i) if w.contains(&i) || env.taint[i as usize])
}

type BodyCtx<'a, 'b> = Option<(&'a mut BodyScratch, &'b BTreeSet<u32>)>;

fn write_reg(env: &mut SEnv, body: &mut BodyCtx<'_, '_>, dst: u32, v: SVal, tnt: bool) {
    env.regs[dst as usize] = v;
    env.taint[dst as usize] = tnt;
    if let Some((bs, _)) = body {
        bs.written.insert(dst);
    }
}

fn write_pred(env: &mut SEnv, body: &mut BodyCtx<'_, '_>, dst: u32, sp: SPred) {
    env.preds[dst as usize] = Some(sp);
    if let Some((bs, _)) = body {
        bs.pwritten.insert(dst);
    }
}

struct Compiler<'a> {
    prog: &'a DenseProgram,
    /// Per-pc evaluation flags, mirroring `Machine::with_slice`.
    evaluate: Vec<bool>,
    nodes: Vec<PNode>,
    sym_steps: u64,
}

impl Compiler<'_> {
    fn tick(&mut self) -> Result<(), Bail> {
        self.sym_steps += 1;
        if self.sym_steps > MAX_SYM_STEPS {
            return Err("symbolic step budget exhausted");
        }
        Ok(())
    }

    fn push(&mut self, n: PNode) -> Result<u32, Bail> {
        if self.nodes.len() >= MAX_NODES {
            return Err("node budget exhausted");
        }
        self.nodes.push(n);
        Ok((self.nodes.len() - 1) as u32)
    }

    fn flush(&mut self, acc: CostAcc, next: u32) -> Result<u32, Bail> {
        if acc.count == 0 {
            return Ok(next);
        }
        self.push(PNode::Cost {
            count: acc.count,
            by_cat: Box::new(acc.by_cat),
            params: acc.params,
            next,
        })
    }

    /// Symbolically execute one non-branch, non-ret instruction.
    fn exec_inst(
        &mut self,
        pc: usize,
        inst: &DInst,
        env: &mut SEnv,
        acc: &mut CostAcc,
        mut body: BodyCtx<'_, '_>,
    ) -> Result<(), Bail> {
        let in_body = body.is_some();
        // slice mode: off-slice instructions only poison their
        // destination, guard ignored — exactly the interpreter's path
        if !self.evaluate[pc] {
            match inst.off_dst {
                OffDst::Value(d) => write_reg(env, &mut body, d, SVal::Unknown, in_body),
                OffDst::Pred(d) => write_pred(env, &mut body, d, SPred::opaque(in_body)),
                OffDst::None => {}
            }
            return Ok(());
        }
        let g = classify(env, inst.guard, in_body);
        // record stable body guard decisions for the fixed-point check
        if in_body && matches!(g, G::T | G::F) {
            if let Some((p, _)) = inst.guard {
                let sp = env.preds[p as usize].as_ref().expect("stable guard");
                let c = sp.cond.as_ref().expect("stable guard");
                let d = c.a.sub(&c.b).ok_or("guard difference overflow")?;
                if let Some((bs, _)) = body.as_mut() {
                    bs.seq.push(SeqEntry {
                        pc: pc as u32,
                        d,
                        taken: matches!(g, G::T),
                    });
                }
            }
        }
        if matches!(g, G::F) {
            return Ok(()); // predicated off: destination untouched
        }
        let exact = matches!(g, G::T);
        match &inst.op {
            DOp::Set { dst, src } => {
                let (v, tnt) = if exact {
                    (sval(env, src), otaint(env, src))
                } else {
                    (SVal::Unknown, in_body)
                };
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::MovPred { dst, src } => {
                if exact {
                    if let Some(s) = src {
                        if let Some(pi) = env.preds[*s as usize].clone() {
                            write_pred(env, &mut body, *dst, pi);
                        }
                    }
                } else {
                    write_pred(env, &mut body, *dst, SPred::opaque(in_body));
                }
            }
            DOp::LdParam { dst, pslot } => {
                if !exact {
                    // the interpreter's missing-arg error fires only when
                    // the guard is not false; an unknown guard makes the
                    // error set launch-dependent in ways we can't encode
                    return Err("guarded ld.param with unresolved guard");
                }
                if *pslot >= NCTAID_SLOT as u32 {
                    return Err("parameter slot out of range");
                }
                acc.params.push((*pslot, acc.count - 1));
                let v = SVal::Lin(SLin::from_poly(ArgPoly::slot(*pslot as u16)));
                write_reg(env, &mut body, *dst, v, false);
            }
            DOp::ParamErr { .. } => return Err("unresolvable ld.param"),
            DOp::Bin { op, t, dst, a, b } => {
                let (v, tnt) = if exact {
                    let va = sval(env, a);
                    let vb = sval(env, b);
                    let base = otaint(env, a) || otaint(env, b);
                    let extra = match (&body, op) {
                        (
                            Some((_, w)),
                            BinOp::Div
                            | BinOp::Rem
                            | BinOp::Min
                            | BinOp::Max
                            | BinOp::And
                            | BinOp::Or
                            | BinOp::Xor
                            | BinOp::Shr,
                        ) => drifts(env, w, a) || drifts(env, w, b),
                        (Some((_, w)), BinOp::Shl) => drifts(env, w, b),
                        _ => false,
                    };
                    (sym_bin(*op, *t, &va, &vb, self.prog.ntid()), base || extra)
                } else {
                    (SVal::Unknown, in_body)
                };
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::Un { op, dst, a } => {
                let (v, tnt) = if exact {
                    (sym_un(*op, &sval(env, a)), otaint(env, a))
                } else {
                    (SVal::Unknown, in_body)
                };
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::Mad { t, dst, a, b, c } => {
                let (v, tnt) = if exact {
                    let prod = sym_bin(
                        BinOp::Mul,
                        *t,
                        &sval(env, a),
                        &sval(env, b),
                        self.prog.ntid(),
                    );
                    let v = sym_bin(BinOp::Add, *t, &prod, &sval(env, c), self.prog.ntid());
                    (v, otaint(env, a) || otaint(env, b) || otaint(env, c))
                } else {
                    (SVal::Unknown, in_body)
                };
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::Cvt { to, from, dst, src } => {
                let (v, tnt) = if exact {
                    let base = otaint(env, src);
                    // an int from a drifting float can track an affine
                    // sequence for the checked passes and then diverge
                    // (precision), so it may not justify decisions
                    let extra = match (&body, to, from) {
                        (Some((_, w)), Type::U32 | Type::S32, Type::F32) => drifts(env, w, src),
                        _ => false,
                    };
                    (sym_cvt(*to, *from, &sval(env, src)), base || extra)
                } else {
                    (SVal::Unknown, in_body)
                };
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::Setp { cmp, t, dst, a, b } => {
                let sp = if exact {
                    let tnt = otaint(env, a) || otaint(env, b);
                    sym_setp(*cmp, *t, &sval(env, a), &sval(env, b), tnt)
                } else {
                    SPred::opaque(in_body)
                };
                write_pred(env, &mut body, *dst, sp);
            }
            DOp::Selp { dst, a, b, p } => {
                let mut out: Option<(SVal, bool)> = None;
                if exact {
                    if let Some(sp) = env.preds[*p as usize].as_ref() {
                        let stable = !in_body || (sp.cond.is_some() && !sp.tainted);
                        if let (Some(pick), true) = (sp.truth, stable) {
                            if in_body {
                                let c = sp.cond.as_ref().expect("stable selp");
                                let d = c.a.sub(&c.b).ok_or("selp difference overflow")?;
                                if let Some((bs, _)) = body.as_mut() {
                                    bs.seq.push(SeqEntry {
                                        pc: pc as u32,
                                        d,
                                        taken: pick,
                                    });
                                }
                            }
                            let o = if pick { a } else { b };
                            out = Some((sval(env, o), otaint(env, o) || sp.tainted));
                        }
                    }
                }
                let (v, tnt) = out.unwrap_or((SVal::Unknown, in_body));
                write_reg(env, &mut body, *dst, v, tnt);
            }
            DOp::Nop | DOp::Bra { .. } | DOp::Ret => {}
        }
        Ok(())
    }

    /// Compile from `pc` with symbolic state `env`, returning the head
    /// node of the compiled suffix.
    fn compile_from(&mut self, mut pc: usize, mut env: SEnv, depth: u32) -> Result<u32, Bail> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep");
        }
        let mut acc = CostAcc::new();
        loop {
            self.tick()?;
            if pc >= self.prog.prog.len() {
                let end = self.push(PNode::End)?;
                return self.flush(acc, end);
            }
            let inst = self.prog.prog[pc].clone();
            acc.count += 1;
            acc.by_cat[inst.cat_idx as usize] += 1;
            if let DOp::Bra { target } = inst.op {
                match classify(&env, inst.guard, false) {
                    // compile-known guards have launch-independent (or
                    // absent) affine differences, so the interpreter's
                    // harvest on them is a no-op — following the edge
                    // directly is exact
                    G::T => {
                        pc = target.ok_or("branch to undefined label")? as usize;
                        continue;
                    }
                    G::F => {
                        pc += 1;
                        continue;
                    }
                    G::Cond { slot } => {
                        let t = target.ok_or("branch to undefined label")? as usize;
                        let neg = inst.guard.expect("cond guard").1;
                        if t <= pc {
                            let tail = self.close_loop(t, pc, neg, slot, &env, depth)?;
                            return self.flush(acc, tail);
                        }
                        let cond = env.preds[slot as usize]
                            .as_ref()
                            .and_then(|sp| sp.cond.clone())
                            .expect("cond guard");
                        let taken = self.compile_from(t, env.clone(), depth + 1)?;
                        let fall = self.compile_from(pc + 1, env, depth + 1)?;
                        let b = self.push(PNode::Branch {
                            pc: pc as u32,
                            neg,
                            cond,
                            taken,
                            fall,
                        })?;
                        return self.flush(acc, b);
                    }
                    _ => return Err("branch guard unresolvable"),
                }
            }
            if matches!(inst.op, DOp::Ret) {
                let end = self.push(PNode::End)?;
                return self.flush(acc, end);
            }
            self.exec_inst(pc, &inst, &mut env, &mut acc, None)?;
            pc += 1;
        }
    }

    /// Symbolically execute one loop-body pass from `pc_h`, stopping at
    /// the back-edge branch `pc_b` (which is counted but not followed).
    fn run_body(
        &mut self,
        pc_h: usize,
        pc_b: usize,
        env: &mut SEnv,
        w: &BTreeSet<u32>,
    ) -> Result<(CostAcc, BodyScratch), Bail> {
        let mut acc = CostAcc::new();
        let mut bs = BodyScratch::default();
        let mut pc = pc_h;
        loop {
            self.tick()?;
            if pc >= self.prog.prog.len() {
                return Err("loop body escapes program");
            }
            let inst = self.prog.prog[pc].clone();
            acc.count += 1;
            acc.by_cat[inst.cat_idx as usize] += 1;
            if pc == pc_b {
                if !matches!(inst.op, DOp::Bra { .. }) {
                    return Err("back edge is not a branch");
                }
                return Ok((acc, bs));
            }
            if let DOp::Bra { target } = inst.op {
                let g = classify(env, inst.guard, true);
                let taken = match g {
                    G::T | G::F => {
                        if let Some((p, _)) = inst.guard {
                            let sp = env.preds[p as usize].as_ref().expect("stable guard");
                            let c = sp.cond.as_ref().expect("stable guard");
                            let d = c.a.sub(&c.b).ok_or("guard difference overflow")?;
                            bs.seq.push(SeqEntry {
                                pc: pc as u32,
                                d,
                                taken: matches!(g, G::T),
                            });
                        }
                        matches!(g, G::T)
                    }
                    _ => return Err("divergent branch in loop body"),
                };
                if taken {
                    let t = target.ok_or("branch to undefined label")? as usize;
                    if t < pc_h || t > pc_b {
                        return Err("loop body escapes");
                    }
                    pc = t;
                } else {
                    pc += 1;
                }
                continue;
            }
            if matches!(inst.op, DOp::Ret) {
                return Err("ret inside loop body");
            }
            self.exec_inst(pc, &inst, env, &mut acc, Some((&mut bs, w)))?;
            pc += 1;
        }
    }

    /// Close a backward [`G::Cond`] edge into a [`PNode::Loop`]; see the
    /// module docs for the translation-stability argument.
    #[allow(clippy::too_many_arguments)]
    fn close_loop(
        &mut self,
        pc_h: usize,
        pc_b: usize,
        neg: bool,
        gslot: u32,
        env1: &SEnv,
        depth: u32,
    ) -> Result<u32, Bail> {
        let guard_of = |env: &SEnv| -> Result<(CmpOp, Type, ArgPoly, ArgPoly), Bail> {
            let sp = env.preds[gslot as usize]
                .as_ref()
                .ok_or("loop guard unset")?;
            if sp.tainted {
                return Err("loop guard tainted");
            }
            let c = sp.cond.as_ref().ok_or("loop guard opaque")?;
            if !(c.a.is_uniform() && c.b.is_uniform()) {
                return Err("loop guard not uniform");
            }
            Ok((c.cmp, c.t, c.a.b.clone(), c.b.b.clone()))
        };
        let (cmp1, t1, va1, vb1) = guard_of(env1)?;
        // discovery pass: the body's write set (decisions are truth-driven
        // and taint-independent, so the path — and thus the set — matches
        // the checked passes; under-tainting here can only hide an error
        // the checked passes will hit anyway)
        let w = {
            let mut probe = env1.clone();
            self.run_body(pc_h, pc_b, &mut probe, &BTreeSet::new())?
                .1
                .written
        };
        let mut e = env1.clone();
        let (acc_a, sa) = self.run_body(pc_h, pc_b, &mut e, &w)?;
        let e2 = e.clone();
        let (acc_b, sb) = self.run_body(pc_h, pc_b, &mut e, &w)?;
        let e3 = e.clone();
        let (acc_c, sc) = self.run_body(pc_h, pc_b, &mut e, &w)?;
        let e4 = e;
        let (cmp2, t2, va2, vb2) = guard_of(&e2)?;
        let (cmp3, t3, va3, vb3) = guard_of(&e3)?;
        let (cmp4, t4, va4, vb4) = guard_of(&e4)?;
        let stable_cmp = [cmp2, cmp3, cmp4]
            .iter()
            .all(|c| discriminant(c) == discriminant(&cmp1))
            && [t2, t3, t4]
                .iter()
                .all(|t| discriminant(t) == discriminant(&t1));
        if !stable_cmp {
            return Err("loop guard comparison unstable");
        }
        if acc_a != acc_b || acc_b != acc_c {
            return Err("loop body cost unstable");
        }
        if sa.seq != sb.seq || sb.seq != sc.seq {
            return Err("loop body decisions unstable");
        }
        if sa.written != w || sb.written != w || sc.written != w {
            return Err("loop body write set unstable");
        }
        if sa.pwritten != sb.pwritten || sb.pwritten != sc.pwritten {
            return Err("loop body predicate set unstable");
        }
        if e2.taint != e3.taint || e3.taint != e4.taint {
            return Err("loop body taint pattern unstable");
        }
        let ptaints = |env: &SEnv| -> Vec<Option<bool>> {
            env.preds
                .iter()
                .map(|p| p.as_ref().map(|s| s.tainted))
                .collect()
        };
        if ptaints(&e2) != ptaints(&e3) || ptaints(&e3) != ptaints(&e4) {
            return Err("loop body predicate taint unstable");
        }
        let delta3 =
            |x1: &ArgPoly, x2: &ArgPoly, x3: &ArgPoly, x4: &ArgPoly| -> Result<ArgPoly, Bail> {
                let d1 = x2.sub(x1).ok_or("loop delta overflow")?;
                let d2 = x3.sub(x2).ok_or("loop delta overflow")?;
                let d3 = x4.sub(x3).ok_or("loop delta overflow")?;
                if d1 != d2 || d2 != d3 {
                    return Err("loop guard drift nonlinear");
                }
                Ok(d1)
            };
        let dva = delta3(&va1, &va2, &va3, &va4)?;
        let dvb = delta3(&vb1, &vb2, &vb3, &vb4)?;
        // every untainted affine register the body writes must translate
        // by a constant delta (the affine-map fixed point that makes the
        // linear extrapolation exact for all iterations)
        for &r in &w {
            let r = r as usize;
            if e4.taint[r] {
                continue; // tainted values never drive decisions
            }
            let vs = [&env1.regs[r], &e2.regs[r], &e3.regs[r], &e4.regs[r]];
            if vs.iter().all(|v| matches!(v, SVal::Lin(_))) {
                let lin = |v: &SVal| match v {
                    SVal::Lin(l) => l.clone(),
                    _ => unreachable!(),
                };
                let d1 = lin(vs[1]).sub(&lin(vs[0])).ok_or("loop delta overflow")?;
                let d2 = lin(vs[2]).sub(&lin(vs[1])).ok_or("loop delta overflow")?;
                let d3 = lin(vs[3]).sub(&lin(vs[2])).ok_or("loop delta overflow")?;
                if d1 != d2 || d2 != d3 {
                    return Err("loop register drift nonlinear");
                }
            } else if !(vs.iter().all(|v| matches!(v, SVal::F32(_)))
                || vs.iter().all(|v| matches!(v, SVal::Unknown)))
            {
                // mixed kinds: structure not provably stable. (All-float
                // and all-unknown are fine: floats cannot justify
                // decisions — their predicates carry no cond — and
                // unknowns reject them.)
                return Err("loop register kind unstable");
            }
        }
        // exit state: post-loop values are opaque and tainted (sound:
        // any decision on them falls back; counting never reads them)
        let mut exit_env = env1.clone();
        for &r in &w {
            exit_env.regs[r as usize] = SVal::Unknown;
            exit_env.taint[r as usize] = true;
        }
        for &p in &sa.pwritten {
            exit_env.preds[p as usize] = Some(SPred::opaque(true));
        }
        let next = self.compile_from(pc_b + 1, exit_env, depth + 1)?;
        self.push(PNode::Loop {
            cmp: cmp1,
            t: t1,
            neg,
            va1,
            dva,
            vb1,
            dvb,
            body_count: acc_a.count,
            body_cat: Box::new(acc_a.by_cat),
            body_params: acc_a.params,
            next,
        })
    }
}

/// Compile a decoded kernel to a [`KernelPoly`], optionally restricted
/// to the branch slice `G_v*` (must match the slice the interpreter mode
/// in use runs with, so off-slice semantics line up). `Err` means "keep
/// using the interpreter for this kernel" and is counted in
/// `ptx.poly.fallbacks`.
pub fn compile_kernel(
    program: &DenseProgram,
    slice: Option<&HashSet<usize>>,
) -> Result<KernelPoly, &'static str> {
    POLY_ATTEMPTS.inc();
    let evaluate = match slice {
        None => vec![true; program.len()],
        Some(s) => (0..program.len()).map(|pc| s.contains(&pc)).collect(),
    };
    let mut c = Compiler {
        prog: program,
        evaluate,
        nodes: Vec::new(),
        sym_steps: 0,
    };
    match c.compile_from(0, SEnv::new(program), 0) {
        Ok(root) => {
            POLY_COMPILED.inc();
            Ok(KernelPoly {
                nodes: c.nodes,
                root,
                ntid: program.ntid(),
                kernel_name: program.kernel_name().to_string(),
                param_names: program.param_names.clone(),
            })
        }
        Err(e) => {
            POLY_FALLBACKS.inc();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;
    use crate::slice::branch_slice;
    use ptx::builder::KernelBuilder;
    use ptx::inst::{Address, Operand};
    use ptx::types::{Space, SpecialReg};
    use ptx::Kernel;
    use std::sync::Arc;

    fn guard_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("k", 256);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(1.0));
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    fn loop_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("lk", 128);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        kb.counted_loop(n, |kb, i| {
            let acc = kb.r();
            kb.bin(BinOp::Add, Type::U32, acc, i, Operand::ImmI(7));
        });
        kb.ret();
        kb.finish()
    }

    /// Assert poly and interpreter agree exactly (outcome or error) for
    /// one launch point, and return the poly-side result.
    fn assert_parity(
        kp: &KernelPoly,
        m: &Machine,
        nctaid: u64,
        ctaid: u64,
        tid: u32,
        args: &[u64],
        max_steps: u64,
    ) {
        let got = kp.eval_thread(nctaid, ctaid, tid, args, max_steps);
        let want = m.run(ctaid, tid);
        match (got, want) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "outcome mismatch at ({ctaid},{tid})"),
            (Err(PolyBail::Exec(a)), Err(b)) => {
                assert_eq!(a, b, "error mismatch at ({ctaid},{tid})")
            }
            (g, w) => panic!("shape mismatch at ({ctaid},{tid}): poly={g:?} interp={w:?}"),
        }
    }

    #[test]
    fn guard_kernel_matches_interpreter() {
        let k = guard_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).expect("affine guard compiles");
        for &n in &[0u64, 1, 255, 700, 1024, 4096] {
            let m = Machine::from_program(prog.clone(), 4, &[n]);
            for ctaid in 0..4 {
                for &tid in &[0u32, 1, 127, 254, 255] {
                    assert_parity(&kp, &m, 4, ctaid, tid, &[n], u64::MAX);
                }
            }
        }
    }

    #[test]
    fn guard_kernel_matches_under_slice() {
        let k = guard_kernel();
        let slice = branch_slice(&k);
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, Some(&slice)).expect("sliced guard compiles");
        let m = Machine::from_program(prog.clone(), 4, &[700]).with_slice(slice);
        for ctaid in 0..4 {
            for &tid in &[0u32, 63, 255] {
                assert_parity(&kp, &m, 4, ctaid, tid, &[700], u64::MAX);
            }
        }
    }

    #[test]
    fn counted_loop_matches_all_trip_counts() {
        let k = loop_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).expect("affine loop compiles");
        for &n in &[0u64, 1, 2, 3, 9, 100, 10_000] {
            let m = Machine::from_program(prog.clone(), 2, &[n]);
            assert_parity(&kp, &m, 2, 0, 0, &[n], u64::MAX);
            assert_parity(&kp, &m, 2, 1, 127, &[n], u64::MAX);
        }
    }

    #[test]
    fn step_limit_payload_is_identical() {
        let k = loop_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).unwrap();
        // limits that land before, inside and after the loop
        for limit in 1..40u64 {
            let mut m = Machine::from_program(prog.clone(), 1, &[5]);
            m.set_max_steps(limit);
            assert_parity(&kp, &m, 1, 0, 0, &[5], limit);
        }
    }

    #[test]
    fn unknown_param_payload_is_identical() {
        let k = guard_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).unwrap();
        let m = Machine::from_program(prog.clone(), 2, &[]);
        assert_parity(&kp, &m, 2, 0, 0, &[], u64::MAX);
    }

    #[test]
    fn u32_wrapping_arg_falls_back() {
        // 2^32 + 5 stored in a u64 arg read as u32: the interpreter's
        // comparisons wrap to `i < 5` (5 trips), while the unwrapped
        // linear trajectory would run 2^32 + 5 trips. The guard bound
        // leaves the u32 range, so the evaluator must refuse and send the
        // launch to the interpreter rather than extrapolate.
        let k = loop_kernel();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).unwrap();
        let n = (1u64 << 32) + 5;
        match kp.eval_thread(1, 0, 0, &[n], u64::MAX) {
            Err(PolyBail::Unsupported(_)) => {}
            other => panic!("expected range fallback, got {other:?}"),
        }
        // the wrapped guard that skips the loop entirely stays exact
        let m = Machine::from_program(prog.clone(), 1, &[1u64 << 33]);
        assert_parity(&kp, &m, 1, 0, 0, &[1u64 << 33], u64::MAX);
    }

    #[test]
    fn data_dependent_branch_fails_compilation() {
        let mut kb = KernelBuilder::new("dd", 32);
        let p = kb.param("buf", Type::U64);
        let a = kb.rd();
        kb.mov(Type::U64, a, Operand::ImmI(0));
        let v = kb.r();
        kb.ld(Space::Global, Type::U32, v, Address::reg(a));
        let pr = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, pr, v, Operand::ImmI(10));
        let done = kb.label();
        kb.bra_if(pr, false, done);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(0.0));
        kb.place_label(done);
        kb.ret();
        let k = kb.finish();
        let _ = p;
        let prog = DenseProgram::decode(&k);
        assert!(
            compile_kernel(&prog, None).is_err(),
            "data-dependent branch must fall back"
        );
    }

    #[test]
    fn nested_affine_body_ops_close() {
        // loop body with mad/mul/shl over the induction variable: values
        // drift affinely, so the loop must still close
        let mut kb = KernelBuilder::new("nested", 64);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let gid = kb.global_id();
        kb.counted_loop(n, |kb, i| {
            let x = kb.r();
            kb.mad(Type::U32, x, i, gid, Operand::ImmI(3));
            let y = kb.r();
            kb.bin(BinOp::Shl, Type::U32, y, x, Operand::ImmI(2));
        });
        kb.ret();
        let k = kb.finish();
        let prog = Arc::new(DenseProgram::decode(&k));
        let kp = compile_kernel(&prog, None).expect("affine body must close");
        for &n in &[0u64, 1, 17] {
            let m = Machine::from_program(prog.clone(), 3, &[n]);
            for ctaid in 0..3 {
                assert_parity(&kp, &m, 3, ctaid, 5, &[n], u64::MAX);
            }
        }
    }

    #[test]
    fn tid_sloped_loop_guard_falls_back() {
        // softmax-style strided loop: induction starts at tid, so the
        // guard is not uniform — must refuse to compile
        let mut kb = KernelBuilder::new("strided", 128);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let i = kb.r();
        let tid = kb.special(SpecialReg::TidX);
        kb.mov(Type::U32, i, tid);
        let head = kb.label();
        let done = kb.label();
        let p0 = kb.p();
        kb.setp(CmpOp::Ge, Type::U32, p0, i, n);
        kb.bra_if(p0, false, done);
        kb.place_label(head);
        kb.bin(BinOp::Add, Type::U32, i, i, Operand::ImmI(128));
        let pr = kb.p();
        kb.setp(CmpOp::Lt, Type::U32, pr, i, n);
        kb.bra_if(pr, false, head);
        kb.place_label(done);
        kb.ret();
        let k = kb.finish();
        let prog = DenseProgram::decode(&k);
        assert!(
            compile_kernel(&prog, None).is_err(),
            "tid-sloped loop guard must fall back"
        );
    }
}
