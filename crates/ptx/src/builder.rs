//! Ergonomic construction of PTX kernels, used by the CNN code generator.
//!
//! The builder hands out fresh virtual registers per class, tracks labels,
//! and offers one emit method per opcode family. Loops and guards are
//! expressed with explicit labels, exactly as the NVPTX backend lays them
//! out (compare the paper's Fig. 2).

use crate::inst::{Address, BodyElem, Instruction, LabelId, Op, Operand};
use crate::kernel::{Kernel, KernelParam};
use crate::types::{BinOp, CmpOp, Reg, RegClass, Space, SpecialReg, Type, UnOp};

/// Builder for one kernel.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<KernelParam>,
    reqntid: (u32, u32, u32),
    shared_bytes: u32,
    body: Vec<BodyElem>,
    next_reg: [u32; 4],
    next_label: LabelId,
    /// Active guard applied to emitted instructions.
    guard: Option<(Reg, bool)>,
}

impl KernelBuilder {
    pub fn new(name: impl Into<String>, block_threads: u32) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            reqntid: (block_threads, 1, 1),
            shared_bytes: 0,
            body: Vec::new(),
            next_reg: [0; 4],
            next_label: 0,
            guard: None,
        }
    }

    /// Declare a kernel parameter; returns its name for address formation.
    pub fn param(&mut self, name: &str, t: Type) -> String {
        let full = format!("{}_param_{}", self.name, self.params.len());
        let _ = name; // semantic name kept in the tag; PTX uses positional names
        self.params.push(KernelParam {
            name: full.clone(),
            t,
        });
        full
    }

    /// Reserve static shared memory; returns the byte offset of the region.
    pub fn shared(&mut self, bytes: u32) -> u32 {
        let off = self.shared_bytes;
        self.shared_bytes += bytes;
        off
    }

    fn fresh(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::R => 0,
            RegClass::Rd => 1,
            RegClass::F => 2,
            RegClass::P => 3,
        };
        let idx = self.next_reg[slot];
        self.next_reg[slot] += 1;
        Reg::new(class, idx)
    }

    pub fn r(&mut self) -> Reg {
        self.fresh(RegClass::R)
    }

    pub fn rd(&mut self) -> Reg {
        self.fresh(RegClass::Rd)
    }

    pub fn f(&mut self) -> Reg {
        self.fresh(RegClass::F)
    }

    pub fn p(&mut self) -> Reg {
        self.fresh(RegClass::P)
    }

    /// Allocate a label (emit it later with [`Self::place_label`]).
    pub fn label(&mut self) -> LabelId {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    pub fn place_label(&mut self, l: LabelId) {
        self.body.push(BodyElem::Label(l));
    }

    fn emit(&mut self, op: Op) {
        self.body.push(BodyElem::Inst(Instruction {
            op,
            guard: self.guard,
        }));
    }

    /// Run `f` with all emitted instructions guarded by `@p` (or `@!p`).
    pub fn with_guard<T>(&mut self, p: Reg, negated: bool, f: impl FnOnce(&mut Self) -> T) -> T {
        let prev = self.guard.replace((p, negated));
        let out = f(self);
        self.guard = prev;
        out
    }

    // ---- instruction emitters ----

    pub fn mov(&mut self, t: Type, dst: Reg, src: impl Into<Operand>) {
        self.emit(Op::Mov {
            t,
            dst,
            src: src.into(),
        });
    }

    /// `mov` from a special register into a fresh u32 register.
    pub fn special(&mut self, s: SpecialReg) -> Reg {
        let dst = self.r();
        self.mov(Type::U32, dst, Operand::Special(s));
        dst
    }

    pub fn ld(&mut self, space: Space, t: Type, dst: Reg, addr: Address) {
        self.emit(Op::Ld {
            space,
            t,
            dst,
            addr,
        });
    }

    /// `ld.param` into a fresh register of the matching class.
    pub fn ld_param(&mut self, pname: &str, t: Type) -> Reg {
        let dst = match t {
            Type::U64 => self.rd(),
            Type::F32 => self.f(),
            _ => self.r(),
        };
        self.ld(Space::Param, t, dst, Address::param(pname));
        dst
    }

    pub fn st(&mut self, space: Space, t: Type, addr: Address, src: impl Into<Operand>) {
        self.emit(Op::St {
            space,
            t,
            src: src.into(),
            addr,
        });
    }

    pub fn bin(
        &mut self,
        op: BinOp,
        t: Type,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.emit(Op::Bin {
            op,
            t,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Fresh-register binary op helper.
    pub fn bin_r(
        &mut self,
        op: BinOp,
        t: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let dst = match t {
            Type::U64 => self.rd(),
            Type::F32 => self.f(),
            _ => self.r(),
        };
        self.bin(op, t, dst, a, b);
        dst
    }

    pub fn un(&mut self, op: UnOp, t: Type, dst: Reg, a: impl Into<Operand>) {
        self.emit(Op::Un {
            op,
            t,
            dst,
            a: a.into(),
        });
    }

    pub fn mad(
        &mut self,
        t: Type,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.emit(Op::Mad {
            t,
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
    }

    pub fn cvt(&mut self, to: Type, from: Type, dst: Reg, src: impl Into<Operand>) {
        self.emit(Op::Cvt {
            to,
            from,
            dst,
            src: src.into(),
        });
    }

    pub fn setp(
        &mut self,
        cmp: CmpOp,
        t: Type,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.emit(Op::Setp {
            cmp,
            t,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    pub fn selp(
        &mut self,
        t: Type,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        p: Reg,
    ) {
        self.emit(Op::Selp {
            t,
            dst,
            a: a.into(),
            b: b.into(),
            p,
        });
    }

    pub fn bra(&mut self, target: LabelId) {
        self.emit(Op::Bra { target, uni: false });
    }

    pub fn bra_uni(&mut self, target: LabelId) {
        self.emit(Op::Bra { target, uni: true });
    }

    /// Conditional branch: `@p bra target` (or `@!p`).
    pub fn bra_if(&mut self, p: Reg, negated: bool, target: LabelId) {
        self.body.push(BodyElem::Inst(Instruction::guarded(
            Op::Bra { target, uni: false },
            p,
            negated,
        )));
    }

    pub fn bar(&mut self) {
        self.emit(Op::Bar);
    }

    pub fn ret(&mut self) {
        self.emit(Op::Ret);
    }

    // ---- common idioms ----

    /// Compute the linear global thread id `gid = ctaid.x * ntid.x + tid.x`
    /// using the shl/or idiom of the paper's Fig. 2 when the block size is a
    /// power of two, falling back to `mad` otherwise.
    pub fn global_id(&mut self) -> Reg {
        let ctaid = self.special(SpecialReg::CtaIdX);
        let tid = self.special(SpecialReg::TidX);
        let ntid = self.reqntid.0;
        if ntid.is_power_of_two() {
            let shift = ntid.trailing_zeros();
            let hi = self.bin_r(BinOp::Shl, Type::B32, ctaid, Operand::ImmI(shift as i64));
            self.bin_r(BinOp::Or, Type::B32, tid, hi)
        } else {
            let dst = self.r();
            self.mad(Type::S32, dst, ctaid, Operand::ImmI(ntid as i64), tid);
            dst
        }
    }

    /// Emit the standard bounds-guard prologue: returns `(gid, skip_label)`.
    /// Threads with `gid >= bound_reg` jump to `skip_label` (placed by the
    /// caller right before `ret`).
    pub fn guard_gid(&mut self, bound: impl Into<Operand>) -> (Reg, LabelId) {
        let gid = self.global_id();
        let p = self.p();
        self.setp(CmpOp::Ge, Type::U32, p, gid, bound);
        let skip = self.label();
        self.bra_if(p, false, skip);
        (gid, skip)
    }

    /// Emit a counted loop running `body` with the loop counter register.
    /// The trip count is read from `count` (a register or immediate). The
    /// loop is a standard `do/while` with a pre-check, matching NVPTX
    /// layout.
    pub fn counted_loop(
        &mut self,
        count: impl Into<Operand> + Copy,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let i = self.r();
        self.mov(Type::U32, i, Operand::ImmI(0));
        // pre-check: skip entirely when count == 0
        let p0 = self.p();
        self.setp(CmpOp::Eq, Type::U32, p0, count, Operand::ImmI(0));
        let done = self.label();
        self.bra_if(p0, false, done);
        let head = self.label();
        self.place_label(head);
        body(self, i);
        self.bin(BinOp::Add, Type::U32, i, i, Operand::ImmI(1));
        let p = self.p();
        self.setp(CmpOp::Lt, Type::U32, p, i, count);
        self.bra_if(p, false, head);
        self.place_label(done);
    }

    /// Finish the kernel.
    pub fn finish(self) -> Kernel {
        Kernel {
            name: self.name,
            params: self.params,
            reqntid: self.reqntid,
            shared_bytes: self.shared_bytes,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer;

    #[test]
    fn fig2_idiom_for_pow2_blocks() {
        let mut kb = KernelBuilder::new("k", 256);
        let (gid, skip) = kb.guard_gid(Operand::ImmI(1000));
        let _ = gid;
        kb.place_label(skip);
        kb.ret();
        let k = kb.finish();
        let text = printer::kernel(&k);
        assert!(text.contains("shl.b32"), "expected shl idiom:\n{text}");
        assert!(text.contains("or.b32"), "expected or idiom:\n{text}");
        assert!(text.contains("setp.ge.u32"));
    }

    #[test]
    fn mad_idiom_for_non_pow2_blocks() {
        let mut kb = KernelBuilder::new("k", 192);
        let _ = kb.global_id();
        kb.ret();
        let k = kb.finish();
        let text = printer::kernel(&k);
        assert!(text.contains("mad.lo.s32"), "expected mad idiom:\n{text}");
    }

    #[test]
    fn counted_loop_shape() {
        let mut kb = KernelBuilder::new("k", 128);
        let n = kb.ld_param("k_param_0", Type::U32);
        kb.counted_loop(n, |kb, _i| {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(0.0));
        });
        kb.ret();
        let k = kb.finish();
        // loop: mov i, pre-check setp+bra, label, body mov, add, setp, bra, done label
        assert_eq!(k.num_instructions(), 9);
        let labels: Vec<_> = k
            .body
            .iter()
            .filter(|e| matches!(e, BodyElem::Label(_)))
            .collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn with_guard_applies_and_restores() {
        let mut kb = KernelBuilder::new("k", 64);
        let p = kb.p();
        let f = kb.f();
        kb.with_guard(p, true, |kb| {
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.mov(Type::F32, f, Operand::ImmF(2.0));
        kb.ret();
        let k = kb.finish();
        let insts: Vec<_> = k.instructions().collect();
        assert_eq!(insts[0].guard, Some((p, true)));
        assert_eq!(insts[1].guard, None);
    }

    #[test]
    fn shared_allocation_is_sequential() {
        let mut kb = KernelBuilder::new("k", 64);
        assert_eq!(kb.shared(1024), 0);
        assert_eq!(kb.shared(512), 1024);
        kb.ret();
        assert_eq!(kb.finish().shared_bytes, 1536);
    }

    #[test]
    fn params_are_positional() {
        let mut kb = KernelBuilder::new("gemm", 256);
        let a = kb.param("a", Type::U64);
        let b = kb.param("b", Type::U64);
        assert_eq!(a, "gemm_param_0");
        assert_eq!(b, "gemm_param_1");
    }
}
