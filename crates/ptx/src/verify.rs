//! Kernel verification: structural well-formedness checks run on every
//! module the code generator emits (and on anything the parser accepts).
//!
//! Checks:
//! - every branch target resolves to a label in the body,
//! - every register is defined before use on every forward path
//!   (loop-carried uses are allowed only for registers initialized before
//!   the loop head — approximated by a dominance-free forward scan),
//! - register classes match operand positions (predicates guard, etc.),
//! - `ld.param` names refer to declared parameters,
//! - the body terminates in `ret` and contains no unreachable trailing
//!   instructions after an unconditional terminator (except labels).

use crate::inst::{AddrBase, BodyElem, Op};
use crate::kernel::{Kernel, Module};
use crate::types::{Reg, RegClass};
use std::collections::HashSet;
use std::fmt;

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    UnresolvedLabel {
        kernel: String,
        target: u32,
    },
    UseBeforeDef {
        kernel: String,
        pc: usize,
        reg: Reg,
    },
    GuardNotPredicate {
        kernel: String,
        pc: usize,
        reg: Reg,
    },
    UnknownParam {
        kernel: String,
        pc: usize,
        name: String,
    },
    MissingRet {
        kernel: String,
    },
    EmptyBody {
        kernel: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnresolvedLabel { kernel, target } => {
                write!(f, "{kernel}: branch to undefined label LBB0_{target}")
            }
            VerifyError::UseBeforeDef { kernel, pc, reg } => {
                write!(
                    f,
                    "{kernel}: instruction {pc} reads {reg} before any definition"
                )
            }
            VerifyError::GuardNotPredicate { kernel, pc, reg } => {
                write!(
                    f,
                    "{kernel}: instruction {pc} guarded by non-predicate {reg}"
                )
            }
            VerifyError::UnknownParam { kernel, pc, name } => {
                write!(
                    f,
                    "{kernel}: instruction {pc} loads undeclared param '{name}'"
                )
            }
            VerifyError::MissingRet { kernel } => {
                write!(f, "{kernel}: body does not end in ret")
            }
            VerifyError::EmptyBody { kernel } => write!(f, "{kernel}: empty body"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify one kernel; returns all failures found.
pub fn verify_kernel(kernel: &Kernel) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let name = &kernel.name;

    let instrs: Vec<_> = kernel.instructions().collect();
    if instrs.is_empty() {
        errors.push(VerifyError::EmptyBody {
            kernel: name.clone(),
        });
        return errors;
    }
    if !matches!(instrs.last().expect("non-empty").op, Op::Ret) {
        errors.push(VerifyError::MissingRet {
            kernel: name.clone(),
        });
    }

    // label resolution
    let labels: HashSet<u32> = kernel
        .body
        .iter()
        .filter_map(|e| match e {
            BodyElem::Label(l) => Some(*l),
            _ => None,
        })
        .collect();
    for inst in &instrs {
        if let Op::Bra { target, .. } = &inst.op {
            if !labels.contains(target) {
                errors.push(VerifyError::UnresolvedLabel {
                    kernel: name.clone(),
                    target: *target,
                });
            }
        }
    }

    // param names
    let params: HashSet<&str> = kernel.params.iter().map(|p| p.name.as_str()).collect();
    for (pc, inst) in instrs.iter().enumerate() {
        if let Op::Ld {
            space: crate::types::Space::Param,
            addr,
            ..
        } = &inst.op
        {
            if let AddrBase::Param(p) = &addr.base {
                if !params.contains(p.as_str()) {
                    errors.push(VerifyError::UnknownParam {
                        kernel: name.clone(),
                        pc,
                        name: p.clone(),
                    });
                }
            }
        }
    }

    // guards must be predicate-class
    for (pc, inst) in instrs.iter().enumerate() {
        if let Some((g, _)) = inst.guard {
            if g.class != RegClass::P {
                errors.push(VerifyError::GuardNotPredicate {
                    kernel: name.clone(),
                    pc,
                    reg: g,
                });
            }
        }
    }

    // def-before-use: forward scan; a register is "defined" once any
    // earlier instruction (in program order) wrote it. Back edges only
    // re-enter code whose defs were already scanned, so program order is a
    // sound over-approximation for the single-pass builder output.
    let mut defined: HashSet<Reg> = HashSet::new();
    for (pc, inst) in instrs.iter().enumerate() {
        for src in inst.srcs() {
            if !defined.contains(&src) {
                // operands produced later on a loop path: treat as error —
                // our builder always initializes before the loop head
                errors.push(VerifyError::UseBeforeDef {
                    kernel: name.clone(),
                    pc,
                    reg: src,
                });
            }
        }
        if let Some(d) = inst.dst() {
            defined.insert(d);
        }
    }

    errors
}

/// Verify every kernel of a module.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    module.kernels.iter().flat_map(verify_kernel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::inst::{Address, Instruction, Operand};
    use crate::types::{Space, Type};

    #[test]
    fn well_formed_kernel_passes() {
        let mut kb = KernelBuilder::new("k", 64);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        kb.place_label(exit);
        kb.ret();
        assert!(verify_kernel(&kb.finish()).is_empty());
    }

    #[test]
    fn detects_unresolved_label() {
        let mut kb = KernelBuilder::new("k", 64);
        kb.bra_uni(99);
        kb.ret();
        let errs = verify_kernel(&kb.finish());
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnresolvedLabel { target: 99, .. })));
    }

    #[test]
    fn detects_use_before_def() {
        let mut kb = KernelBuilder::new("k", 64);
        let ghost = Reg::new(RegClass::F, 7);
        let dst = kb.f();
        kb.bin(
            crate::types::BinOp::Add,
            Type::F32,
            dst,
            ghost,
            Operand::ImmF(1.0),
        );
        kb.ret();
        let errs = verify_kernel(&kb.finish());
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UseBeforeDef { reg, .. } if *reg == ghost)));
    }

    #[test]
    fn detects_unknown_param() {
        let mut kb = KernelBuilder::new("k", 64);
        let dst = kb.rd();
        kb.ld(Space::Param, Type::U64, dst, Address::param("nope"));
        kb.ret();
        let errs = verify_kernel(&kb.finish());
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnknownParam { .. })));
    }

    #[test]
    fn detects_missing_ret() {
        let mut kb = KernelBuilder::new("k", 64);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(0.0));
        let errs = verify_kernel(&kb.finish());
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::MissingRet { .. })));
    }

    #[test]
    fn detects_bad_guard_class() {
        let mut kb = KernelBuilder::new("k", 64);
        let f = kb.f();
        kb.mov(Type::F32, f, Operand::ImmF(0.0));
        let mut k = kb.finish();
        // splice in an instruction guarded by a float register
        k.body.insert(
            1,
            BodyElem::Inst(Instruction::guarded(
                Op::Mov {
                    t: Type::F32,
                    dst: Reg::new(RegClass::F, 1),
                    src: Operand::ImmF(1.0),
                },
                Reg::new(RegClass::F, 0),
                false,
            )),
        );
        k.body.push(BodyElem::Inst(Instruction::new(Op::Ret)));
        let errs = verify_kernel(&k);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::GuardNotPredicate { .. })));
    }

    #[test]
    fn empty_body_is_an_error() {
        let k = Kernel {
            name: "empty".into(),
            params: vec![],
            reqntid: (32, 1, 1),
            shared_bytes: 0,
            body: vec![],
        };
        assert!(matches!(
            verify_kernel(&k).as_slice(),
            [VerifyError::EmptyBody { .. }]
        ));
    }
}
