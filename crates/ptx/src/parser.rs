//! A parser for the PTX subset emitted by [`crate::printer`] (and by
//! `nvcc`/XLA for the constructs of the paper's Fig. 2). The paper's dynamic
//! code analysis starts from PTX text; this parser turns it back into
//! structured [`Module`]s.

use crate::inst::{AddrBase, Address, BodyElem, Instruction, LabelId, Op, Operand};
use crate::kernel::{Kernel, KernelParam, Module};
use crate::types::{BinOp, CmpOp, Reg, RegClass, Space, SpecialReg, Type, UnOp};
use std::fmt;

/// Parse errors with line information. `line` is 1-based and always
/// within the input's line count (clamped to 1 for empty input), so it
/// can be surfaced to users and editors directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ptx parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_type(s: &str) -> Option<Type> {
    Some(match s {
        "pred" => Type::Pred,
        "u32" => Type::U32,
        "s32" => Type::S32,
        "u64" => Type::U64,
        "f32" => Type::F32,
        "b32" => Type::B32,
        // the printer never emits these, but nvcc does; widen conservatively
        "b64" => Type::U64,
        _ => return None,
    })
}

fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.strip_prefix('%')?;
    let (class, rest) = if let Some(r) = s.strip_prefix("rd") {
        (RegClass::Rd, r)
    } else if let Some(r) = s.strip_prefix('r') {
        (RegClass::R, r)
    } else if let Some(r) = s.strip_prefix('f') {
        (RegClass::F, r)
    } else if let Some(r) = s.strip_prefix('p') {
        (RegClass::P, r)
    } else {
        return None;
    };
    rest.parse().ok().map(|idx| Reg { class, idx })
}

fn parse_special(s: &str) -> Option<SpecialReg> {
    Some(match s {
        "%tid.x" => SpecialReg::TidX,
        "%tid.y" => SpecialReg::TidY,
        "%ctaid.x" => SpecialReg::CtaIdX,
        "%ctaid.y" => SpecialReg::CtaIdY,
        "%ntid.x" => SpecialReg::NTidX,
        "%ntid.y" => SpecialReg::NTidY,
        "%nctaid.x" => SpecialReg::NCtaIdX,
        "%nctaid.y" => SpecialReg::NCtaIdY,
        _ => return None,
    })
}

fn parse_operand(s: &str, line: usize) -> PResult<Operand> {
    let s = s.trim();
    if let Some(sp) = parse_special(s) {
        return Ok(Operand::Special(sp));
    }
    if let Some(r) = parse_reg(s) {
        return Ok(Operand::Reg(r));
    }
    if let Some(hex) = s.strip_prefix("0f") {
        let bits = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
            line,
            message: format!("bad float literal '{s}'"),
        })?;
        return Ok(Operand::ImmF(f32::from_bits(bits)));
    }
    match s.parse::<i64>() {
        Ok(v) => Ok(Operand::ImmI(v)),
        Err(_) => err(line, format!("unrecognized operand '{s}'")),
    }
}

fn parse_address(s: &str, line: usize) -> PResult<Address> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected [address], got '{s}'"),
        })?;
    // split on '+' or '-' (offset)
    let (base_s, off) = if let Some(pos) = inner.rfind('+') {
        (&inner[..pos], inner[pos + 1..].parse::<i64>().unwrap_or(0))
    } else if let Some(pos) = inner.rfind('-') {
        if pos == 0 {
            (inner, 0)
        } else {
            (
                &inner[..pos],
                -(inner[pos + 1..].parse::<i64>().unwrap_or(0)),
            )
        }
    } else {
        (inner, 0)
    };
    let base_s = base_s.trim();
    let base = if let Some(r) = parse_reg(base_s) {
        AddrBase::Reg(r)
    } else {
        AddrBase::Param(base_s.to_string())
    };
    Ok(Address { base, offset: off })
}

/// Split `a, b, c` respecting `[...]` brackets.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parse a label operand `LBB0_<n>`.
fn parse_label(s: &str, line: usize) -> PResult<LabelId> {
    s.trim()
        .strip_prefix("LBB0_")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad label '{s}'"),
        })
}

fn reg_arg(args: &[String], i: usize, line: usize) -> PResult<Reg> {
    args.get(i)
        .and_then(|s| parse_reg(s))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected register at position {i}"),
        })
}

/// Bounds-checked operand access: mutated/truncated input must surface as
/// a [`ParseError`], never an out-of-bounds panic.
fn arg(args: &[String], i: usize, line: usize) -> PResult<&str> {
    args.get(i).map(String::as_str).ok_or_else(|| ParseError {
        line,
        message: format!("missing operand at position {i}"),
    })
}

/// Parse one statement (guard already stripped) into an [`Op`].
fn parse_op(stmt: &str, line: usize) -> PResult<Op> {
    let stmt = stmt.trim().trim_end_matches(';').trim();
    let (mnemonic, rest) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => (stmt, ""),
    };
    let args = split_args(rest);
    let parts: Vec<&str> = mnemonic.split('.').collect();
    let base = parts[0];

    let last_type = || -> Option<Type> { parts.last().and_then(|s| parse_type(s)) };

    match base {
        "ret" => Ok(Op::Ret),
        "bar" => Ok(Op::Bar),
        "bra" => {
            let uni = parts.contains(&"uni");
            let target = parse_label(arg(&args, 0, line)?, line)?;
            Ok(Op::Bra { target, uni })
        }
        "mov" => {
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: "mov missing type".into(),
            })?;
            Ok(Op::Mov {
                t,
                dst: reg_arg(&args, 0, line)?,
                src: parse_operand(arg(&args, 1, line)?, line)?,
            })
        }
        "ld" | "st" => {
            let space = match parts.get(1) {
                Some(&"global") => Space::Global,
                Some(&"shared") => Space::Shared,
                Some(&"param") => Space::Param,
                Some(&"local") => Space::Local,
                other => {
                    return err(line, format!("bad space {other:?}"));
                }
            };
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: "ld/st missing type".into(),
            })?;
            if base == "ld" {
                Ok(Op::Ld {
                    space,
                    t,
                    dst: reg_arg(&args, 0, line)?,
                    addr: parse_address(arg(&args, 1, line)?, line)?,
                })
            } else {
                Ok(Op::St {
                    space,
                    t,
                    src: parse_operand(arg(&args, 1, line)?, line)?,
                    addr: parse_address(arg(&args, 0, line)?, line)?,
                })
            }
        }
        "setp" => {
            let cmp = parts
                .get(1)
                .and_then(|s| CmpOp::from_mnemonic(s))
                .ok_or_else(|| ParseError {
                    line,
                    message: "setp missing cmp".into(),
                })?;
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: "setp missing type".into(),
            })?;
            Ok(Op::Setp {
                cmp,
                t,
                dst: reg_arg(&args, 0, line)?,
                a: parse_operand(arg(&args, 1, line)?, line)?,
                b: parse_operand(arg(&args, 2, line)?, line)?,
            })
        }
        "selp" => {
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: "selp missing type".into(),
            })?;
            Ok(Op::Selp {
                t,
                dst: reg_arg(&args, 0, line)?,
                a: parse_operand(arg(&args, 1, line)?, line)?,
                b: parse_operand(arg(&args, 2, line)?, line)?,
                p: reg_arg(&args, 3, line)?,
            })
        }
        "mad" | "fma" => {
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: "mad/fma missing type".into(),
            })?;
            Ok(Op::Mad {
                t,
                dst: reg_arg(&args, 0, line)?,
                a: parse_operand(arg(&args, 1, line)?, line)?,
                b: parse_operand(arg(&args, 2, line)?, line)?,
                c: parse_operand(arg(&args, 3, line)?, line)?,
            })
        }
        "cvt" => {
            // cvt.<to>.<from>
            let to = parts.get(1).and_then(|s| parse_type(s));
            let from = parts.get(2).and_then(|s| parse_type(s));
            match (to, from) {
                (Some(to), Some(from)) => Ok(Op::Cvt {
                    to,
                    from,
                    dst: reg_arg(&args, 0, line)?,
                    src: parse_operand(arg(&args, 1, line)?, line)?,
                }),
                _ => err(line, "cvt missing types"),
            }
        }
        _ => {
            // binary / unary ALU
            let t = last_type().ok_or_else(|| ParseError {
                line,
                message: format!("unknown mnemonic '{mnemonic}'"),
            })?;
            let bin = match base {
                "add" => Some(BinOp::Add),
                "sub" => Some(BinOp::Sub),
                "mul" => {
                    if parts.contains(&"wide") {
                        Some(BinOp::MulWide)
                    } else {
                        Some(BinOp::Mul)
                    }
                }
                "div" => Some(BinOp::Div),
                "rem" => Some(BinOp::Rem),
                "min" => Some(BinOp::Min),
                "max" => Some(BinOp::Max),
                "shl" => Some(BinOp::Shl),
                "shr" => Some(BinOp::Shr),
                "and" => Some(BinOp::And),
                "or" => Some(BinOp::Or),
                "xor" => Some(BinOp::Xor),
                _ => None,
            };
            if let Some(op) = bin {
                return Ok(Op::Bin {
                    op,
                    t,
                    dst: reg_arg(&args, 0, line)?,
                    a: parse_operand(arg(&args, 1, line)?, line)?,
                    b: parse_operand(arg(&args, 2, line)?, line)?,
                });
            }
            let un = match base {
                "neg" => Some(UnOp::Neg),
                "abs" => Some(UnOp::Abs),
                "sqrt" => Some(UnOp::Sqrt),
                "rcp" => Some(UnOp::Rcp),
                "ex2" => Some(UnOp::Ex2),
                "lg2" => Some(UnOp::Lg2),
                "not" => Some(UnOp::Not),
                _ => None,
            };
            match un {
                Some(op) => Ok(Op::Un {
                    op,
                    t,
                    dst: reg_arg(&args, 0, line)?,
                    a: parse_operand(arg(&args, 1, line)?, line)?,
                }),
                None => err(line, format!("unknown mnemonic '{mnemonic}'")),
            }
        }
    }
}

/// Parse a statement with optional `@%p` / `@!%p` guard.
fn parse_statement(s: &str, line: usize) -> PResult<Instruction> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("@!") {
        let (p, tail) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseError {
                line,
                message: "guard without instruction".into(),
            })?;
        let p = parse_reg(p).ok_or_else(|| ParseError {
            line,
            message: format!("bad guard '{p}'"),
        })?;
        return Ok(Instruction::guarded(parse_op(tail, line)?, p, true));
    }
    if let Some(rest) = s.strip_prefix('@') {
        let (p, tail) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseError {
                line,
                message: "guard without instruction".into(),
            })?;
        let p = parse_reg(p).ok_or_else(|| ParseError {
            line,
            message: format!("bad guard '{p}'"),
        })?;
        return Ok(Instruction::guarded(parse_op(tail, line)?, p, false));
    }
    Ok(Instruction::new(parse_op(s, line)?))
}

/// Parse a full module from PTX text.
pub fn parse_module(text: &str) -> PResult<Module> {
    let mut module = Module::new("sm_61");
    let mut lines = text.lines().enumerate().peekable();

    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix(".version") {
            let v = v.trim();
            if let Some((a, b)) = v.split_once('.') {
                module.version = (a.trim().parse().unwrap_or(6), b.trim().parse().unwrap_or(0));
            }
        } else if let Some(t) = line.strip_prefix(".target") {
            module.target = t.trim().to_string();
        } else if let Some(a) = line.strip_prefix(".address_size") {
            module.address_size = a.trim().parse().unwrap_or(64);
        } else if line.starts_with(".visible .entry") || line.starts_with(".entry") {
            let kernel = parse_kernel(&line, ln + 1, &mut lines)?;
            module.kernels.push(kernel);
        }
        // other directives ignored
    }
    Ok(module)
}

fn strip_comment(s: &str) -> &str {
    match s.find("//") {
        Some(p) => &s[..p],
        None => s,
    }
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn parse_kernel(header: &str, header_ln: usize, lines: &mut Lines) -> PResult<Kernel> {
    // name: between ".entry" and "(" (possibly on this line)
    let after = header
        .split(".entry")
        .nth(1)
        .ok_or_else(|| ParseError {
            line: header_ln,
            message: "malformed .entry".into(),
        })?
        .trim();
    let name = after.trim_end_matches('(').trim().to_string();

    // parameters until ")"
    let mut params = Vec::new();
    for (ln, raw) in lines.by_ref() {
        let l = strip_comment(raw).trim().to_string();
        if l.starts_with(')') {
            break;
        }
        if let Some(rest) = l.strip_prefix(".param") {
            let rest = rest.trim().trim_end_matches(',');
            let mut it = rest.split_whitespace();
            let t = it
                .next()
                .and_then(|s| parse_type(s.trim_start_matches('.')))
                .ok_or_else(|| ParseError {
                    line: ln + 1,
                    message: "bad param type".into(),
                })?;
            let pname = it.next().unwrap_or("").to_string();
            params.push(KernelParam { name: pname, t });
        }
    }

    let mut reqntid = (256u32, 1u32, 1u32);
    let mut shared_bytes = 0u32;
    let mut body = Vec::new();
    let mut in_body = false;

    for (ln, raw) in lines.by_ref() {
        let l = strip_comment(raw).trim().to_string();
        if l.is_empty() {
            continue;
        }
        if let Some(r) = l.strip_prefix(".reqntid") {
            let dims: Vec<u32> = r.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            if !dims.is_empty() {
                reqntid = (
                    dims[0],
                    dims.get(1).copied().unwrap_or(1),
                    dims.get(2).copied().unwrap_or(1),
                );
            }
            continue;
        }
        if l.starts_with('{') {
            in_body = true;
            continue;
        }
        if l.starts_with('}') {
            break;
        }
        if !in_body {
            continue;
        }
        if l.starts_with(".reg") {
            continue; // reconstructed from the body
        }
        if l.starts_with(".shared") {
            // guard a < b: mutated input can put ']' before '['
            if let (Some(a), Some(b)) = (l.rfind('['), l.rfind(']')) {
                if a < b {
                    shared_bytes = l[a + 1..b].parse().unwrap_or(0);
                }
            }
            continue;
        }
        if let Some(label) = l.strip_suffix(':') {
            body.push(BodyElem::Label(parse_label(label, ln + 1)?));
            continue;
        }
        body.push(BodyElem::Inst(parse_statement(&l, ln + 1)?));
    }

    Ok(Kernel {
        name,
        params,
        reqntid,
        shared_bytes,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer;

    const FIG2_LIKE: &str = r#"
// Generated by LLVM NVPTX Back-End
.version 6.0
.target sm_61
.address_size 64

.visible .entry fusion_135(
    .param .u64 fusion_135_param_0
)
.reqntid 256, 1, 1
{
    .reg .pred %p<14>;
    .reg .b32 %r<17>;
    .reg .b64 %rd<11>;

    mov.u32 %r13, %ctaid.x;
    mov.u32 %r14, %tid.x;
    shl.b32 %r15, %r13, 10;
    shl.b32 %r16, %r14, 2;
    or.b32 %r1, %r16, %r15;
    setp.lt.u32 %p1, %r1, 718296;
    @%p1 bra LBB0_2;
    bra.uni LBB0_1;
LBB0_2:
    ld.param.u64 %rd10, [fusion_135_param_0];
LBB0_1:
    ret;
}
"#;

    #[test]
    fn parses_fig2_kernel() {
        let m = parse_module(FIG2_LIKE).unwrap();
        assert_eq!(m.kernels.len(), 1);
        let k = &m.kernels[0];
        assert_eq!(k.name, "fusion_135");
        assert_eq!(k.reqntid, (256, 1, 1));
        assert_eq!(k.params.len(), 1);
        assert_eq!(k.num_instructions(), 10);
        // the guard survives
        let guarded = k.instructions().filter(|i| i.guard.is_some()).count();
        assert_eq!(guarded, 1);
    }

    #[test]
    fn roundtrip_through_printer() {
        let m = parse_module(FIG2_LIKE).unwrap();
        let printed = printer::module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(m.kernels[0].body, m2.kernels[0].body);
        assert_eq!(m.kernels[0].params, m2.kernels[0].params);
        assert_eq!(m.kernels[0].reqntid, m2.kernels[0].reqntid);
    }

    #[test]
    fn rejects_garbage() {
        let bad = ".visible .entry k(\n)\n{\nfrobnicate.u32 %r1, %r2;\n}";
        assert!(parse_module(bad).is_err());
    }

    #[test]
    fn parses_negative_guard_and_offsets() {
        let src = r#"
.visible .entry k(
    .param .u64 k_param_0
)
{
    @!%p2 st.global.f32 [%rd1+64], %f1;
    ld.global.f32 %f2, [%rd1-4];
    ret;
}
"#;
        let m = parse_module(src).unwrap();
        let k = &m.kernels[0];
        let insts: Vec<_> = k.instructions().collect();
        assert_eq!(insts[0].guard, Some((Reg::new(RegClass::P, 2), true)));
        match &insts[0].op {
            Op::St { addr, .. } => assert_eq!(addr.offset, 64),
            other => panic!("expected st, got {other:?}"),
        }
        match &insts[1].op {
            Op::Ld { addr, .. } => assert_eq!(addr.offset, -4),
            other => panic!("expected ld, got {other:?}"),
        }
    }
}
