//! PTX instructions and operands.

use crate::types::{BinOp, CmpOp, Reg, Space, SpecialReg, Type, UnOp};
use serde::{Deserialize, Serialize};

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    Reg(Reg),
    /// Integer immediate (covers u32/s32/u64 encodings).
    ImmI(i64),
    /// Floating-point immediate.
    ImmF(f32),
    Special(SpecialReg),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl Operand {
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

/// A memory address: `[base + offset]` where base is a register, or a named
/// kernel parameter `[name + offset]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AddrBase {
    Reg(Reg),
    Param(String),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Address {
    pub base: AddrBase,
    pub offset: i64,
}

impl Address {
    pub fn reg(r: Reg) -> Self {
        Self {
            base: AddrBase::Reg(r),
            offset: 0,
        }
    }

    pub fn reg_off(r: Reg, offset: i64) -> Self {
        Self {
            base: AddrBase::Reg(r),
            offset,
        }
    }

    pub fn param(name: impl Into<String>) -> Self {
        Self {
            base: AddrBase::Param(name.into()),
            offset: 0,
        }
    }
}

/// Branch/label identifier within one kernel body.
pub type LabelId = u32;

/// Instruction operation. Every variant maps to a real PTX opcode family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// `mov.<t> dst, src`
    Mov { t: Type, dst: Reg, src: Operand },
    /// `ld.<space>.<t> dst, [addr]`
    Ld {
        space: Space,
        t: Type,
        dst: Reg,
        addr: Address,
    },
    /// `st.<space>.<t> [addr], src`
    St {
        space: Space,
        t: Type,
        src: Operand,
        addr: Address,
    },
    /// Two-operand ALU: `add/sub/mul/.../or.<t> dst, a, b`
    Bin {
        op: BinOp,
        t: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// One-operand ALU: `neg/abs/sqrt/....<t> dst, a`
    Un {
        op: UnOp,
        t: Type,
        dst: Reg,
        a: Operand,
    },
    /// Fused multiply-add: `fma.rn.f32` / `mad.lo.s32 dst, a, b, c`
    Mad {
        t: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `cvt.<to>.<from> dst, src`
    Cvt {
        to: Type,
        from: Type,
        dst: Reg,
        src: Operand,
    },
    /// `setp.<cmp>.<t> dst, a, b`
    Setp {
        cmp: CmpOp,
        t: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `selp.<t> dst, a, b, pred`
    Selp {
        t: Type,
        dst: Reg,
        a: Operand,
        b: Operand,
        p: Reg,
    },
    /// `bra` (`uni` marks non-divergent branches, as in the paper's Fig. 2)
    Bra { target: LabelId, uni: bool },
    /// `bar.sync 0`
    Bar,
    /// `ret`
    Ret,
}

/// Coarse instruction categories used by the instruction-mix model and the
/// GPU simulator's timing tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    IntAlu,
    FloatAlu,
    FloatFma,
    SpecialFunc,
    LoadGlobal,
    StoreGlobal,
    LoadShared,
    StoreShared,
    LoadParam,
    Control,
    Sync,
    Move,
    Convert,
    Compare,
}

impl Category {
    pub const ALL: [Category; 14] = [
        Category::IntAlu,
        Category::FloatAlu,
        Category::FloatFma,
        Category::SpecialFunc,
        Category::LoadGlobal,
        Category::StoreGlobal,
        Category::LoadShared,
        Category::StoreShared,
        Category::LoadParam,
        Category::Control,
        Category::Sync,
        Category::Move,
        Category::Convert,
        Category::Compare,
    ];
}

/// One instruction with an optional predicate guard (`@%p` / `@!%p`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    pub op: Op,
    /// `Some((p, negated))` executes only when `p == !negated`.
    pub guard: Option<(Reg, bool)>,
}

impl Instruction {
    pub fn new(op: Op) -> Self {
        Self { op, guard: None }
    }

    pub fn guarded(op: Op, p: Reg, negated: bool) -> Self {
        Self {
            op,
            guard: Some((p, negated)),
        }
    }

    /// The coarse category of this instruction.
    pub fn category(&self) -> Category {
        match &self.op {
            Op::Mov { .. } => Category::Move,
            Op::Ld { space, .. } => match space {
                Space::Global | Space::Local => Category::LoadGlobal,
                Space::Shared => Category::LoadShared,
                Space::Param => Category::LoadParam,
            },
            Op::St { space, .. } => match space {
                Space::Shared => Category::StoreShared,
                _ => Category::StoreGlobal,
            },
            Op::Bin { op, t, .. } => match op {
                BinOp::Div | BinOp::Rem if t.is_float() => Category::SpecialFunc,
                _ if t.is_float() => Category::FloatAlu,
                _ => Category::IntAlu,
            },
            Op::Un { op, .. } => match op {
                UnOp::Sqrt | UnOp::Rcp | UnOp::Ex2 | UnOp::Lg2 => Category::SpecialFunc,
                _ => Category::IntAlu,
            },
            Op::Mad { t, .. } => {
                if t.is_float() {
                    Category::FloatFma
                } else {
                    Category::IntAlu
                }
            }
            Op::Cvt { .. } => Category::Convert,
            Op::Setp { .. } => Category::Compare,
            Op::Selp { .. } => Category::Move,
            Op::Bra { .. } | Op::Ret => Category::Control,
            Op::Bar => Category::Sync,
        }
    }

    /// Destination register, if the instruction writes one.
    pub fn dst(&self) -> Option<Reg> {
        match &self.op {
            Op::Mov { dst, .. }
            | Op::Ld { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Mad { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::Setp { dst, .. }
            | Op::Selp { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Source registers read by this instruction (including the guard and
    /// address bases).
    pub fn srcs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(4);
        let mut push_op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match &self.op {
            Op::Mov { src, .. } => push_op(src),
            Op::Ld { addr, .. } => {
                if let AddrBase::Reg(r) = &addr.base {
                    out.push(*r);
                }
            }
            Op::St { src, addr, .. } => {
                push_op(src);
                if let AddrBase::Reg(r) = &addr.base {
                    out.push(*r);
                }
            }
            Op::Bin { a, b, .. } | Op::Setp { a, b, .. } => {
                push_op(a);
                push_op(b);
            }
            Op::Un { a, .. } => push_op(a),
            Op::Mad { a, b, c, .. } => {
                push_op(a);
                push_op(b);
                push_op(c);
            }
            Op::Cvt { src, .. } => push_op(src),
            Op::Selp { a, b, p, .. } => {
                push_op(a);
                push_op(b);
                out.push(*p);
            }
            Op::Bra { .. } | Op::Bar | Op::Ret => {}
        }
        if let Some((p, _)) = self.guard {
            out.push(p);
        }
        out
    }

    /// True for instructions that terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self.op, Op::Bra { .. } | Op::Ret)
    }
}

/// An element of a kernel body: either a label definition or an instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BodyElem {
    Label(LabelId),
    Inst(Instruction),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegClass;

    fn r(i: u32) -> Reg {
        Reg::new(RegClass::R, i)
    }

    fn f(i: u32) -> Reg {
        Reg::new(RegClass::F, i)
    }

    #[test]
    fn categories() {
        let fma = Instruction::new(Op::Mad {
            t: Type::F32,
            dst: f(0),
            a: f(1).into(),
            b: f(2).into(),
            c: f(0).into(),
        });
        assert_eq!(fma.category(), Category::FloatFma);

        let imad = Instruction::new(Op::Mad {
            t: Type::S32,
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
            c: r(0).into(),
        });
        assert_eq!(imad.category(), Category::IntAlu);

        let ld = Instruction::new(Op::Ld {
            space: Space::Global,
            t: Type::F32,
            dst: f(1),
            addr: Address::reg(Reg::new(RegClass::Rd, 0)),
        });
        assert_eq!(ld.category(), Category::LoadGlobal);

        let bra = Instruction::new(Op::Bra {
            target: 0,
            uni: true,
        });
        assert_eq!(bra.category(), Category::Control);
        assert!(bra.is_terminator());
    }

    #[test]
    fn fdiv_is_special_func() {
        let fdiv = Instruction::new(Op::Bin {
            op: BinOp::Div,
            t: Type::F32,
            dst: f(0),
            a: f(1).into(),
            b: f(2).into(),
        });
        assert_eq!(fdiv.category(), Category::SpecialFunc);
    }

    #[test]
    fn def_use_extraction() {
        let i = Instruction::guarded(
            Op::Bin {
                op: BinOp::Add,
                t: Type::U32,
                dst: r(3),
                a: r(1).into(),
                b: Operand::ImmI(4),
            },
            Reg::new(RegClass::P, 1),
            true,
        );
        assert_eq!(i.dst(), Some(r(3)));
        let srcs = i.srcs();
        assert!(srcs.contains(&r(1)));
        assert!(srcs.contains(&Reg::new(RegClass::P, 1)));
        assert_eq!(srcs.len(), 2);
    }

    #[test]
    fn store_reads_value_and_address() {
        let st = Instruction::new(Op::St {
            space: Space::Global,
            t: Type::F32,
            src: f(5).into(),
            addr: Address::reg_off(Reg::new(RegClass::Rd, 2), 16),
        });
        assert_eq!(st.dst(), None);
        let srcs = st.srcs();
        assert!(srcs.contains(&f(5)));
        assert!(srcs.contains(&Reg::new(RegClass::Rd, 2)));
    }
}
