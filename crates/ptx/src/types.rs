//! Scalar types, state spaces, register classes and operators of the PTX
//! subset. The subset covers everything our CNN code generator emits and
//! everything visible in the paper's Fig. 2: integer/float arithmetic,
//! predicates, loads/stores, branches and barriers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// PTX scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    Pred,
    U32,
    S32,
    U64,
    F32,
    B32,
}

impl Type {
    /// Size in bytes (predicates are architecturally 1 bit; we report 1).
    pub fn bytes(&self) -> u64 {
        match self {
            Type::Pred => 1,
            Type::U32 | Type::S32 | Type::F32 | Type::B32 => 4,
            Type::U64 => 8,
        }
    }

    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Pred => ".pred",
            Type::U32 => ".u32",
            Type::S32 => ".s32",
            Type::U64 => ".u64",
            Type::F32 => ".f32",
            Type::B32 => ".b32",
        };
        f.write_str(s)
    }
}

/// Memory state spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Space {
    Global,
    Shared,
    Param,
    Local,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => ".global",
            Space::Shared => ".shared",
            Space::Param => ".param",
            Space::Local => ".local",
        };
        f.write_str(s)
    }
}

/// Virtual register classes, mirroring `nvcc` naming: `%r` (32-bit int),
/// `%rd` (64-bit), `%f` (fp32), `%p` (predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    R,
    Rd,
    F,
    P,
}

impl RegClass {
    pub fn prefix(&self) -> &'static str {
        match self {
            RegClass::R => "%r",
            RegClass::Rd => "%rd",
            RegClass::F => "%f",
            RegClass::P => "%p",
        }
    }

    pub fn ty(&self) -> Type {
        match self {
            RegClass::R => Type::U32,
            RegClass::Rd => Type::U64,
            RegClass::F => Type::F32,
            RegClass::P => Type::Pred,
        }
    }
}

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg {
    pub class: RegClass,
    pub idx: u32,
}

impl Reg {
    pub const fn new(class: RegClass, idx: u32) -> Self {
        Self { class, idx }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.idx)
    }
}

/// Read-only special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialReg {
    TidX,
    TidY,
    CtaIdX,
    CtaIdY,
    NTidX,
    NTidY,
    NCtaIdX,
    NCtaIdY,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
        };
        f.write_str(s)
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn eval_i(&self, a: i128, b: i128) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    pub fn eval_f(&self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            _ => return None,
        })
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    MulWide,
    Div,
    Rem,
    Min,
    Max,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

impl BinOp {
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul.lo",
            BinOp::MulWide => "mul.wide",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Abs,
    Sqrt,
    Rcp,
    Ex2,
    Lg2,
    Not,
}

impl UnOp {
    pub fn mnemonic(&self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt.approx",
            UnOp::Rcp => "rcp.approx",
            UnOp::Ex2 => "ex2.approx",
            UnOp::Lg2 => "lg2.approx",
            UnOp::Not => "not",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::U32.bytes(), 4);
        assert_eq!(Type::U64.bytes(), 8);
        assert_eq!(Type::F32.bytes(), 4);
    }

    #[test]
    fn reg_display_matches_nvcc_conventions() {
        assert_eq!(Reg::new(RegClass::R, 13).to_string(), "%r13");
        assert_eq!(Reg::new(RegClass::Rd, 10).to_string(), "%rd10");
        assert_eq!(Reg::new(RegClass::F, 2).to_string(), "%f2");
        assert_eq!(Reg::new(RegClass::P, 1).to_string(), "%p1");
    }

    #[test]
    fn cmp_roundtrip() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(CmpOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(CmpOp::from_mnemonic("zz"), None);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_i(1, 2));
        assert!(!CmpOp::Lt.eval_i(2, 2));
        assert!(CmpOp::Ge.eval_f(2.0, 2.0));
        assert!(CmpOp::Ne.eval_i(-1, 1));
    }
}
