//! # ptx — a PTX ISA substrate
//!
//! A from-scratch representation of the *Parallel Thread Execution* (PTX)
//! virtual ISA subset needed to reproduce the paper's pipeline: structured
//! instructions ([`inst`]), kernels and launch plans ([`kernel`]), a text
//! printer matching `nvcc` output ([`printer`]), a parser for that text
//! ([`parser`]) and an ergonomic kernel builder ([`builder`]).
//!
//! The subset covers the constructs of the paper's Fig. 2 — predicate
//! registers, `setp`/`bra` control flow, `ld.param`, shl/or thread-id
//! arithmetic — plus everything the CNN code generator emits (fma loops,
//! shared-memory tiles, barriers).

pub mod builder;
pub mod inst;
pub mod kernel;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::KernelBuilder;
pub use inst::{AddrBase, Address, BodyElem, Category, Instruction, LabelId, Op, Operand};
pub use kernel::{Kernel, KernelLaunch, KernelParam, LaunchPlan, Module};
pub use parser::{parse_module, ParseError};
pub use types::{BinOp, CmpOp, Reg, RegClass, Space, SpecialReg, Type, UnOp};
pub use verify::{verify_kernel, verify_module, VerifyError};
