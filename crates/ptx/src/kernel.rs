//! Kernels, modules and launch descriptions.

use crate::inst::{BodyElem, Instruction, LabelId};
use crate::types::{RegClass, Type};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A kernel parameter (`.param` space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelParam {
    pub name: String,
    pub t: Type,
}

/// One `.entry` kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kernel {
    pub name: String,
    pub params: Vec<KernelParam>,
    /// `.reqntid` — required block dimensions.
    pub reqntid: (u32, u32, u32),
    /// Static shared-memory bytes declared by the kernel.
    pub shared_bytes: u32,
    pub body: Vec<BodyElem>,
}

impl Kernel {
    /// Number of instructions (labels excluded).
    pub fn num_instructions(&self) -> usize {
        self.body
            .iter()
            .filter(|e| matches!(e, BodyElem::Inst(_)))
            .count()
    }

    /// Iterate over instructions only.
    pub fn instructions(&self) -> impl Iterator<Item = &Instruction> {
        self.body.iter().filter_map(|e| match e {
            BodyElem::Inst(i) => Some(i),
            BodyElem::Label(_) => None,
        })
    }

    /// Map label id -> body index of its definition.
    pub fn label_positions(&self) -> HashMap<LabelId, usize> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                BodyElem::Label(l) => Some((*l, i)),
                _ => None,
            })
            .collect()
    }

    /// Highest register index used per class, for the `.reg` declarations.
    pub fn reg_counts(&self) -> HashMap<RegClass, u32> {
        let mut max: HashMap<RegClass, u32> = HashMap::new();
        let mut see = |r: crate::types::Reg| {
            let e = max.entry(r.class).or_insert(0);
            *e = (*e).max(r.idx + 1);
        };
        for inst in self.instructions() {
            if let Some(d) = inst.dst() {
                see(d);
            }
            for s in inst.srcs() {
                see(s);
            }
        }
        max
    }

    /// Estimated architectural registers per thread: 32-bit regs count one,
    /// 64-bit regs count two; predicates are free. Used by the occupancy
    /// model.
    pub fn regs_per_thread(&self) -> u32 {
        let c = self.reg_counts();
        let r = c.get(&RegClass::R).copied().unwrap_or(0);
        let rd = c.get(&RegClass::Rd).copied().unwrap_or(0);
        let f = c.get(&RegClass::F).copied().unwrap_or(0);
        (r + f + 2 * rd).max(16)
    }

    /// Threads per block.
    pub fn block_threads(&self) -> u32 {
        self.reqntid.0 * self.reqntid.1 * self.reqntid.2
    }
}

/// A PTX translation unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    /// `.version` directive, e.g. (6, 0).
    pub version: (u32, u32),
    /// `.target` directive, e.g. "sm_61".
    pub target: String,
    pub address_size: u32,
    pub kernels: Vec<Kernel>,
}

impl Module {
    pub fn new(target: impl Into<String>) -> Self {
        Self {
            version: (6, 0),
            target: target.into(),
            address_size: 64,
            kernels: Vec::new(),
        }
    }

    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    pub fn total_instructions(&self) -> usize {
        self.kernels.iter().map(|k| k.num_instructions()).sum()
    }
}

/// One kernel launch: which kernel, grid size, parameter values and the data
/// traffic it implies. Parameter values are what the dynamic code analysis
/// uses to resolve loop bounds and guards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelLaunch {
    /// Index into the module's kernel table.
    pub kernel: usize,
    /// Human-readable origin, e.g. `conv2d_3.im2col`.
    pub tag: String,
    /// Grid dimensions (blocks).
    pub grid: (u32, u32, u32),
    /// Parameter values by name, in kernel parameter order.
    pub args: Vec<u64>,
    /// Bytes read from / written to global memory (computed from tensor
    /// semantics at lowering time; drives the DRAM model).
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl KernelLaunch {
    pub fn blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }
}

/// A lowered CNN: the module plus the ordered launch sequence of one
/// forward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchPlan {
    pub model_name: String,
    pub module: Module,
    pub launches: Vec<KernelLaunch>,
}

impl LaunchPlan {
    /// Total threads across all launches.
    pub fn total_threads(&self) -> u64 {
        self.launches
            .iter()
            .map(|l| {
                let k = &self.module.kernels[l.kernel];
                l.blocks() * k.block_threads() as u64
            })
            .sum()
    }

    /// Total global-memory traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.launches
            .iter()
            .map(|l| l.bytes_read + l.bytes_written)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction, Op, Operand};
    use crate::types::{Reg, RegClass, SpecialReg};

    fn mov(dst: Reg, src: Operand) -> BodyElem {
        BodyElem::Inst(Instruction::new(Op::Mov {
            t: Type::U32,
            dst,
            src,
        }))
    }

    fn tiny_kernel() -> Kernel {
        Kernel {
            name: "k".into(),
            params: vec![KernelParam {
                name: "n".into(),
                t: Type::U32,
            }],
            reqntid: (256, 1, 1),
            shared_bytes: 0,
            body: vec![
                mov(Reg::new(RegClass::R, 0), Operand::Special(SpecialReg::TidX)),
                BodyElem::Label(0),
                mov(Reg::new(RegClass::R, 1), Operand::ImmI(7)),
                BodyElem::Inst(Instruction::new(Op::Ret)),
            ],
        }
    }

    #[test]
    fn instruction_and_label_accounting() {
        let k = tiny_kernel();
        assert_eq!(k.num_instructions(), 3);
        assert_eq!(k.label_positions()[&0], 1);
        assert_eq!(k.block_threads(), 256);
    }

    #[test]
    fn reg_counts_track_max_index() {
        let k = tiny_kernel();
        assert_eq!(k.reg_counts()[&RegClass::R], 2);
    }

    #[test]
    fn launch_accounting() {
        let mut m = Module::new("sm_61");
        m.kernels.push(tiny_kernel());
        let plan = LaunchPlan {
            model_name: "t".into(),
            module: m,
            launches: vec![KernelLaunch {
                kernel: 0,
                tag: "x".into(),
                grid: (10, 1, 1),
                args: vec![100],
                bytes_read: 400,
                bytes_written: 100,
            }],
        };
        assert_eq!(plan.total_threads(), 2560);
        assert_eq!(plan.total_bytes(), 500);
    }
}
