//! Regenerates the paper's **Table III**: the predictors with the most
//! impact on the final Decision Tree, by impurity-decrease importance.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin table3_importance
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;

fn describe(feature: &str) -> &'static str {
    match feature {
        "ptx_instructions" => "Number of instructions to be executed",
        "trainable_params" => "Number of connections between neurons",
        "mem_bandwidth_gbs" => "Available memory bandwidth",
        "cuda_cores" => "Total CUDA cores of the GPGPU",
        "base_clock_mhz" => "GPGPU base frequency",
        "l2_cache_kb" => "L2 cache size",
        _ => "",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = corpus_cached()?;
    let (train, _) = corpus.dataset.split(0.7, 42);
    let predictor = PerformancePredictor::train(&train, RegressorKind::DecisionTree, 42);

    let mut table = Table::new(
        "Table III: Predictors used by the Decision Tree (impurity-decrease importance)",
        &["Feature", "Brief description", "Importance"],
    )
    .align(0, Align::Left)
    .align(1, Align::Left);

    let imps = predictor
        .feature_importances()
        .ok_or("decision tree exposes no feature importances")?;
    for (name, imp) in &imps {
        table.row(vec![
            name.clone(),
            describe(name).to_string(),
            fixed(*imp, 5),
        ]);
    }
    println!("{table}");
    println!(
        "Paper's Table III: Memory Bandwidth 0.72583, trainable params 0.2599, \
         executed instructions 0.0141."
    );
    println!(
        "Note: with two training GPUs every device feature separates them equally, \
         so which GPU feature carries the importance is a tie-break; in our corpus \
         the CNN-side variation (instruction count) dominates the IPC variance, \
         while in the paper's hardware measurements the device split dominated."
    );

    // model-agnostic cross-check: permutation importance on the hold-out set
    let (_, test) = corpus.dataset.split(0.7, 42);
    let model = mlkit::RegressorKind::DecisionTree.fit(&train, 42);
    let mut perm = Table::new(
        "Cross-check: permutation importance (RMSE increase on the 30% hold-out)",
        &["Feature", "dRMSE"],
    )
    .align(0, Align::Left);
    for (name, delta) in mlkit::permutation_importance(&model, &test, 42) {
        perm.row(vec![name, format!("{delta:+.4}")]);
    }
    println!("\n{perm}");
    let sidecar = cnnperf_bench::write_stats_sidecar("table3_importance");
    eprintln!("[bench] metrics sidecar: {}", sidecar.display());
    Ok(())
}
