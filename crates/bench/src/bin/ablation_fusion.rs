//! Batch-norm folding ablation (extension): the inference-time graph
//! optimization every deployment stack applies. Measures what folding buys
//! in kernel launches, executed instructions and simulated latency.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin ablation_fusion
//! ```

use cnnperf_core::prelude::*;
use gpu_sim::{SimMode, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = gpu_sim::specs::gtx_1080_ti();
    let mut table = Table::new(
        "Batch-norm folding ablation (GTX 1080 Ti, detailed simulation)",
        &[
            "CNN",
            "graph",
            "norms folded",
            "launches",
            "instr x1e9",
            "latency (ms)",
        ],
    )
    .align(0, Align::Left)
    .align(1, Align::Left);

    for name in ["mobilenet", "MobileNetV2", "efficientnetb0", "densenet121"] {
        let model = cnn_ir::zoo::build(name).ok_or_else(|| format!("unknown zoo model {name}"))?;
        let (folded, stats) = cnn_ir::fold_batch_norm(&model);
        for (label, graph, folded_count) in [
            ("as-trained", &model, 0usize),
            ("BN-folded", &folded, stats.folded),
        ] {
            let plan = ptx_codegen::lower(graph, &dev.sm_target())?;
            let counts = ptx_analysis::count_plan(&plan, true)?;
            let sim = Simulator::new(dev.clone(), SimMode::Detailed).simulate_plan(&plan)?;
            table.row(vec![
                name.to_string(),
                label.to_string(),
                folded_count.to_string(),
                plan.launches.len().to_string(),
                fixed(counts.thread_instructions as f64 / 1e9, 2),
                fixed(sim.latency_ms, 2),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Folding removes one elementwise pass per conv+BN pair; the win is \
         largest for depthwise-separable networks whose BN launches touch as \
         many bytes as the convolutions themselves."
    );
    Ok(())
}
