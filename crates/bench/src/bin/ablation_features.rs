//! Feature-set ablation (extension): how much does each predictor family
//! contribute, and does a reduced feature space hold up (cf. the authors'
//! DDECS'22 reduced-feature-space result)?
//!
//! Runs the Table II protocol over: CNN-only features, GPU-only features,
//! the paper's combined set, and greedy forward selection.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin ablation_features
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;
use mlkit::{correlation_ranking, forward_select, project, repeated_split_eval};

fn eval_subset(corpus: &Corpus, features: &[&str], label: &str) -> Vec<String> {
    let sub = project(&corpus.dataset, features);
    let seeds: Vec<u64> = (0..20).collect();
    let (_, agg) = repeated_split_eval(&sub, RegressorKind::DecisionTree, 0.7, &seeds);
    vec![
        label.to_string(),
        features.join(", "),
        format!("{:.2}% ± {:.2}", agg.mape.mean, agg.mape.std),
        format!("{:.3}", agg.r2.mean),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = corpus_cached()?;

    let mut table = Table::new(
        "Feature-set ablation (Decision Tree, 20-seed repeated 70/30 splits)",
        &["Set", "Features", "MAPE", "R2"],
    )
    .align(0, Align::Left)
    .align(1, Align::Left);

    table.row(eval_subset(
        &corpus,
        &["ptx_instructions", "trainable_params"],
        "CNN only",
    ));
    table.row(eval_subset(
        &corpus,
        &[
            "mem_bandwidth_gbs",
            "cuda_cores",
            "base_clock_mhz",
            "l2_cache_kb",
        ],
        "GPU only",
    ));
    table.row(eval_subset(
        &corpus,
        &[
            "ptx_instructions",
            "trainable_params",
            "mem_bandwidth_gbs",
            "cuda_cores",
            "base_clock_mhz",
            "l2_cache_kb",
        ],
        "paper set",
    ));
    table.row(eval_subset(
        &corpus,
        &["ptx_instructions", "trainable_params", "mem_bandwidth_gbs"],
        "Table III top-3",
    ));
    println!("{table}");

    println!("Correlation ranking (|pearson r| with IPC):");
    for (name, r) in correlation_ranking(&corpus.dataset) {
        println!("  {name:22} {r:.3}");
    }

    println!("\nGreedy forward selection (Decision Tree, hold-out MAPE):");
    for step in forward_select(&corpus.dataset, RegressorKind::DecisionTree, 4, 42) {
        println!(
            "  + {:20} -> MAPE {:.2}%  (features: {})",
            step.added,
            step.mape,
            step.features.join(", ")
        );
    }
    Ok(())
}
