//! Regenerates the paper's **Fig. 4 (a-d)**: predicted vs original IPC on
//! the GTX 1080 Ti for six standard CNNs that are *entirely independent of
//! the training phase*, for each of the four non-linear regressors
//! (Decision Tree, KNN, XG Boost, Random Forest).
//!
//! The six evaluation CNNs are removed from the corpus before training, so
//! the predictors have never seen them on any device.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin fig4_pred_vs_actual
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = corpus_cached()?;
    let eval_names = cnn_ir::zoo::fig4_eval_names();
    let device = gpu_sim::specs::gtx_1080_ti();

    // hold the six CNNs (all their device rows) out of training
    let (train_all, _held) = corpus.dataset.partition_by_label(|label| {
        eval_names
            .iter()
            .any(|n| label.starts_with(&format!("{n}@")))
    });

    let panels = [
        ("(a) Decision Tree", RegressorKind::DecisionTree),
        ("(b) KNN", RegressorKind::KNearestNeighbors),
        ("(c) XG Boost", RegressorKind::XgBoost),
        ("(d) Random Forest Tree", RegressorKind::RandomForest),
    ];

    let mut overall: Vec<(String, f64)> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (panel, kind) in panels {
        let predictor = PerformancePredictor::train(&train_all, kind, 42);
        let mut table = Table::new(
            format!(
                "Fig. 4 {panel}: predicted vs original IPC on {}",
                device.name
            ),
            &["CNN", "Original IPC", "Predicted IPC", "APE"],
        )
        .align(0, Align::Left);
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for name in eval_names {
            let profile = corpus
                .profile(name)
                .ok_or_else(|| format!("{name} not profiled in corpus"))?;
            let sample = corpus
                .samples
                .iter()
                .find(|s| s.model == name && s.device == device.name)
                .ok_or_else(|| format!("no {name}@{} sample", device.name))?;
            let pred = predictor.predict(profile, &device);
            let ape = 100.0 * ((sample.ipc - pred) / sample.ipc).abs();
            table.row(vec![
                name.to_string(),
                fixed(sample.ipc, 3),
                fixed(pred, 3),
                pct(ape),
            ]);
            csv_rows.push(vec![
                kind.name().to_string(),
                name.to_string(),
                format!("{:.6}", sample.ipc),
                format!("{pred:.6}"),
            ]);
            y_true.push(sample.ipc);
            y_pred.push(pred);
        }
        let mape = mlkit::metrics::mape(&y_true, &y_pred);
        println!("{table}");
        println!(
            "  {} MAPE over the six held-out CNNs: {:.2}%\n",
            kind.name(),
            mape
        );
        overall.push((kind.name().to_string(), mape));
    }

    let csv = cnnperf_bench::write_csv(
        "fig4_pred_vs_actual",
        &["regressor", "cnn", "original_ipc", "predicted_ipc"],
        &csv_rows,
    );
    println!("figure series written to {}", csv.display());

    overall.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("Summary (best first):");
    for (name, mape) in &overall {
        println!("  {name:22} {mape:6.2}%");
    }
    let spread = match (overall.first(), overall.last()) {
        (Some(best), Some(worst)) => worst.1 - best.1,
        _ => return Err("no regressor panels were evaluated".into()),
    };
    println!(
        "\nPaper's observation: \"all predictive models' predictions are close to each \
         other and do not differ significantly\" — spread between the four panels above: {spread:.2} pp."
    );
    let sidecar = cnnperf_bench::write_stats_sidecar("fig4_pred_vs_actual");
    eprintln!("[bench] metrics sidecar: {}", sidecar.display());
    Ok(())
}
