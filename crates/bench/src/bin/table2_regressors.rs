//! Regenerates the paper's **Table II**: MAPE / R² / adjusted-R² of the
//! five candidate regression algorithms on the 70/30 split of the training
//! corpus. The paper reports one split; we print that protocol at the
//! default seed *and* a 20-seed repeated-split aggregate that exposes the
//! variance a single split hides.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin table2_regressors
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;
use mlkit::repeated_split_eval;

/// Paper values for side-by-side printing.
const PAPER: [(&str, f64, f64, f64); 5] = [
    ("Linear Regression", 8.07, -0.0034, -0.4439),
    ("K-Nearest Neighbors", 5.94, 0.34, 0.08),
    ("Random Forest Tree", 7.12, 0.22, -0.12),
    ("Decision Tree", 5.73, 0.45, 0.19),
    ("XG Boost", 7.59, 0.14, -0.24),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = corpus_cached()?;
    let seed = 42u64;

    let mut table = Table::new(
        format!(
            "Table II: Comparison of ML regression algorithms (single 70/30 split, seed {seed})"
        ),
        &[
            "Regression Model",
            "MAPE",
            "R2",
            "adj. R2",
            "MAPE (paper)",
            "R2 (paper)",
            "adj. R2 (paper)",
        ],
    )
    .align(0, Align::Left);

    for row in compare_regressors(&corpus.dataset, seed) {
        let paper = PAPER
            .iter()
            .find(|(n, _, _, _)| *n == row.kind.name())
            .ok_or_else(|| format!("no paper row for {}", row.kind.name()))?;
        table.row(vec![
            row.kind.name().to_string(),
            pct(row.scores.mape),
            fixed(row.scores.r2, 3),
            fixed(row.scores.adjusted_r2, 3),
            pct(paper.1),
            fixed(paper.2, 4),
            fixed(paper.3, 4),
        ]);
    }
    println!("{table}");

    let seeds: Vec<u64> = (0..20).collect();
    let mut agg_table = Table::new(
        "Table II (extension): 20-seed repeated 70/30 splits, mean ± std",
        &["Regression Model", "MAPE", "R2", "adj. R2"],
    )
    .align(0, Align::Left);
    let mut ranked: Vec<(String, f64)> = Vec::new();
    for kind in RegressorKind::ALL {
        let (_, agg) = repeated_split_eval(&corpus.dataset, kind, 0.7, &seeds);
        ranked.push((kind.name().to_string(), agg.mape.mean));
        agg_table.row(vec![
            kind.name().to_string(),
            format!("{:.2}% ± {:.2}", agg.mape.mean, agg.mape.std),
            format!("{:.3} ± {:.3}", agg.r2.mean, agg.r2.std),
            format!("{:.3} ± {:.3}", agg.adjusted_r2.mean, agg.adjusted_r2.std),
        ]);
    }
    println!("{agg_table}");

    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    if let (Some(best), Some(worst)) = (ranked.first(), ranked.last()) {
        println!(
            "Shape check vs paper: linear regression worst ({}), tree-family best ({}).",
            worst.0, best.0
        );
    }
    let sidecar = cnnperf_bench::write_stats_sidecar("table2_regressors");
    eprintln!("[bench] metrics sidecar: {}", sidecar.display());
    Ok(())
}
