//! Batch-size sweep (extension): the paper profiles batch-1 inference;
//! this experiment shows how IPC and throughput scale with batch size —
//! utilization climbs until the GPU saturates, which is precisely the
//! structure the predictor's feature set cannot see (motivating the
//! occupancy-style features a follow-up would add).
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin batch_sweep
//! ```

use cnnperf_core::prelude::*;
use gpu_sim::{SimMode, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = gpu_sim::specs::gtx_1080_ti();
    let mut table = Table::new(
        format!("Batch-size sweep on {}", dev.name),
        &[
            "CNN",
            "batch",
            "latency (ms)",
            "imgs/s",
            "IPC",
            "instr x1e9",
        ],
    )
    .align(0, Align::Left);

    for name in ["MobileNetV2", "resnet50", "alexnet"] {
        let model = cnn_ir::zoo::build(name).ok_or_else(|| format!("unknown zoo model {name}"))?;
        let mut prev_ipc = 0.0;
        for batch in [1u32, 2, 4, 8, 16] {
            let plan = ptx_codegen::lower_batched(&model, &dev.sm_target(), batch)?;
            let sim = Simulator::new(dev.clone(), SimMode::Detailed).simulate_plan(&plan)?;
            table.row(vec![
                name.to_string(),
                batch.to_string(),
                fixed(sim.latency_ms, 2),
                fixed(batch as f64 / (sim.latency_ms / 1e3), 0),
                fixed(sim.ipc, 3),
                fixed(sim.thread_instructions as f64 / 1e9, 2),
            ]);
            prev_ipc = sim.ipc;
        }
        let _ = prev_ipc;
    }
    println!("{table}");
    println!(
        "Throughput (imgs/s) grows sublinearly with batch while per-image \
         latency rises — the saturation curve every deployment guide warns \
         about, now derivable pre-silicon."
    );
    Ok(())
}
