//! Extended-corpus experiment (the paper's future work: "we work on
//! preparing more standard CNNs and variations of well-known CNNs ... to
//! expand our training dataset"): add the 8 variant architectures
//! (ResNet-18/34, Wide-ResNet, VGG-11/13, SqueezeNet, ShuffleNet,
//! GoogLeNet) to the Table I zoo and measure what the extra data buys.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin ablation_extended_corpus
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;
use mlkit::repeated_split_eval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = corpus_cached()?;

    eprintln!("[bench] building variant corpus (8 extra CNNs x 2 GPUs) ...");
    let variant_models: Vec<_> = cnn_ir::zoo::variants::all_variants()
        .into_iter()
        .map(|(_, build)| build())
        .collect();
    let extra = build_corpus(&variant_models, &gpu_sim::training_devices())?;

    // merge the two corpora
    let mut merged = base.dataset.clone();
    for i in 0..extra.dataset.len() {
        merged.push(
            extra.dataset.labels[i].clone(),
            extra.dataset.x[i].clone(),
            extra.dataset.y[i],
        );
    }

    let seeds: Vec<u64> = (0..20).collect();
    let mut table = Table::new(
        "Extended-corpus ablation (20-seed repeated 70/30 splits)",
        &["Corpus", "Rows", "Model", "MAPE", "R2"],
    )
    .align(0, Align::Left)
    .align(2, Align::Left);

    for (name, data) in [
        ("Table I zoo (paper)", &base.dataset),
        ("zoo + 8 variants", &merged),
    ] {
        for kind in [RegressorKind::DecisionTree, RegressorKind::LinearRegression] {
            let (_, agg) = repeated_split_eval(data, kind, 0.7, &seeds);
            table.row(vec![
                name.to_string(),
                data.len().to_string(),
                kind.name().to_string(),
                format!("{:.2}% ± {:.2}", agg.mape.mean, agg.mape.std),
                format!("{:.3}", agg.r2.mean),
            ]);
        }
    }
    println!("{table}");

    // and the Fig.4-style held-out check: do variants improve predictions
    // on the six held-out standard CNNs?
    let eval_names = cnn_ir::zoo::fig4_eval_names();
    let holdout = |data: &mlkit::Dataset| -> Result<f64, Box<dyn std::error::Error>> {
        let (train, _) =
            data.partition_by_label(|l| eval_names.iter().any(|n| l.starts_with(&format!("{n}@"))));
        let p = PerformancePredictor::train(&train, RegressorKind::DecisionTree, 42);
        let dev = gpu_sim::specs::gtx_1080_ti();
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for name in eval_names {
            let prof = base
                .profile(name)
                .ok_or_else(|| format!("{name} not profiled in corpus"))?;
            let s = base
                .samples
                .iter()
                .find(|s| s.model == name && s.device == dev.name)
                .ok_or_else(|| format!("no {name}@{} sample", dev.name))?;
            y_true.push(s.ipc);
            y_pred.push(p.predict(prof, &dev));
        }
        Ok(mlkit::metrics::mape(&y_true, &y_pred))
    };
    println!(
        "Fig.4 held-out MAPE: zoo-only {:.2}%  vs  zoo+variants {:.2}%",
        holdout(&base.dataset)?,
        holdout(&merged)?
    );
    Ok(())
}
