//! Regenerates the paper's **Table IV**: wall-clock comparison of the
//! naive approach (profile the CNN on every candidate GPU — here, the
//! detailed simulator standing in for hardware + nvprof, launch-by-launch
//! with no memoization) against the proposed approach
//! (`T_est = t_dca + n * t_pm`) for seven CNNs over `n = 1..7` GPGPUs.
//!
//! Absolute seconds differ from the paper (their `t_p` is real-hardware
//! profiling time; ours is simulation time), but the *structure* — `T_est`
//! flat in `n`, `T_measur` linear in `n`, speedup growing with `n` — is
//! the reproduced claim.
//!
//! Both sides of the comparison are charged for PTX codegen: `t_dca`
//! includes lowering by construction, and [`naive_profile_time`] starts
//! its clock *before* lowering, so the reported speedups compare symmetric
//! end-to-end paths rather than flattering the estimation side.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin table4_speedup
//! ```

use cnnperf_bench::corpus_cached;
use cnnperf_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = corpus_cached()?;
    let (train, _) = corpus.dataset.split(0.7, 42);
    let predictor = PerformancePredictor::train(&train, RegressorKind::DecisionTree, 42);

    let devices = gpu_sim::all_devices();
    assert!(devices.len() >= 7, "need 7 devices for the n=1..7 sweep");
    let devices = &devices[..7];

    let mut header: Vec<String> = vec!["CNN".into(), "t_p (s)".into()];
    header.extend((1..=7).map(|n| format!("naive n={n}")));
    header.extend(["t_pm (ms)".to_string(), "t_dca (s)".to_string()]);
    header.extend((1..=7).map(|n| format!("ours n={n}")));
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table IV: naive profiling vs proposed estimation, n = 1..7 GPGPUs (seconds)",
        &headers,
    )
    .align(0, Align::Left);

    let mut speedups = Vec::new();
    for name in cnn_ir::zoo::table4_names() {
        let model = cnn_ir::zoo::build(name).ok_or_else(|| format!("unknown zoo model {name}"))?;

        // naive: profile on the first device, scale per device (the paper
        // likewise reports one t_p per CNN and multiplies by n)
        let t_p = naive_profile_time(&model, &devices[0])?;

        // ours: one dynamic code analysis + n predictions
        let outcome = rank_devices(&predictor, &model, devices)?;

        let mut row: Vec<String> = vec![name.to_string(), fixed(t_p, 2)];
        for n in 1..=7u32 {
            row.push(fixed(t_p * n as f64, 1));
        }
        row.push(fixed(outcome.t_pm * 1e3, 3));
        row.push(fixed(outcome.t_dca, 2));
        for n in 1..=7u32 {
            row.push(fixed(outcome.t_dca + n as f64 * outcome.t_pm, 2));
        }
        table.row(row);

        let speedup_1 = t_p / (outcome.t_dca + outcome.t_pm);
        let speedup_7 = 7.0 * t_p / (outcome.t_dca + 7.0 * outcome.t_pm);
        speedups.push((name, speedup_1, speedup_7));
    }
    println!("{table}");

    let mut s = Table::new(
        "Speedup of the proposed approach over naive profiling",
        &["CNN", "n=1", "n=7"],
    )
    .align(0, Align::Left);
    let mut geo1 = 1.0f64;
    let mut geo7 = 1.0f64;
    for (name, s1, s7) in &speedups {
        s.row(vec![
            name.to_string(),
            format!("{s1:.1}x"),
            format!("{s7:.1}x"),
        ]);
        geo1 *= s1;
        geo7 *= s7;
    }
    let k = speedups.len() as f64;
    println!("{s}");
    println!(
        "Geometric-mean speedup: {:.1}x at n=1, {:.1}x at n=7 (paper: ~33x average at n=1, growing with n).",
        geo1.powf(1.0 / k),
        geo7.powf(1.0 / k)
    );
    let sidecar = cnnperf_bench::write_stats_sidecar("table4_speedup");
    eprintln!("[bench] metrics sidecar: {}", sidecar.display());
    Ok(())
}
