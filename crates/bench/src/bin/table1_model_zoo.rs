//! Regenerates the paper's **Table I**: the CNN model zoo with input size,
//! layers, neurons and trainable parameters — our static analyzer's values
//! side by side with the numbers printed in the paper.
//!
//! ```text
//! cargo run --release -p cnnperf-bench --bin table1_model_zoo
//! ```

use cnnperf_core::prelude::*;
use rayon::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = cnn_ir::zoo::all();
    let rows: Vec<_> = entries
        .par_iter()
        .map(|e| {
            let model = (e.build)();
            cnn_ir::analyze(&model).map(|s| (e.name, e.paper, s))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let mut table = Table::new(
        "Table I: An overview of CNN models used in the experiments (ours vs paper)",
        &[
            "Model name",
            "Input",
            "Layers",
            "Neurons (ours)",
            "Neurons (paper)",
            "Trainable (ours)",
            "Trainable (paper)",
            "delta",
        ],
    )
    .align(0, Align::Left);

    let mut exact = 0usize;
    let mut close = 0usize;
    for (name, paper, s) in &rows {
        let delta = if paper.trainable_params == 0 {
            f64::NAN
        } else {
            100.0 * (s.trainable_params as f64 - paper.trainable_params as f64)
                / paper.trainable_params as f64
        };
        if s.trainable_params == paper.trainable_params {
            exact += 1;
        } else if delta.abs() < 2.0 {
            close += 1;
        }
        table.row(vec![
            name.to_string(),
            format!("{}x{}", s.input_size.0, s.input_size.1),
            s.nominal_depth.to_string(),
            thousands(s.neurons),
            thousands(paper.neurons),
            thousands(s.trainable_params),
            thousands(paper.trainable_params),
            format!("{delta:+.2}%"),
        ]);
    }
    println!("{table}");
    println!(
        "{} of {} models match the paper's trainable-parameter count exactly; {} more are within 2%.",
        exact,
        rows.len(),
        close
    );
    println!(
        "Notes: neurons count every graph-node output (Keras fuses activations into \
         conv/dense layers, so our explicit-activation graphs report more); \
         'm-r154x4' is BiT R152x4 (paper typo); efficientnetb5 input is 456 (paper prints 156); \
         alexnet uses the original grouped two-tower weights (60,965,224) vs the paper's \
         cuda-convnet variant."
    );
    let sidecar = cnnperf_bench::write_stats_sidecar("table1_model_zoo");
    eprintln!("[bench] metrics sidecar: {}", sidecar.display());
    Ok(())
}
