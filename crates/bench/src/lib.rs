//! Shared helpers for the benchmark harness: a cached paper corpus (the
//! 32-CNN x 2-GPU training dataset takes ~1 min to build; every
//! regeneration binary reuses the same deterministic corpus from disk).

use cnnperf_core::prelude::*;
use std::fs;
use std::path::PathBuf;

/// Location of the cached corpus JSON (override with `CNNPERF_CORPUS`).
pub fn corpus_path() -> PathBuf {
    if let Ok(p) = std::env::var("CNNPERF_CORPUS") {
        return PathBuf::from(p);
    }
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("cnnperf-paper-corpus-v2.json")
}

/// Load the paper corpus from the crash-safe cache, building (and caching)
/// it on a miss. The corpus is fully deterministic, so the cache is safe;
/// [`cnnperf_core::load_corpus`] validates a schema + checksum envelope
/// and quarantines anything half-written (`<name>.corrupt`), so a crashed
/// earlier run can never poison this one. A build failure propagates
/// instead of aborting the process, so regeneration binaries can report
/// it and exit with a status code.
pub fn corpus_cached() -> Result<Corpus, cnnperf_core::ProfileError> {
    let path = corpus_path();
    match load_corpus(&path) {
        // guard against stale caches from older feature layouts
        Ok(c) if c.dataset.feature_names == cnnperf_core::feature_names() => {
            eprintln!("[bench] corpus cache hit: {}", path.display());
            return Ok(c);
        }
        Ok(_) => eprintln!("[bench] corpus cache stale (feature layout changed)"),
        // Absent = clean miss; Quarantined already warned on stderr
        Err(_) => {}
    }
    eprintln!("[bench] building paper corpus (32 CNNs x 2 GPUs) ...");
    let t0 = std::time::Instant::now();
    let corpus = build_paper_corpus()?;
    eprintln!("[bench] corpus built in {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = store_corpus(&path, &corpus) {
        eprintln!("[bench] warning: corpus cache write failed: {e}");
    }
    Ok(corpus)
}

/// The `target/figures/` artifact directory, anchored at the *workspace*
/// target dir regardless of the current working directory. Regen bins run
/// from the repo root, but `cargo bench` executes with cwd = the package
/// dir — a bare relative `target/` would scatter artifacts under
/// `crates/bench/target/`.
pub fn figures_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        });
    target.join("figures")
}

/// Write a CSV artifact under `target/figures/` (the raw series behind a
/// regenerated figure) and return its path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = figures_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    let _ = fs::write(&path, text);
    path
}

/// Write the global metrics snapshot next to a figure's CSV as
/// `target/figures/<name>.stats.json` and return its path. Each
/// regeneration binary calls this last, so every artifact ships with the
/// pipeline counters (cells profiled, retries, memo hits, ...) that
/// produced it — when a regenerated table looks off, the sidecar says
/// how much work actually ran.
pub fn write_stats_sidecar(name: &str) -> PathBuf {
    let dir = figures_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.stats.json"));
    let mut text = obs::global().snapshot().to_json();
    text.push('\n');
    let _ = fs::write(&path, text);
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_sidecar_is_single_line_json() {
        obs::global().counter("bench.test.sidecar").inc();
        let p = write_stats_sidecar("unit_test_sidecar");
        let text = std::fs::read_to_string(&p).expect("written");
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"schema\":1,"), "{text}");
        assert!(text.contains("bench.test.sidecar"), "{text}");
    }

    #[test]
    fn write_csv_produces_readable_file() {
        let p = write_csv(
            "unit_test_artifact",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(&p).expect("written");
        assert_eq!(text, "a,b\n1,2\n");
    }

    #[test]
    fn corpus_path_respects_env() {
        // no env mutation in parallel tests: just exercise the default path
        let p = corpus_path();
        assert!(p.to_string_lossy().contains("cnnperf-paper-corpus"));
    }
}
