//! Ablation benches for the dynamic code analysis (paper Section IV-A):
//!
//! - interval-splitting representative execution vs per-thread brute force
//!   (the reason the DCA outruns simulators), and
//! - slice-mode evaluation (`G_v*`) vs full-value evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptx::kernel::KernelLaunch;
use ptx_analysis::{count_launch, count_launch_bruteforce, count_plan};
use ptx_codegen::Template;
use std::hint::black_box;

fn launch_for(kernel: &ptx::kernel::Kernel, threads: u64, args: Vec<u64>) -> KernelLaunch {
    KernelLaunch {
        kernel: 0,
        tag: "bench".into(),
        grid: (threads.div_ceil(kernel.block_threads() as u64) as u32, 1, 1),
        args,
        bytes_read: 0,
        bytes_written: 0,
    }
}

/// Interval splitting vs brute force on an elementwise kernel at growing
/// grid sizes: fast mode is O(pieces), brute force O(threads).
fn bench_splitting_vs_bruteforce(c: &mut Criterion) {
    let kernel = Template::ActRelu.build();
    let mut group = c.benchmark_group("counting/relu_kernel");
    for threads in [1_000u64, 10_000, 100_000] {
        let launch = launch_for(&kernel, threads, vec![0x1000, 0x2000, threads - 37]);
        group.bench_with_input(
            BenchmarkId::new("interval_splitting", threads),
            &launch,
            |b, l| b.iter(|| black_box(count_launch(&kernel, l, true).unwrap())),
        );
        // brute force only at the sizes where it terminates in reasonable time
        if threads <= 10_000 {
            group.bench_with_input(BenchmarkId::new("bruteforce", threads), &launch, |b, l| {
                b.iter(|| black_box(count_launch_bruteforce(&kernel, l).unwrap()))
            });
        }
    }
    group.finish();
}

/// Slice-restricted evaluation vs full evaluation on the GEMM kernel (long
/// fma-dense inner loops are exactly what slicing skips).
fn bench_slice_ablation(c: &mut Criterion) {
    let kernel = Template::GemmTiled.build();
    let launch = KernelLaunch {
        kernel: 0,
        tag: "gemm".into(),
        grid: (256, 1, 1),
        args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        bytes_read: 0,
        bytes_written: 0,
    };
    let mut group = c.benchmark_group("counting/gemm_slice_ablation");
    group.bench_function("slice_Gv*", |b| {
        b.iter(|| black_box(count_launch(&kernel, &launch, true).unwrap()))
    });
    group.bench_function("full_evaluation", |b| {
        b.iter(|| black_box(count_launch(&kernel, &launch, false).unwrap()))
    });
    group.finish();
}

/// Whole-plan counting for a zoo model (rayon-parallel, memoized).
fn bench_plan_counting(c: &mut Criterion) {
    let model = cnn_ir::zoo::build("mobilenet").unwrap();
    let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
    c.bench_function("counting/mobilenet_plan", |b| {
        b.iter(|| black_box(count_plan(&plan, true).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_splitting_vs_bruteforce,
    bench_slice_ablation,
    bench_plan_counting
);
criterion_main!(benches);
