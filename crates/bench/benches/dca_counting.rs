//! Ablation benches for the dynamic code analysis (paper Section IV-A):
//!
//! - interval-splitting representative execution vs per-thread brute force
//!   (the reason the DCA outruns simulators),
//! - slice-mode evaluation (`G_v*`) vs full-value evaluation, and
//! - dense-program decode reuse: decoding a kernel once and sharing the
//!   [`DenseProgram`] across launches vs re-decoding per count.
//!
//! Besides the criterion groups, the harness emits a BENCH json artifact
//! (`target/figures/dca_counting.bench.json`) quantifying the decode-reuse
//! win, plus the usual obs stats sidecar.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ptx::kernel::KernelLaunch;
use ptx_analysis::{
    branch_slice, compile_kernel, count_launch, count_launch_bruteforce,
    count_launch_poly_prepared, count_launch_prepared, count_plan, count_plan_mode_budgeted,
    CountMode, DenseProgram, ExecBudget,
};
use ptx_codegen::Template;
use std::hint::black_box;
use std::sync::Arc;

fn launch_for(kernel: &ptx::kernel::Kernel, threads: u64, args: Vec<u64>) -> KernelLaunch {
    KernelLaunch {
        kernel: 0,
        tag: "bench".into(),
        grid: (threads.div_ceil(kernel.block_threads() as u64) as u32, 1, 1),
        args,
        bytes_read: 0,
        bytes_written: 0,
    }
}

/// Interval splitting vs brute force on an elementwise kernel at growing
/// grid sizes: fast mode is O(pieces), brute force O(threads).
fn bench_splitting_vs_bruteforce(c: &mut Criterion) {
    let kernel = Template::ActRelu.build();
    let mut group = c.benchmark_group("counting/relu_kernel");
    for threads in [1_000u64, 10_000, 100_000] {
        let launch = launch_for(&kernel, threads, vec![0x1000, 0x2000, threads - 37]);
        group.bench_with_input(
            BenchmarkId::new("interval_splitting", threads),
            &launch,
            |b, l| b.iter(|| black_box(count_launch(&kernel, l, true).unwrap())),
        );
        // brute force only at the sizes where it terminates in reasonable time
        if threads <= 10_000 {
            group.bench_with_input(BenchmarkId::new("bruteforce", threads), &launch, |b, l| {
                b.iter(|| black_box(count_launch_bruteforce(&kernel, l).unwrap()))
            });
        }
    }
    group.finish();
}

/// Slice-restricted evaluation vs full evaluation on the GEMM kernel (long
/// fma-dense inner loops are exactly what slicing skips).
fn bench_slice_ablation(c: &mut Criterion) {
    let kernel = Template::GemmTiled.build();
    let launch = KernelLaunch {
        kernel: 0,
        tag: "gemm".into(),
        grid: (256, 1, 1),
        args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        bytes_read: 0,
        bytes_written: 0,
    };
    let mut group = c.benchmark_group("counting/gemm_slice_ablation");
    group.bench_function("slice_Gv*", |b| {
        b.iter(|| black_box(count_launch(&kernel, &launch, true).unwrap()))
    });
    group.bench_function("full_evaluation", |b| {
        b.iter(|| black_box(count_launch(&kernel, &launch, false).unwrap()))
    });
    group.finish();
}

/// Whole-plan counting for a zoo model (rayon-parallel, memoized).
fn bench_plan_counting(c: &mut Criterion) {
    let model = cnn_ir::zoo::build("mobilenet").unwrap();
    let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
    c.bench_function("counting/mobilenet_plan", |b| {
        b.iter(|| black_box(count_plan(&plan, true).unwrap()))
    });
}

/// Per-count kernel decode vs a shared pre-decoded [`DenseProgram`]: the
/// prepared path is what `count_plan` runs for every launch of a kernel
/// after the first, and what the grid-rectangle re-runs inside one count
/// always shared.
fn bench_decode_reuse(c: &mut Criterion) {
    let kernel = Template::GemmTiled.build();
    let launch = KernelLaunch {
        kernel: 0,
        tag: "gemm".into(),
        grid: (256, 1, 1),
        args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        bytes_read: 0,
        bytes_written: 0,
    };
    let budget = ExecBudget::default();
    let program = Arc::new(DenseProgram::decode(&kernel));
    let slice = branch_slice(&kernel);

    let mut group = c.benchmark_group("counting/gemm_decode_reuse");
    group.bench_function("decode_per_count", |b| {
        b.iter(|| black_box(count_launch(&kernel, &launch, true).unwrap()))
    });
    group.bench_function("shared_dense_program", |b| {
        b.iter(|| {
            black_box(count_launch_prepared(&program, Some(&slice), &launch, &budget).unwrap())
        })
    });
    group.bench_function("decode_only", |b| {
        b.iter(|| black_box(DenseProgram::decode(&kernel)))
    });
    group.finish();
}

/// Compiled trip-count polynomials vs the dense interpreter, per launch,
/// compile excluded (that is how `count_plan` amortizes it: one compile per
/// kernel, O(launches) evaluations). The gemm showcase is where the win is
/// largest — the interpreter walks every inner-loop iteration, the
/// polynomial evaluates in O(1).
fn bench_poly_vs_interp(c: &mut Criterion) {
    let kernel = Template::GemmTiled.build();
    let launch = KernelLaunch {
        kernel: 0,
        tag: "gemm".into(),
        grid: (256, 1, 1),
        args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        bytes_read: 0,
        bytes_written: 0,
    };
    let budget = ExecBudget::default();
    let program = Arc::new(DenseProgram::decode(&kernel));
    let slice = branch_slice(&kernel);
    let kp = compile_kernel(&program, Some(&slice)).expect("gemm compiles to a polynomial");

    let mut group = c.benchmark_group("counting/poly");
    group.bench_function("gemm_interp_launch", |b| {
        b.iter(|| {
            black_box(count_launch_prepared(&program, Some(&slice), &launch, &budget).unwrap())
        })
    });
    group.bench_function("gemm_poly_launch", |b| {
        b.iter(|| black_box(count_launch_poly_prepared(&kp, &launch, &budget).unwrap()))
    });
    group.bench_function("gemm_poly_compile", |b| {
        b.iter(|| black_box(compile_kernel(&program, Some(&slice)).unwrap()))
    });
    group.finish();

    // whole-plan effect on a zoo model
    let model = cnn_ir::zoo::build("mobilenet").unwrap();
    let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
    let mut group = c.benchmark_group("counting/poly_plan");
    for (label, mode) in [("interp", CountMode::Interp), ("auto", CountMode::Auto)] {
        group.bench_function(format!("mobilenet_{label}"), |b| {
            b.iter(|| black_box(count_plan_mode_budgeted(&plan, true, &budget, mode).unwrap()))
        });
    }
    group.finish();
}

/// The `poly` BENCH artifact group: per-launch interpreter vs polynomial
/// timings over representative loop-heavy launches (the kernels CNN plans
/// are made of), with the compile cost reported separately and the median
/// speedup as the headline number.
fn poly_artifact_json() -> String {
    struct Case {
        name: &'static str,
        template: Template,
        grid: u32,
        args: Vec<u64>,
    }
    let cases = [
        Case {
            name: "gemm_tiled",
            template: Template::GemmTiled,
            grid: 256,
            args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        },
        Case {
            name: "gemm_micro",
            template: Template::GemmMicro,
            grid: 64,
            args: vec![0x1000, 0x2000, 0x3000, 127, 191, 512, 64, 96, 0x9000, 1],
        },
        Case {
            name: "gemv",
            template: Template::Gemv,
            grid: 4,
            args: vec![0x1000, 0x2000, 0x3000, 512, 4096, 0x9000, 1],
        },
        Case {
            name: "im2col",
            template: Template::Im2col,
            grid: 19,
            args: vec![0x1000, 0x2000, 4704, 27, 3, 6, 56, 56, 3, 2, 2, 1, 1, 112],
        },
        Case {
            name: "relu_guard",
            template: Template::ActRelu,
            grid: 391,
            args: vec![0x1000, 0x2000, 100_000],
        },
    ];

    const ITERS: u32 = 200;
    let budget = ExecBudget::default();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for case in &cases {
        let kernel = case.template.build();
        let launch = KernelLaunch {
            kernel: 0,
            tag: "bench".into(),
            grid: (case.grid, 1, 1),
            args: case.args.clone(),
            bytes_read: 0,
            bytes_written: 0,
        };
        let program = Arc::new(DenseProgram::decode(&kernel));
        let slice = branch_slice(&kernel);
        let tc = std::time::Instant::now();
        let compiled = compile_kernel(&program, Some(&slice));
        let compile_s = tc.elapsed().as_secs_f64();
        let kp = match compiled {
            Ok(kp) => kp,
            Err(reason) => {
                rows.push(format!(
                    "{{\"launch\":\"{}\",\"poly\":\"fallback\",\"reason\":\"{reason}\"}}",
                    case.name
                ));
                continue;
            }
        };

        let t0 = std::time::Instant::now();
        for _ in 0..ITERS {
            black_box(count_launch_prepared(&program, Some(&slice), &launch, &budget).unwrap());
        }
        let interp_s = t0.elapsed().as_secs_f64() / ITERS as f64;
        let t1 = std::time::Instant::now();
        for _ in 0..ITERS {
            black_box(count_launch_poly_prepared(&kp, &launch, &budget).unwrap());
        }
        let poly_s = t1.elapsed().as_secs_f64() / ITERS as f64;
        let speedup = interp_s / poly_s.max(1e-12);
        speedups.push(speedup);
        rows.push(format!(
            concat!(
                "{{\"launch\":\"{name}\",\"interp_seconds\":{i:.9},",
                "\"poly_seconds\":{p:.9},\"compile_seconds\":{c:.9},",
                "\"speedup\":{s:.2}}}"
            ),
            name = case.name,
            i = interp_s,
            p = poly_s,
            c = compile_s,
            s = speedup,
        ));
    }
    speedups.sort_by(|a, b| a.total_cmp(b));
    let median = if speedups.is_empty() {
        0.0
    } else {
        speedups[speedups.len() / 2]
    };
    eprintln!(
        "BENCH dca_poly_counting: median per-launch speedup {median:.1}x over {} launches",
        speedups.len()
    );
    format!(
        concat!(
            "{{\"bench\":\"dca_poly_counting\",\"iterations\":{iters},",
            "\"launches\":[{rows}],\"median_speedup\":{m:.2}}}"
        ),
        iters = ITERS,
        rows = rows.join(","),
        m = median,
    )
}

/// Instant-based measurement behind the BENCH json artifact: the same
/// decode-per-count vs shared-program comparison as the criterion group,
/// plus the decode counter deltas proving the reuse.
fn decode_reuse_json() -> String {
    let kernel = Template::GemmTiled.build();
    let launch = KernelLaunch {
        kernel: 0,
        tag: "gemm".into(),
        grid: (256, 1, 1),
        args: vec![0x1000, 0x2000, 0x3000, 256, 256, 1024, 64, 0, 0],
        bytes_read: 0,
        bytes_written: 0,
    };
    let budget = ExecBudget::default();
    const ITERS: u32 = 50;

    let decodes = || obs::global().snapshot().counter("ptx.exec.decodes");

    let d0 = decodes();
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        black_box(count_launch(&kernel, &launch, true).unwrap());
    }
    let per_count_s = t0.elapsed().as_secs_f64();
    let per_count_decodes = decodes() - d0;

    let d1 = decodes();
    let t1 = std::time::Instant::now();
    let program = Arc::new(DenseProgram::decode(&kernel));
    let slice = branch_slice(&kernel);
    for _ in 0..ITERS {
        black_box(count_launch_prepared(&program, Some(&slice), &launch, &budget).unwrap());
    }
    let shared_s = t1.elapsed().as_secs_f64();
    let shared_decodes = decodes() - d1;

    let speedup = per_count_s / shared_s.max(1e-12);
    let json = format!(
        concat!(
            "{{\"bench\":\"dca_decode_reuse\",\"kernel\":\"gemm_tiled\",",
            "\"iterations\":{iters},",
            "\"decode_per_count\":{{\"total_seconds\":{a:.6},\"decodes\":{ad}}},",
            "\"shared_dense_program\":{{\"total_seconds\":{b:.6},\"decodes\":{bd}}},",
            "\"speedup\":{s:.4}}}"
        ),
        iters = ITERS,
        a = per_count_s,
        ad = per_count_decodes,
        b = shared_s,
        bd = shared_decodes,
        s = speedup,
    );
    eprintln!(
        "BENCH dca_decode_reuse: per-count {per_count_s:.3}s ({per_count_decodes} decodes) \
         vs shared {shared_s:.3}s ({shared_decodes} decodes), {speedup:.2}x"
    );
    json
}

/// Write the BENCH artifact: one JSON object per line, `dca_decode_reuse`
/// then `dca_poly_counting` (the `poly` group).
fn emit_artifacts() {
    let decode = decode_reuse_json();
    let poly = poly_artifact_json();
    let dir = cnnperf_bench::figures_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("dca_counting.bench.json");
    let _ = std::fs::write(&path, format!("{decode}\n{poly}\n"));
    eprintln!("BENCH artifact -> {}", path.display());
    let sidecar = cnnperf_bench::write_stats_sidecar("dca_counting");
    eprintln!("BENCH stats sidecar: {}", sidecar.display());
}

criterion_group!(
    benches,
    bench_splitting_vs_bruteforce,
    bench_slice_ablation,
    bench_plan_counting,
    bench_decode_reuse,
    bench_poly_vs_interp
);

fn main() {
    benches();
    emit_artifacts();
}
