//! Simulator-fidelity ablation: detailed event-driven mode (the ground
//! truth / naive-profiling stand-in), detailed without launch memoization,
//! and the closed-form analytical mode.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{SimMode, Simulator};
use std::hint::black_box;

fn bench_sim_modes(c: &mut Criterion) {
    let model = cnn_ir::zoo::build("alexnet").unwrap();
    let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
    let dev = gpu_sim::specs::gtx_1080_ti();

    let mut group = c.benchmark_group("sim/alexnet");
    group.sample_size(10);
    group.bench_function("detailed_memoized", |b| {
        let sim = Simulator::new(dev.clone(), SimMode::Detailed);
        b.iter(|| black_box(sim.simulate_plan(&plan).unwrap()))
    });
    group.bench_function("detailed_no_memo", |b| {
        let sim = Simulator::new(dev.clone(), SimMode::DetailedNoMemo);
        b.iter(|| black_box(sim.simulate_plan(&plan).unwrap()))
    });
    group.bench_function("analytical", |b| {
        let sim = Simulator::new(dev.clone(), SimMode::Analytical);
        b.iter(|| black_box(sim.simulate_plan(&plan).unwrap()))
    });
    group.finish();
}

/// Dynamic frequency scaling sweep (the paper's future-work item): cost of
/// re-simulating one model across five clock points.
fn bench_dvfs_sweep(c: &mut Criterion) {
    let model = cnn_ir::zoo::build("mobilenet").unwrap();
    let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
    let base = gpu_sim::specs::gtx_1080_ti();
    let mut group = c.benchmark_group("sim/dvfs_sweep");
    group.sample_size(10);
    group.bench_function("mobilenet_5_clockpoints", |b| {
        b.iter(|| {
            for scale in [0.6, 0.8, 1.0, 1.2, 1.4] {
                let dev = base.with_clock_scale(scale);
                let sim = Simulator::new(dev, SimMode::Detailed);
                black_box(sim.simulate_plan(&plan).unwrap());
            }
        })
    });
    group.finish();
}

/// Codegen ablation: plain tiled GEMM vs 2x2 register-microtiled GEMM,
/// compared by simulated inference latency on the 1080 Ti.
fn bench_gemm_variants(c: &mut Criterion) {
    let model = cnn_ir::zoo::build("resnet50").unwrap();
    let dev = gpu_sim::specs::gtx_1080_ti();
    let mut group = c.benchmark_group("sim/gemm_variant_resnet50");
    group.sample_size(10);
    for (label, variant) in [
        ("tiled_1thread_per_elem", ptx_codegen::GemmVariant::Tiled),
        ("micro_2x2_per_thread", ptx_codegen::GemmVariant::Micro2x2),
    ] {
        let plan = ptx_codegen::lower_with(&model, "sm_61", 1, variant).unwrap();
        // report the simulated latency once (criterion measures wall time of
        // the simulation; the interesting number is the simulated ms)
        let sim = Simulator::new(dev.clone(), SimMode::Detailed)
            .simulate_plan(&plan)
            .unwrap();
        eprintln!(
            "[gemm-variant] {label}: simulated latency {:.2} ms, IPC {:.3}, {} thread instrs",
            sim.latency_ms, sim.ipc, sim.thread_instructions
        );
        let simulator = Simulator::new(dev.clone(), SimMode::Detailed);
        group.bench_function(label, |b| {
            b.iter(|| black_box(simulator.simulate_plan(&plan).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_modes,
    bench_dvfs_sweep,
    bench_gemm_variants
);
criterion_main!(benches);
