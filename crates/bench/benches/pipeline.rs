//! End-to-end pipeline benches: static analysis, lowering, and the full
//! per-model feature extraction (`t_dca`) that Table IV's estimation path
//! pays once per CNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_static_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/static_analysis");
    for name in ["mobilenet", "resnet50", "efficientnetb0"] {
        let model = cnn_ir::zoo::build(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| black_box(cnn_ir::analyze(m).unwrap()))
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/lowering");
    for name in ["mobilenet", "resnet50"] {
        let model = cnn_ir::zoo::build(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| black_box(ptx_codegen::lower(m, "sm_61").unwrap()))
        });
    }
    group.finish();
}

fn bench_full_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/profile_model_t_dca");
    group.sample_size(10);
    for name in ["alexnet", "mobilenet"] {
        let model = cnn_ir::zoo::build(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| black_box(cnnperf_core::profile_model(m).unwrap()))
        });
    }
    group.finish();
}

fn bench_zoo_build(c: &mut Criterion) {
    c.bench_function("pipeline/build_all_32_models", |b| {
        b.iter(|| black_box(cnn_ir::zoo::build_all()))
    });
}

criterion_group!(
    benches,
    bench_static_analysis,
    bench_lowering,
    bench_full_profile,
    bench_zoo_build
);
criterion_main!(benches);
