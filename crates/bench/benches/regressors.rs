//! Training and inference latency of the five regression algorithms — the
//! `t_pm` of the paper's Table IV cost model, and the "XGBoost to improve
//! execution time" / "KNN runtime grows with the dataset" discussion of
//! Section IV-B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkit::{Dataset, RegressorKind};
use std::hint::black_box;

/// Synthetic corpus shaped like the paper's (few rows, few features).
fn synthetic(rows: usize) -> Dataset {
    let mut d = Dataset::new((0..6).map(|i| format!("f{i}")).collect::<Vec<_>>());
    for i in 0..rows {
        let x: Vec<f64> = (0..6)
            .map(|f| ((i * 31 + f * 17) % 97) as f64 / 9.7)
            .collect();
        let y = (x[0] * 0.3 + x[2]).min(8.0) + (x[4] * x[1]).sqrt() * 0.1;
        d.push(format!("r{i}"), x, y);
    }
    d
}

fn bench_training(c: &mut Criterion) {
    let data = synthetic(64);
    let mut group = c.benchmark_group("regressors/train_64rows");
    for kind in RegressorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, k| {
            b.iter(|| black_box(k.fit(&data, 42)))
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let data = synthetic(64);
    let row = data.x[7].clone();
    let mut group = c.benchmark_group("regressors/predict_one");
    for kind in RegressorKind::ALL {
        let model = kind.fit(&data, 42);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &model, |b, m| {
            b.iter(|| black_box(m.predict_row(&row)))
        });
    }
    group.finish();
}

/// KNN inference cost vs training-set size (Section IV-B: "the execution
/// time increases linearly proportional to the number of data entries").
fn bench_knn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("regressors/knn_vs_dataset_size");
    for rows in [64usize, 512, 4096] {
        let data = synthetic(rows);
        let model = RegressorKind::KNearestNeighbors.fit(&data, 0);
        let row = data.x[3].clone();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &model, |b, m| {
            b.iter(|| black_box(m.predict_row(&row)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference, bench_knn_scaling);
criterion_main!(benches);
