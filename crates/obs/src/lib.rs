//! Zero-dependency observability for the estimation pipeline: lock-free
//! atomic [`Counter`]s, fixed log2-bucket [`Histogram`]s and RAII
//! [`SpanTimer`]s behind a process-global [`MetricsRegistry`].
//!
//! # Determinism contract
//!
//! The pipeline's replay tests assert byte-identical behaviour across
//! fixed-seed runs, so the layer splits its signals by how reproducible
//! they are:
//!
//! - **Counters count events.** Two identical fixed-seed runs increment
//!   every counter the exact same number of times, so counter values in a
//!   snapshot are fully deterministic.
//! - **Histograms bucket magnitudes.** A *value* histogram (slice sizes,
//!   event counts) is deterministic like a counter. A *duration* histogram
//!   records wall-clock microseconds, so its total `count` is
//!   deterministic but its per-bucket occupancy is not — wall time never
//!   leaks anywhere else.
//!
//! Snapshot rendering keeps that contract visible: metric names are sorted
//! (`BTreeMap`), JSON output is a single line with a fixed key order, and
//! only nonzero buckets are emitted.
//!
//! # Naming scheme
//!
//! Metric names are dot-separated lowercase paths,
//! `<subsystem>.<object>.<detail>`: `engine.cache.hits`,
//! `sim.memo.misses`, `profile.fault.transient`. Duration histograms end
//! in `_us`. Dashes are allowed inside a segment (tier names like
//! `stale-cache`); the Prometheus renderer sanitizes them to underscores.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of log2 buckets in a [`Histogram`]. Bucket 0 holds exact zeros;
/// bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`; the last bucket absorbs
/// everything up to `u64::MAX`.
pub const NUM_BUCKETS: usize = 64;

/// Map a value to its log2 bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, for the Prometheus `le` label.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= NUM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing event counter. All operations are relaxed
/// atomics: counters are statistics, never synchronization.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-size log2-bucket histogram of `u64` magnitudes (durations in
/// microseconds, sizes, counts). Lock-free; `sum` wraps on overflow rather
/// than panicking (2^64 µs is ~584k years of recorded time).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v > 0).then_some((i, v))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// RAII timer: records the elapsed wall time (µs) into its histogram when
/// dropped. Bind it (`let _span = ...`) for the scope you want timed.
#[must_use = "a span timer records on drop; an unbound one measures nothing"]
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    pub fn new(hist: Arc<Histogram>) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Point-in-time view of one histogram: only nonzero buckets, as
/// `(bucket_index, count)` pairs in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(usize, u64)>,
}

/// Point-in-time view of every registered metric, with deterministic
/// (sorted) iteration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of a counter, zero if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// How much a counter grew since an earlier snapshot.
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }

    /// All counters that grew since `earlier`, as name → delta.
    pub fn delta_counters(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .filter(|(_, v)| *v > 0)
            .collect()
    }

    /// Render as a single line of JSON with fixed key order:
    /// `{"schema":1,"counters":{...},"histograms":{...}}`. Hand-rolled so
    /// the crate stays dependency-free; names are escaped per JSON rules.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":1,\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(name, &mut out);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(name, &mut out);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"buckets\":{{",
                h.count, h.sum
            );
            for (j, (idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{idx}\":{n}");
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// Render in the Prometheus text exposition format. Names are prefixed
    /// `cnnperf_` and sanitized to `[a-zA-Z0-9_:]`; histograms expose the
    /// standard cumulative `_bucket{le=...}`, `_sum` and `_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (idx, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(*idx)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("cnnperf_");
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Registry of named metrics. Registration takes a mutex; the returned
/// `Arc<Counter>` / `Arc<Histogram>` handles are lock-free thereafter —
/// hot paths hold a handle (see [`LazyCounter`]) and never re-enter the
/// registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// An RAII timer recording into the duration histogram `name`.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self.histogram(name))
    }

    /// Consistent-enough point-in-time view of every metric. Individual
    /// loads are relaxed, so a snapshot taken mid-increment may be off by
    /// in-flight events — quiesce the pipeline first when asserting exact
    /// values.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// The process-global registry every subsystem instruments into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A `static`-friendly counter handle: resolves its [`global`] registration
/// on first use, then stays lock-free. Declare once per instrumentation
/// site: `static HITS: LazyCounter = LazyCounter::new("engine.cache.hits");`
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn handle(&self) -> &Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }

    #[inline]
    pub fn inc(&self) {
        self.handle().inc();
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// [`LazyCounter`]'s histogram sibling.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn handle(&self) -> &Arc<Histogram> {
        self.cell.get_or_init(|| global().histogram(self.name))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.handle().record(value);
    }

    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.handle().record_duration(d);
    }

    /// An RAII timer over this histogram.
    pub fn span(&self) -> SpanTimer {
        SpanTimer::new(Arc::clone(self.handle()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // every bucket's upper bound maps back into that bucket
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("t.concurrent"), 80_000);
    }

    #[test]
    fn histogram_counts_and_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1029);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (2, 1), (11, 1)]);
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let reg = MetricsRegistry::new();
        reg.counter("same").inc();
        reg.counter("same").inc();
        assert_eq!(reg.snapshot().counter("same"), 2);
    }

    #[test]
    fn json_is_single_line_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.histogram("h.sizes").record(5);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b, "identical state must render identically");
        assert!(!a.contains('\n'));
        assert_eq!(
            a,
            "{\"schema\":1,\"counters\":{\"a.first\":1,\"b.second\":2},\
             \"histograms\":{\"h.sizes\":{\"count\":1,\"sum\":5,\"buckets\":{\"3\":1}}}}"
        );
    }

    #[test]
    fn prometheus_renders_sanitized_names_and_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.tier.stale-cache.hits").add(3);
        let h = reg.histogram("lat_us");
        h.record(1);
        h.record(100);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("cnnperf_engine_tier_stale_cache_hits 3"));
        assert!(text.contains("cnnperf_lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("cnnperf_lat_us_bucket{le=\"127\"} 2"));
        assert!(text.contains("cnnperf_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cnnperf_lat_us_count 2"));
    }

    #[test]
    fn span_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _span = reg.span("t.span_us");
        }
        assert_eq!(reg.snapshot().histograms["t.span_us"].count, 1);
    }

    #[test]
    fn lazy_statics_register_globally() {
        static C: LazyCounter = LazyCounter::new("obs.test.lazy");
        static H: LazyHistogram = LazyHistogram::new("obs.test.lazy_hist");
        C.inc();
        C.add(2);
        H.record(7);
        let snap = global().snapshot();
        assert_eq!(snap.counter("obs.test.lazy"), 3);
        assert_eq!(snap.histograms["obs.test.lazy_hist"].count, 1);
    }

    #[test]
    fn counter_delta_between_snapshots() {
        let reg = MetricsRegistry::new();
        reg.counter("d.x").inc();
        let before = reg.snapshot();
        reg.counter("d.x").add(4);
        reg.counter("d.y").inc();
        let after = reg.snapshot();
        assert_eq!(after.counter_delta(&before, "d.x"), 4);
        let deltas = after.delta_counters(&before);
        assert_eq!(deltas["d.x"], 4);
        assert_eq!(deltas["d.y"], 1);
    }
}
