//! Fast analytical (roofline-style) launch timing — the cheap alternative
//! to the event-driven simulator, kept for ablations and sanity checks.
//! Cycles are the maximum of the issue, compute-pipe, memory-bandwidth and
//! latency bounds.

use crate::occupancy::occupancy;
use crate::specs::DeviceSpec;
use crate::timing::{l2_hit_rate, timing_for};
use ptx::kernel::{Kernel, KernelLaunch};
use ptx_analysis::{ExecError, LaunchCount};

/// Analytical estimate of launch cycles. Uses the same exact counts as the
/// detailed mode but closed-form timing.
pub fn estimate_launch(
    kernel: &Kernel,
    launch: &KernelLaunch,
    counts: &LaunchCount,
    dev: &DeviceSpec,
) -> Result<f64, ExecError> {
    let timing = timing_for(dev);
    let occ = occupancy(kernel, dev);
    if !occ.feasible() {
        return Err(ExecError::Unlaunchable {
            kernel: kernel.name.clone(),
            reason: format!(
                "zero blocks fit on an SM of `{}` (limited by {:?})",
                dev.name, occ.limiter
            ),
        });
    }
    let active_sms = launch.blocks().min(dev.sm_count as u64).max(1) as f64;

    // warp-level issues per category (approximate: thread-level mix scaled
    // to the warp total)
    let thread_total: u64 = counts.by_category.iter().sum();
    let scale = if thread_total > 0 {
        counts.warp_issues as f64 / thread_total as f64
    } else {
        0.0
    };

    let mut compute = 0.0f64;
    for (i, &n) in counts.by_category.iter().enumerate() {
        compute += n as f64 * scale * timing.cpi[i];
    }
    let compute_cycles = compute / active_sms;

    let issue_cycles = counts.warp_issues as f64 * timing.issue_cpi / active_sms;

    let l2_hit = l2_hit_rate(launch.bytes_read, dev.l2_cache_kb);
    let dram_bytes = launch.bytes_read as f64 * (1.0 - l2_hit) + launch.bytes_written as f64;
    let mem_cycles = dram_bytes / dev.bytes_per_cycle();

    // latency bound: average dependent-use latency divided by the warps
    // available to hide it
    let mut avg_lat = 0.0f64;
    for (i, &n) in counts.by_category.iter().enumerate() {
        avg_lat += n as f64 * timing.latency[i];
    }
    if thread_total > 0 {
        avg_lat /= thread_total as f64;
    }
    let latency_cycles =
        counts.warp_issues as f64 * avg_lat / active_sms / occ.warps_per_sm.max(1) as f64;

    let overhead = crate::detailed::LAUNCH_OVERHEAD_US * 1e-6 * dev.boost_clock_mhz as f64 * 1e6;
    Ok(compute_cycles
        .max(issue_cycles)
        .max(mem_cycles)
        .max(latency_cycles)
        + overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::gtx_1080_ti;
    use ptx_analysis::count_launch;

    #[test]
    fn analytical_tracks_detailed_within_a_band() {
        // The two models must agree on order of magnitude for a compute-
        // heavy GEMM.
        let k = ptx_codegen::Template::GemmTiled.build();
        let l = ptx::kernel::KernelLaunch {
            kernel: 0,
            tag: "gemm".into(),
            grid: ((512 * 512 / 256) as u32, 1, 1),
            args: vec![0x1000, 0x2000, 0x3000, 512, 512, 512, 32, 0, 0],
            bytes_read: 512 * 512 * 8,
            bytes_written: 512 * 512 * 4,
        };
        let dev = gtx_1080_ti();
        let counts = count_launch(&k, &l, true).unwrap();
        let fast = estimate_launch(&k, &l, &counts, &dev).unwrap();
        let slow = crate::detailed::simulate_launch(&k, &l, &dev)
            .unwrap()
            .cycles;
        let ratio = slow / fast;
        assert!(
            (0.2..8.0).contains(&ratio),
            "detailed {slow:.0} vs analytical {fast:.0} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn memory_bound_launch_is_bandwidth_limited() {
        let k = ptx_codegen::Template::CopyF32.build();
        let n: u64 = 1 << 26;
        let l = ptx::kernel::KernelLaunch {
            kernel: 0,
            tag: "copy".into(),
            grid: ((n / 4 / 256) as u32, 1, 1),
            args: vec![0x1000, 0x2000, n],
            bytes_read: n * 4,
            bytes_written: n * 4,
        };
        let dev = gtx_1080_ti();
        let counts = count_launch(&k, &l, true).unwrap();
        let cycles = estimate_launch(&k, &l, &counts, &dev).unwrap();
        // pure bandwidth bound: dram_bytes / bytes_per_cycle is the floor
        let l2 = crate::timing::l2_hit_rate(n * 4, dev.l2_cache_kb);
        let floor = (n as f64 * 4.0 * (1.0 - l2) + n as f64 * 4.0) / dev.bytes_per_cycle();
        assert!(cycles >= floor * 0.99, "{cycles} < {floor}");
    }
}
