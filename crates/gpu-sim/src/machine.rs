//! Whole-plan simulation: run every launch of a [`LaunchPlan`] on a device
//! and aggregate cycles, instruction counts and the headline IPC metric.

use crate::detailed::{simulate_launch_budgeted, LaunchSim};
use crate::specs::DeviceSpec;
use parking_lot::Mutex;
use ptx::kernel::{KernelLaunch, LaunchPlan};
use ptx_analysis::{ExecBudget, ExecError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Launch simulations answered from the per-plan memo table.
static SIM_MEMO_HITS: obs::LazyCounter = obs::LazyCounter::new("sim.memo.hits");
/// Unique launch shapes actually simulated in memoized mode.
static SIM_MEMO_MISSES: obs::LazyCounter = obs::LazyCounter::new("sim.memo.misses");

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Event-driven wave simulation with launch memoization (dataset
    /// building).
    Detailed,
    /// Event-driven without memoization — every launch simulated
    /// separately, the honest stand-in for "run it on hardware under
    /// nvprof" in the Table IV timing comparison.
    DetailedNoMemo,
    /// Closed-form roofline estimate (ablation).
    Analytical,
}

/// Aggregated simulation result for one model on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    pub model_name: String,
    pub device_name: String,
    /// Total core cycles of the inference pass.
    pub cycles: f64,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread-level executed instructions.
    pub thread_instructions: u64,
    /// The paper's response variable: warp instructions per *active* SM
    /// cycle, matching `nvprof`'s `ipc` metric (which averages over SMs
    /// that have resident work, not over idle ones).
    pub ipc: f64,
    /// Wall-clock latency implied by `cycles` at boost clock, in ms.
    pub latency_ms: f64,
    /// Total DRAM traffic (bytes).
    pub dram_bytes: f64,
    /// Traffic-weighted average L2 hit rate.
    pub l2_hit: f64,
    pub num_launches: usize,
}

/// The simulator: one device, one fidelity mode.
#[derive(Debug, Clone)]
pub struct Simulator {
    pub dev: DeviceSpec,
    pub mode: SimMode,
}

impl Simulator {
    pub fn new(dev: DeviceSpec, mode: SimMode) -> Self {
        Self { dev, mode }
    }

    /// Simulate a full launch plan (serialized launches, as in single-stream
    /// inference).
    pub fn simulate_plan(&self, plan: &LaunchPlan) -> Result<SimReport, ExecError> {
        self.simulate_plan_budgeted(plan, &ExecBudget::default())
    }

    /// [`simulate_plan`] under an execution budget: the budget's step fuel
    /// and cancellation token propagate into every per-launch simulation
    /// (detailed cycle loops included), so a deadline-driven caller can
    /// abort the whole plan cooperatively.
    pub fn simulate_plan_budgeted(
        &self,
        plan: &LaunchPlan,
        budget: &ExecBudget,
    ) -> Result<SimReport, ExecError> {
        let sims: Vec<LaunchSim> = match self.mode {
            SimMode::Detailed => self.run_memoized(plan, budget)?,
            SimMode::DetailedNoMemo => plan
                .launches
                .par_iter()
                .map(|l| {
                    simulate_launch_budgeted(&plan.module.kernels[l.kernel], l, &self.dev, budget)
                })
                .collect::<Result<_, _>>()?,
            SimMode::Analytical => plan
                .launches
                .par_iter()
                .map(|l| {
                    let k = &plan.module.kernels[l.kernel];
                    let counts = ptx_analysis::count_launch_budgeted(k, l, true, budget)?;
                    let cycles = crate::analytical::estimate_launch(k, l, &counts, &self.dev)?;
                    Ok(LaunchSim {
                        cycles,
                        warp_instructions: counts.warp_issues,
                        thread_instructions: counts.thread_instructions,
                        dram_bytes: (l.bytes_read + l.bytes_written) as f64,
                        l2_hit: crate::timing::l2_hit_rate(l.bytes_read, self.dev.l2_cache_kb),
                        active_sms: self.dev.sm_count,
                    })
                })
                .collect::<Result<_, _>>()?,
        };

        let cycles: f64 = sims.iter().map(|s| s.cycles).sum();
        let warp_instructions: u64 = sims.iter().map(|s| s.warp_instructions).sum();
        let thread_instructions: u64 = sims.iter().map(|s| s.thread_instructions).sum();
        let dram_bytes: f64 = sims.iter().map(|s| s.dram_bytes).sum();
        let l2_hit = if dram_bytes > 0.0 {
            sims.iter().map(|s| s.l2_hit * s.dram_bytes).sum::<f64>() / dram_bytes
        } else {
            0.0
        };
        // active-SM cycle integral: each launch contributes its cycles
        // weighted by the SMs that actually held blocks (nvprof semantics)
        let active_cycles: f64 = sims
            .iter()
            .map(|s| s.cycles * s.active_sms.max(1) as f64)
            .sum();
        let ipc = warp_instructions as f64 / active_cycles.max(1.0);
        let latency_ms = cycles / (self.dev.boost_clock_mhz as f64 * 1e3);

        Ok(SimReport {
            model_name: plan.model_name.clone(),
            device_name: self.dev.name.clone(),
            cycles,
            warp_instructions,
            thread_instructions,
            ipc,
            latency_ms,
            dram_bytes,
            l2_hit,
            num_launches: plan.launches.len(),
        })
    }

    /// Detailed simulation with per-(kernel, grid, args) memoization —
    /// repeated identical layers cost one simulation.
    fn run_memoized(
        &self,
        plan: &LaunchPlan,
        budget: &ExecBudget,
    ) -> Result<Vec<LaunchSim>, ExecError> {
        type Key = (usize, u32, Vec<u64>, u64, u64);
        let key_of = |l: &KernelLaunch| -> Key {
            (
                l.kernel,
                l.grid.0,
                l.args.clone(),
                l.bytes_read,
                l.bytes_written,
            )
        };
        let mut keys: Vec<Key> = Vec::new();
        let mut ids: Vec<usize> = Vec::with_capacity(plan.launches.len());
        {
            let mut index: HashMap<Key, usize> = HashMap::new();
            for l in &plan.launches {
                let key = key_of(l);
                let id = *index.entry(key.clone()).or_insert_with(|| {
                    keys.push(key);
                    keys.len() - 1
                });
                ids.push(id);
            }
        }
        SIM_MEMO_MISSES.add(keys.len() as u64);
        SIM_MEMO_HITS.add((plan.launches.len() - keys.len()) as u64);
        let cache: Mutex<HashMap<usize, LaunchSim>> = Mutex::new(HashMap::new());
        keys.par_iter().enumerate().try_for_each(
            |(id, (kidx, grid, args, br, bw))| -> Result<(), ExecError> {
                let launch = KernelLaunch {
                    kernel: *kidx,
                    tag: String::new(),
                    grid: (*grid, 1, 1),
                    args: args.clone(),
                    bytes_read: *br,
                    bytes_written: *bw,
                };
                let sim = simulate_launch_budgeted(
                    &plan.module.kernels[*kidx],
                    &launch,
                    &self.dev,
                    budget,
                )?;
                cache.lock().insert(id, sim);
                Ok(())
            },
        )?;
        let cache = cache.into_inner();
        Ok(ids.iter().map(|id| cache[id].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{gtx_1080_ti, quadro_p1000, v100s};

    fn plan_for(name: &str) -> LaunchPlan {
        let model = cnn_ir::zoo::build(name).unwrap();
        ptx_codegen::lower(&model, "sm_61").unwrap()
    }

    #[test]
    fn alexnet_simulates_on_1080ti() {
        let sim = Simulator::new(gtx_1080_ti(), SimMode::Detailed);
        let r = sim.simulate_plan(&plan_for("alexnet")).unwrap();
        assert!(r.cycles > 0.0);
        assert!(r.ipc > 0.01 && r.ipc < 8.0, "ipc {}", r.ipc);
        // AlexNet inference on a 1080 Ti is single-digit milliseconds in
        // reality; accept a broad band for the model
        assert!(
            r.latency_ms > 0.3 && r.latency_ms < 300.0,
            "latency {} ms",
            r.latency_ms
        );
    }

    #[test]
    fn memoized_equals_unmemoized() {
        let plan = plan_for("alexnet");
        let a = Simulator::new(gtx_1080_ti(), SimMode::Detailed)
            .simulate_plan(&plan)
            .unwrap();
        let b = Simulator::new(gtx_1080_ti(), SimMode::DetailedNoMemo)
            .simulate_plan(&plan)
            .unwrap();
        assert_eq!(a.warp_instructions, b.warp_instructions);
        assert!((a.cycles - b.cycles).abs() < 1e-6 * a.cycles.max(1.0));
    }

    #[test]
    fn device_ordering_holds() {
        let plan = plan_for("mobilenet");
        let lat = |dev: DeviceSpec| {
            Simulator::new(dev, SimMode::Detailed)
                .simulate_plan(&plan)
                .unwrap()
                .latency_ms
        };
        let v100 = lat(v100s());
        let gtx = lat(gtx_1080_ti());
        let p1000 = lat(quadro_p1000());
        assert!(v100 < p1000, "V100S {v100} >= P1000 {p1000}");
        assert!(gtx < p1000, "1080Ti {gtx} >= P1000 {p1000}");
    }

    #[test]
    fn ipc_varies_across_models() {
        let sim = Simulator::new(gtx_1080_ti(), SimMode::Detailed);
        let a = sim.simulate_plan(&plan_for("alexnet")).unwrap().ipc;
        let b = sim.simulate_plan(&plan_for("mobilenet")).unwrap().ipc;
        assert!(
            (a - b).abs() > 1e-3,
            "IPC suspiciously identical: {a} vs {b}"
        );
    }
}
