//! Deterministic, seeded fault injection for the profiling pipeline.
//!
//! Real profiling campaigns fail in three characteristic ways: a run dies
//! with a transient error (driver hiccup, ECC retirement, preempted node),
//! a simulation hangs and must be killed, or a measurement lands in the
//! heavy right tail (another tenant, clock throttling). This module
//! emulates all three, seeded per `(model, device, run, attempt)` so an
//! identical fault profile and seed replays the exact same fault sequence
//! — the property the corpus-report determinism tests rely on.
//!
//! Nothing here sleeps or spins: a "hang" is reported as an outcome and
//! the measurement layer translates it into a retryable failure, the same
//! way a watchdog that kills a wedged `nvprof` would.

use serde::{Deserialize, Serialize};

/// What the fault model decides for one profiling attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// The attempt proceeds and the measurement is usable as-is.
    Clean,
    /// The attempt dies with a transient, retryable failure.
    Transient,
    /// The attempt wedges; a watchdog kills it (retryable).
    Hang,
    /// The attempt completes but the measured IPC is scaled by this
    /// heavy-tailed factor (always `< 1`: contention slows the run down).
    Outlier(f64),
}

/// Fault rates for a profiling campaign. All rates are probabilities per
/// attempt in `[0, 1]`; `seed` decorrelates campaigns that share rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability an attempt fails with a transient error.
    pub transient_rate: f64,
    /// Probability an attempt hangs and is killed by the watchdog.
    pub hang_rate: f64,
    /// Probability a completed measurement is a heavy-tailed outlier.
    pub outlier_rate: f64,
    /// Scale of the outlier tail: the IPC of an outlier run is divided by
    /// `1 + outlier_scale * pareto_draw`, so larger means wilder outliers.
    pub outlier_scale: f64,
    /// Campaign seed mixed into every per-attempt decision.
    pub seed: u64,
}

impl FaultProfile {
    /// No faults at all; [`FaultInjector`] short-circuits to `Clean`.
    pub fn none() -> Self {
        FaultProfile {
            transient_rate: 0.0,
            hang_rate: 0.0,
            outlier_rate: 0.0,
            outlier_scale: 0.0,
            seed: 0,
        }
    }

    /// A well-behaved cluster: rare transients, occasional mild outliers.
    pub fn light() -> Self {
        FaultProfile {
            transient_rate: 0.02,
            hang_rate: 0.005,
            outlier_rate: 0.02,
            outlier_scale: 1.0,
            seed: 0,
        }
    }

    /// A contended, flaky fleet: the stress level of the acceptance tests.
    pub fn harsh() -> Self {
        FaultProfile {
            transient_rate: 0.20,
            hang_rate: 0.03,
            outlier_rate: 0.05,
            outlier_scale: 3.0,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn is_none(&self) -> bool {
        self.transient_rate == 0.0 && self.hang_rate == 0.0 && self.outlier_rate == 0.0
    }

    /// Parse a CLI spec: a preset name (`none`, `light`, `harsh`) or a
    /// comma-separated key=value list over the field names, e.g.
    /// `transient=0.2,outlier=0.05,seed=7`. Unlisted fields keep the
    /// `none()` defaults (`scale` defaults to 1 when any outliers are on).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "none" => return Ok(Self::none()),
            "light" => return Ok(Self::light()),
            "harsh" => return Ok(Self::harsh()),
            _ => {}
        }
        let mut p = Self::none();
        let mut scale_set = false;
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec element `{part}` (want key=value)"))?;
            let fval = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("bad number `{value}` for `{key}`"))
            };
            match key.trim() {
                "transient" => p.transient_rate = fval()?,
                "hang" => p.hang_rate = fval()?,
                "outlier" => p.outlier_rate = fval()?,
                "scale" => {
                    p.outlier_scale = fval()?;
                    scale_set = true;
                }
                "seed" => {
                    p.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("bad seed `{value}`"))?
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        for (name, rate) in [
            ("transient", p.transient_rate),
            ("hang", p.hang_rate),
            ("outlier", p.outlier_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} rate {rate} outside [0, 1]"));
            }
        }
        if p.outlier_rate > 0.0 && !scale_set {
            p.outlier_scale = 1.0;
        }
        Ok(p)
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

/// Draws fault outcomes deterministically from a [`FaultProfile`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
}

/// splitmix64 finalizer: turns a structured key hash into uniform bits.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over the attempt identity plus the campaign seed.
fn attempt_hash(seed: u64, model: &str, device: &str, run: u32, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in model
        .bytes()
        .chain(device.bytes())
        .chain(run.to_le_bytes())
        .chain(attempt.to_le_bytes())
        .chain(seed.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    pub fn new(profile: FaultProfile) -> Self {
        FaultInjector { profile }
    }

    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fate of one profiling attempt. Pure in its arguments:
    /// the same `(profile, model, device, run, attempt)` always yields the
    /// same outcome, and the decision varies with `attempt` so retries of
    /// a transiently-failed run can succeed.
    pub fn outcome(&self, model: &str, device: &str, run: u32, attempt: u32) -> FaultOutcome {
        let p = &self.profile;
        if p.is_none() {
            return FaultOutcome::Clean;
        }
        let h = attempt_hash(p.seed, model, device, run, attempt);
        let u_kind = unit(mix(h));
        if u_kind < p.transient_rate {
            return FaultOutcome::Transient;
        }
        if u_kind < p.transient_rate + p.hang_rate {
            return FaultOutcome::Hang;
        }
        if u_kind < p.transient_rate + p.hang_rate + p.outlier_rate {
            // Pareto(alpha = 1.5) tail: finite mean, infinite variance —
            // exactly the regime where a mean is ruined but a median holds.
            let u_tail = unit(mix(h ^ 0xA5A5_A5A5_A5A5_A5A5)).max(1e-12);
            let pareto = u_tail.powf(-1.0 / 1.5) - 1.0;
            let factor = 1.0 / (1.0 + p.outlier_scale * pareto);
            return FaultOutcome::Outlier(factor);
        }
        FaultOutcome::Clean
    }
}

/// What the chaos model injects into one estimation-tier invocation.
///
/// Unlike [`FaultOutcome`], which the measurement layer *reports*, a tier
/// fault is *acted out* by the tier worker: a `Hang` really spins until the
/// deadline's cancellation token fires, a `Panic` really unwinds, and a
/// `Slow` really sleeps before doing the work. That makes the chaos suite
/// exercise the engine's deadline and circuit-breaker machinery for real
/// rather than against simulated flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierFaultKind {
    /// The tier runs normally.
    None,
    /// The tier wedges and never produces a result on its own; only the
    /// cancellation token (tripped when the tier's time slice expires)
    /// gets it off the CPU.
    Hang,
    /// The tier panics mid-flight; the engine must contain the unwind.
    Panic,
    /// The tier sleeps for [`ChaosProfile::slow_ms`] before doing the real
    /// work — long enough to blow a tight per-tier slice, short enough to
    /// succeed under a generous one.
    Slow,
}

/// Chaos rates for the resilient estimation engine. All rates are
/// probabilities per `(model, device, tier)` invocation in `[0, 1]`,
/// drawn from disjoint slices of one uniform variate (so they must sum to
/// at most 1); `seed` decorrelates campaigns that share rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Probability a tier invocation hangs until cancelled.
    pub hang_rate: f64,
    /// Probability a tier invocation panics.
    pub panic_rate: f64,
    /// Probability a tier invocation is delayed by `slow_ms` first.
    pub slow_rate: f64,
    /// Injected delay for `Slow` faults, in milliseconds.
    pub slow_ms: u64,
    /// Campaign seed mixed into every per-invocation decision.
    pub seed: u64,
}

impl ChaosProfile {
    /// No chaos; [`ChaosInjector`] short-circuits to `None`.
    pub fn none() -> Self {
        ChaosProfile {
            hang_rate: 0.0,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn is_none(&self) -> bool {
        self.hang_rate == 0.0 && self.panic_rate == 0.0 && self.slow_rate == 0.0
    }

    /// Parse a CLI spec: `none`, or a comma-separated key=value list, e.g.
    /// `hang=0.3,panic=0.2,slow=0.2,slow_ms=50,seed=7`. Unlisted fields
    /// keep the `none()` defaults (`slow_ms` defaults to 25 when any slow
    /// faults are on).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "none" {
            return Ok(Self::none());
        }
        let mut p = Self::none();
        let mut slow_ms_set = false;
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos spec element `{part}` (want key=value)"))?;
            let fval = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("bad number `{value}` for `{key}`"))
            };
            let uval = || {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad integer `{value}` for `{key}`"))
            };
            match key.trim() {
                "hang" => p.hang_rate = fval()?,
                "panic" => p.panic_rate = fval()?,
                "slow" => p.slow_rate = fval()?,
                "slow_ms" => {
                    p.slow_ms = uval()?;
                    slow_ms_set = true;
                }
                "seed" => p.seed = uval()?,
                other => return Err(format!("unknown chaos spec key `{other}`")),
            }
        }
        for (name, rate) in [
            ("hang", p.hang_rate),
            ("panic", p.panic_rate),
            ("slow", p.slow_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} rate {rate} outside [0, 1]"));
            }
        }
        if p.hang_rate + p.panic_rate + p.slow_rate > 1.0 {
            return Err(format!(
                "chaos rates sum to {} > 1",
                p.hang_rate + p.panic_rate + p.slow_rate
            ));
        }
        if p.slow_rate > 0.0 && !slow_ms_set {
            p.slow_ms = 25;
        }
        Ok(p)
    }
}

impl Default for ChaosProfile {
    fn default() -> Self {
        Self::none()
    }
}

/// Draws tier faults deterministically from a [`ChaosProfile`].
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    profile: ChaosProfile,
}

impl ChaosInjector {
    pub fn new(profile: ChaosProfile) -> Self {
        ChaosInjector { profile }
    }

    pub fn profile(&self) -> &ChaosProfile {
        &self.profile
    }

    /// Decide the fate of one tier invocation. Pure in its arguments: the
    /// same `(profile, model, device, tier)` always yields the same fault,
    /// so a fixed-seed chaos run replays byte-for-byte, and the fault
    /// varies across tiers so one request can hit a hang in the detailed
    /// tier and still find a clean analytical tier beneath it.
    pub fn tier_fault(&self, model: &str, device: &str, tier: &str) -> TierFaultKind {
        let p = &self.profile;
        if p.is_none() {
            return TierFaultKind::None;
        }
        // reuse the attempt hash with the tier name folded into the model
        // slot and a fixed discriminator in run/attempt so chaos draws are
        // decorrelated from FaultInjector draws that share a seed
        let key = format!("{model}\u{1f}{tier}");
        let h = attempt_hash(p.seed ^ 0xC0A5_1DE5_C0A5_1DE5, &key, device, u32::MAX, 0);
        let u = unit(mix(h));
        if u < p.hang_rate {
            return TierFaultKind::Hang;
        }
        if u < p.hang_rate + p.panic_rate {
            return TierFaultKind::Panic;
        }
        if u < p.hang_rate + p.panic_rate + p.slow_rate {
            return TierFaultKind::Slow;
        }
        TierFaultKind::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_is_always_clean() {
        let inj = FaultInjector::new(FaultProfile::none());
        for run in 0..100 {
            assert_eq!(inj.outcome("m", "d", run, 0), FaultOutcome::Clean);
        }
    }

    #[test]
    fn outcomes_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultProfile::harsh().with_seed(1));
        let b = FaultInjector::new(FaultProfile::harsh().with_seed(1));
        let c = FaultInjector::new(FaultProfile::harsh().with_seed(2));
        let mut differs = false;
        for run in 0..200 {
            assert_eq!(a.outcome("m", "d", run, 0), b.outcome("m", "d", run, 0));
            if a.outcome("m", "d", run, 0) != c.outcome("m", "d", run, 0) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should change the fault stream");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(FaultProfile::harsh().with_seed(9));
        let n = 4000;
        let mut transients = 0;
        let mut outliers = 0;
        for run in 0..n {
            match inj.outcome("model", "device", run, 0) {
                FaultOutcome::Transient => transients += 1,
                FaultOutcome::Outlier(f) => {
                    assert!(f < 1.0 && f > 0.0, "outliers slow runs down: {f}");
                    outliers += 1;
                }
                _ => {}
            }
        }
        let t = transients as f64 / n as f64;
        let o = outliers as f64 / n as f64;
        assert!((t - 0.20).abs() < 0.03, "transient rate {t}");
        assert!((o - 0.05).abs() < 0.02, "outlier rate {o}");
    }

    #[test]
    fn retries_can_succeed_after_transient() {
        let inj = FaultInjector::new(FaultProfile::harsh().with_seed(3));
        // for every transient first attempt, some later attempt is clean
        for run in 0..200 {
            if inj.outcome("m", "d", run, 0) == FaultOutcome::Transient {
                let recovered =
                    (1..10).any(|a| matches!(inj.outcome("m", "d", run, a), FaultOutcome::Clean));
                assert!(recovered, "run {run} never recovers within 10 attempts");
            }
        }
    }

    #[test]
    fn chaos_faults_are_deterministic_and_tier_sensitive() {
        let p = ChaosProfile {
            hang_rate: 0.3,
            panic_rate: 0.2,
            slow_rate: 0.2,
            slow_ms: 10,
            seed: 11,
        };
        let a = ChaosInjector::new(p.clone());
        let b = ChaosInjector::new(p);
        let mut tier_differs = false;
        for m in ["alexnet", "vgg16", "mobilenet", "resnet50"] {
            for d in ["GTX 1080 Ti", "V100S"] {
                assert_eq!(
                    a.tier_fault(m, d, "detailed"),
                    b.tier_fault(m, d, "detailed")
                );
                if a.tier_fault(m, d, "detailed") != a.tier_fault(m, d, "analytical") {
                    tier_differs = true;
                }
            }
        }
        assert!(tier_differs, "tier name should decorrelate chaos draws");
    }

    #[test]
    fn chaos_rates_are_roughly_respected() {
        let inj = ChaosInjector::new(ChaosProfile {
            hang_rate: 0.25,
            panic_rate: 0.25,
            slow_rate: 0.25,
            slow_ms: 1,
            seed: 5,
        });
        let n = 3000;
        let (mut hangs, mut panics, mut slows) = (0, 0, 0);
        for i in 0..n {
            match inj.tier_fault(&format!("model{i}"), "dev", "tier") {
                TierFaultKind::Hang => hangs += 1,
                TierFaultKind::Panic => panics += 1,
                TierFaultKind::Slow => slows += 1,
                TierFaultKind::None => {}
            }
        }
        for (name, count) in [("hang", hangs), ("panic", panics), ("slow", slows)] {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.25).abs() < 0.04, "{name} rate {rate}");
        }
    }

    #[test]
    fn chaos_parse_specs() {
        assert!(ChaosProfile::parse("none").unwrap().is_none());
        let p = ChaosProfile::parse("hang=0.3,slow=0.1,seed=7").unwrap();
        assert_eq!(p.hang_rate, 0.3);
        assert_eq!(p.slow_rate, 0.1);
        assert_eq!(p.slow_ms, 25, "slow_ms defaults on when slow set");
        assert_eq!(p.seed, 7);
        assert!(ChaosProfile::parse("hang=0.6,panic=0.6").is_err());
        assert!(ChaosProfile::parse("bogus=1").is_err());
        assert!(ChaosProfile::parse("garbage").is_err());
    }

    #[test]
    fn parse_presets_and_specs() {
        assert_eq!(FaultProfile::parse("none").unwrap(), FaultProfile::none());
        assert_eq!(FaultProfile::parse("harsh").unwrap(), FaultProfile::harsh());
        let p = FaultProfile::parse("transient=0.2,outlier=0.05,seed=7").unwrap();
        assert_eq!(p.transient_rate, 0.2);
        assert_eq!(p.outlier_rate, 0.05);
        assert_eq!(p.outlier_scale, 1.0, "scale defaults on when outliers set");
        assert_eq!(p.seed, 7);
        assert!(FaultProfile::parse("transient=2.0").is_err());
        assert!(FaultProfile::parse("bogus=1").is_err());
        assert!(FaultProfile::parse("garbage").is_err());
    }
}
