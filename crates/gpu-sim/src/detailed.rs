//! The detailed event-driven SM simulator — this crate's "real hardware".
//!
//! For each launch, one *wave* (a full complement of resident blocks on one
//! SM) is simulated instruction by instruction: a binary heap orders warps
//! by readiness; each issued instruction occupies its pipeline for its
//! reciprocal-throughput cost and delays its warp by its dependent-use
//! latency; global loads probe a deterministic L2 model and consume DRAM
//! bandwidth tokens on miss; barriers rejoin all warps of a block. Waves
//! multiply out to the full grid.
//!
//! The per-warp instruction stream is the representative-thread category
//! trace from [`ptx_analysis::Machine::run_traced`] — exact for uniform
//! launches, the dominant path under guard divergence.

use crate::occupancy::occupancy;
use crate::specs::DeviceSpec;
use crate::timing::{l2_hit_rate, timing_for, Timing};
use ptx::inst::Category;
use ptx::kernel::{Kernel, KernelLaunch};
use ptx_analysis::{ExecBudget, ExecError, Machine};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Launches entering the detailed simulator.
static SIM_LAUNCHES: obs::LazyCounter = obs::LazyCounter::new("sim.launches");
/// Grid waves implied by the simulated launches.
static SIM_WAVES: obs::LazyCounter = obs::LazyCounter::new("sim.waves");
/// Warp-issue events popped by the event-driven wave loop.
static SIM_EVENTS: obs::LazyCounter = obs::LazyCounter::new("sim.events");
/// Wave simulations aborted by a tripped cancellation token.
static SIM_CANCELLED: obs::LazyCounter = obs::LazyCounter::new("sim.cancelled");
/// Launches rejected because zero blocks fit on an SM.
static SIM_INFEASIBLE: obs::LazyCounter = obs::LazyCounter::new("sim.occupancy.infeasible");

/// Scheduler events between cooperative-cancellation checks in the
/// event-driven wave loop. This is the detailed simulator's documented
/// cancellation-latency contract: once the [`ExecBudget`] token trips, the
/// cycle loop returns [`ExecError::Cancelled`] after at most this many
/// further warp-issue events (each event is one heap pop — nanoseconds of
/// host work — so the wall-clock observation latency is microseconds).
pub const SIM_CANCEL_CHECK_EVENTS: u64 = 4096;

/// Detailed-simulation result for one launch.
#[derive(Debug, Clone)]
pub struct LaunchSim {
    /// Core cycles the launch occupies the GPU.
    pub cycles: f64,
    /// Warp instructions issued (whole launch).
    pub warp_instructions: u64,
    /// Thread-level instruction count (whole launch).
    pub thread_instructions: u64,
    /// DRAM traffic after the L2 (bytes).
    pub dram_bytes: f64,
    pub l2_hit: f64,
    /// SMs with at least one resident block.
    pub active_sms: u32,
}

fn cat_idx(c: Category) -> usize {
    Category::ALL.iter().position(|x| *x == c).expect("cat")
}

/// Per-launch kernel overhead in microseconds (driver + dispatch).
pub const LAUNCH_OVERHEAD_US: f64 = 2.5;

/// Traces longer than this are truncated and scaled linearly — keeps worst
/// case dense layers tractable without changing the steady-state rate.
const TRACE_CAP: usize = 262_144;

/// Simulate one launch on `dev` in detail (unbounded budget).
pub fn simulate_launch(
    kernel: &Kernel,
    launch: &KernelLaunch,
    dev: &DeviceSpec,
) -> Result<LaunchSim, ExecError> {
    simulate_launch_budgeted(kernel, launch, dev, &ExecBudget::default())
}

/// [`simulate_launch`] under an execution budget: the budget's step fuel
/// and cancellation token bound both the representative-thread execution
/// and — via [`SIM_CANCEL_CHECK_EVENTS`] — the event-driven cycle loop
/// itself, so a deadline-driven caller can abort a runaway simulation.
pub fn simulate_launch_budgeted(
    kernel: &Kernel,
    launch: &KernelLaunch,
    dev: &DeviceSpec,
    budget: &ExecBudget,
) -> Result<LaunchSim, ExecError> {
    let timing = timing_for(dev);
    let occ = occupancy(kernel, dev);
    if !occ.feasible() {
        SIM_INFEASIBLE.inc();
        return Err(ExecError::Unlaunchable {
            kernel: kernel.name.clone(),
            reason: format!(
                "zero blocks fit on an SM of `{}` (limited by {:?})",
                dev.name, occ.limiter
            ),
        });
    }
    SIM_LAUNCHES.inc();
    let machine = Machine::new(kernel, launch.blocks(), &launch.args).with_budget(budget.clone());
    let (outcome, mut trace) = machine.run_traced(0, 0)?;
    let _ = outcome;

    // exact counts for reporting (cheap: interval splitting)
    let counts = ptx_analysis::count_launch_budgeted(kernel, launch, true, budget)?;

    let trace_scale = if trace.len() > TRACE_CAP {
        let s = trace.len() as f64 / TRACE_CAP as f64;
        trace.truncate(TRACE_CAP);
        s
    } else {
        1.0
    };

    let blocks = launch.blocks();
    let warps_per_block = kernel.block_threads().div_ceil(32).max(1);
    let capacity_blocks = (dev.sm_count * occ.blocks_per_sm) as u64;
    let waves = blocks.div_ceil(capacity_blocks.max(1)).max(1);
    SIM_WAVES.add(waves);
    let active_sms = blocks.min(dev.sm_count as u64) as u32;

    // blocks resident on the busiest SM during one wave
    let blocks_this_sm = blocks
        .div_ceil(waves)
        .div_ceil(active_sms.max(1) as u64)
        .clamp(1, occ.blocks_per_sm as u64) as u32;

    let l2_hit = l2_hit_rate(launch.bytes_read, dev.l2_cache_kb);
    // DRAM bytes generated per global-load warp instruction on this SM
    let trace_loads =
        trace.iter().filter(|c| **c == Category::LoadGlobal).count() as f64 * trace_scale;
    let total_load_issues = trace_loads * warps_per_block as f64 * blocks as f64;
    let bytes_per_load = if total_load_issues > 0.0 {
        launch.bytes_read as f64 / total_load_issues
    } else {
        0.0
    };
    let store_issues = trace
        .iter()
        .filter(|c| **c == Category::StoreGlobal)
        .count() as f64
        * trace_scale
        * warps_per_block as f64
        * blocks as f64;
    let bytes_per_store = if store_issues > 0.0 {
        launch.bytes_written as f64 / store_issues
    } else {
        0.0
    };
    // per-SM DRAM bandwidth share in bytes per cycle
    let dram_bpc_sm = dev.bytes_per_cycle() / active_sms.max(1) as f64;

    let wave_cycles = simulate_wave(
        &trace,
        warps_per_block,
        blocks_this_sm,
        &timing,
        l2_hit,
        bytes_per_load * (1.0 - l2_hit),
        bytes_per_store,
        dram_bpc_sm,
        budget,
        &kernel.name,
    )?;

    let cycles = wave_cycles * trace_scale * waves as f64
        + LAUNCH_OVERHEAD_US * 1e-6 * dev.boost_clock_mhz as f64 * 1e6;
    let dram_bytes = launch.bytes_read as f64 * (1.0 - l2_hit) + launch.bytes_written as f64;

    Ok(LaunchSim {
        cycles,
        warp_instructions: counts.warp_issues,
        thread_instructions: counts.thread_instructions,
        dram_bytes,
        l2_hit,
        active_sms,
    })
}

/// Event-driven simulation of one wave on one SM. Returns cycles. The
/// budget's cancellation token is polled every [`SIM_CANCEL_CHECK_EVENTS`]
/// heap pops; its step fuel also caps total events (a hung-wave backstop).
#[allow(clippy::too_many_arguments)]
fn simulate_wave(
    trace: &[Category],
    warps_per_block: u32,
    blocks: u32,
    timing: &Timing,
    l2_hit: f64,
    dram_bytes_per_load: f64,
    dram_bytes_per_store: f64,
    dram_bpc: f64,
    budget: &ExecBudget,
    kernel_name: &str,
) -> Result<f64, ExecError> {
    if trace.is_empty() {
        return Ok(0.0);
    }
    let nwarps = (warps_per_block * blocks) as usize;
    // warp state: (ready_time, trace cursor); heap keyed by ready time
    let mut cursor = vec![0usize; nwarps];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..nwarps).map(|w| Reverse((0u64, w))).collect();
    // pipeline next-free times (fixed-point cycles scaled by 1024 to keep
    // fractional CPIs exact in integer arithmetic)
    const FX: f64 = 1024.0;
    let mut pipe_free = [0u64; ptx_analysis::NCAT];
    let mut issue_free = 0u64;
    let mut dram_free = 0u64;
    // barrier bookkeeping: warps of one block rejoin at bar.sync
    let mut bar_wait: Vec<Vec<u64>> = vec![Vec::new(); blocks as usize];
    let mut finish = 0u64;
    // deterministic hash state for L2 hit decisions
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15;

    let dram_cpl = (dram_bytes_per_load / dram_bpc * FX) as u64;
    let dram_cps = (dram_bytes_per_store / dram_bpc * FX) as u64;

    let mut events: u64 = 0;
    let max_events = budget.max_steps();
    while let Some(Reverse((ready, w))) = heap.pop() {
        events += 1;
        if events.is_multiple_of(SIM_CANCEL_CHECK_EVENTS) {
            budget.pulse();
            if budget.cancelled() {
                SIM_EVENTS.add(events);
                SIM_CANCELLED.inc();
                return Err(ExecError::Cancelled {
                    kernel: kernel_name.to_string(),
                    step: events,
                });
            }
            if events > max_events {
                SIM_EVENTS.add(events);
                return Err(ExecError::StepLimit {
                    limit: max_events,
                    kernel: kernel_name.to_string(),
                });
            }
        }
        let i = cursor[w];
        if i >= trace.len() {
            finish = finish.max(ready);
            continue;
        }
        let cat = trace[i];
        let ci = cat_idx(cat);

        if cat == Category::Sync {
            // barrier: the warp parks; when all block warps arrive, release
            let block = w / warps_per_block as usize;
            bar_wait[block].push(ready);
            cursor[w] += 1;
            if bar_wait[block].len() == warps_per_block as usize {
                let t = *bar_wait[block].iter().max().expect("nonempty") + FX as u64;
                bar_wait[block].clear();
                // release all warps of this block at t
                let lo = block * warps_per_block as usize;
                let hi = lo + warps_per_block as usize;
                for (wb, &cur) in cursor.iter().enumerate().take(hi).skip(lo) {
                    if cur > 0 && cur <= trace.len() {
                        heap.push(Reverse((t, wb)));
                    }
                }
            }
            continue;
        }

        let t_issue = ready.max(issue_free).max(pipe_free[ci]);
        issue_free = t_issue + (timing.issue_cpi * FX) as u64;
        pipe_free[ci] = t_issue + (timing.cpi[ci] * FX) as u64;

        let mut lat = timing.latency[ci];
        if cat == Category::LoadGlobal {
            // deterministic pseudo-random L2 outcome at rate `l2_hit`
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let hit = ((rng_state >> 33) as f64 / (1u64 << 31) as f64) < l2_hit;
            if !hit {
                lat = timing.dram_latency;
                let t_mem = t_issue.max(dram_free);
                dram_free = t_mem + dram_cpl;
            }
        } else if cat == Category::StoreGlobal && dram_cps > 0 {
            let t_mem = t_issue.max(dram_free);
            dram_free = t_mem + dram_cps;
        }

        let done = t_issue + (lat * FX) as u64;
        cursor[w] += 1;
        if cursor[w] < trace.len() {
            heap.push(Reverse((done, w)));
        } else {
            finish = finish.max(done);
        }
    }
    finish = finish.max(issue_free).max(dram_free);
    SIM_EVENTS.add(events);
    Ok(finish as f64 / FX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{gtx_1080_ti, quadro_p1000, v100s};
    use ptx::builder::KernelBuilder;
    use ptx::inst::Operand;
    use ptx::types::Type;

    fn guard_kernel(body: u32) -> Kernel {
        let mut kb = KernelBuilder::new("k", 256);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        for _ in 0..body {
            let f = kb.f();
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        }
        kb.place_label(exit);
        kb.ret();
        kb.finish()
    }

    fn launch(kernel: &Kernel, threads: u64, args: Vec<u64>, br: u64, bw: u64) -> KernelLaunch {
        KernelLaunch {
            kernel: 0,
            tag: "t".into(),
            grid: (threads.div_ceil(kernel.block_threads() as u64) as u32, 1, 1),
            args,
            bytes_read: br,
            bytes_written: bw,
        }
    }

    #[test]
    fn more_work_takes_more_cycles() {
        // body heavy enough that waves dominate the fixed launch overhead
        let dev = gtx_1080_ti();
        let k = guard_kernel(64);
        let small = simulate_launch(&k, &launch(&k, 1 << 18, vec![1 << 18], 0, 0), &dev).unwrap();
        let large = simulate_launch(&k, &launch(&k, 1 << 24, vec![1 << 24], 0, 0), &dev).unwrap();
        assert!(
            large.cycles > small.cycles * 10.0,
            "small {} vs large {}",
            small.cycles,
            large.cycles
        );
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let k = ptx_codegen::Template::GemmTiled.build();
        // 512x512x512 gemm
        let l = KernelLaunch {
            kernel: 0,
            tag: "gemm".into(),
            grid: ((512 * 512 / 256) as u32, 1, 1),
            args: vec![0x1000, 0x2000, 0x3000, 512, 512, 512, 32, 0, 0],
            bytes_read: 512 * 512 * 8,
            bytes_written: 512 * 512 * 4,
        };
        let big = simulate_launch(&k, &l, &v100s()).unwrap();
        let small = simulate_launch(&k, &l, &quadro_p1000()).unwrap();
        assert!(
            small.cycles > 2.0 * big.cycles,
            "P1000 {} vs V100S {}",
            small.cycles,
            big.cycles
        );
    }

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        // pure copy kernel with huge traffic
        let k = ptx_codegen::Template::CopyF32.build();
        let n: u64 = 1 << 26; // 64M elements = 256 MB in + 256 MB out
        let l = launch(&k, n / 4, vec![0x1000, 0x2000, n], n * 4, n * 4);
        let fast = simulate_launch(&k, &l, &v100s()).unwrap();
        let slow = simulate_launch(&k, &l, &gtx_1080_ti()).unwrap();
        // V100S has 2.3x the bandwidth; allow a broad band
        let ratio = slow.cycles / fast.cycles;
        assert!(ratio > 1.3, "expected bandwidth-driven gap, got {ratio}");
    }

    #[test]
    fn barrier_kernel_completes() {
        let k = ptx_codegen::Template::SoftmaxMax.build();
        let l = KernelLaunch {
            kernel: 0,
            tag: "softmax".into(),
            grid: (1, 1, 1),
            args: vec![0x1000, 0, 0x2000, 0x3000, 1000],
            bytes_read: 4000,
            bytes_written: 4,
        };
        let s = simulate_launch(&k, &l, &gtx_1080_ti()).unwrap();
        assert!(s.cycles.is_finite() && s.cycles > 0.0);
    }

    #[test]
    fn ipc_in_plausible_range() {
        let k = ptx_codegen::Template::GemmTiled.build();
        let l = KernelLaunch {
            kernel: 0,
            tag: "gemm".into(),
            grid: ((1024 * 1024 / 256) as u32, 1, 1),
            args: vec![0x1000, 0x2000, 0x3000, 1024, 1024, 1024, 64, 0, 0],
            bytes_read: 1024 * 1024 * 16,
            bytes_written: 1024 * 1024 * 4,
        };
        let dev = gtx_1080_ti();
        let s = simulate_launch(&k, &l, &dev).unwrap();
        let ipc_per_sm = s.warp_instructions as f64 / s.cycles / dev.sm_count as f64;
        assert!(
            (0.05..4.0).contains(&ipc_per_sm),
            "per-SM IPC {ipc_per_sm} out of range"
        );
    }

    #[test]
    fn cancelled_simulation_stops_within_bounded_events() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // a launch big enough that the wave loop runs far past one check
        // interval; a pre-tripped token must abort it at the first check
        let dev = gtx_1080_ti();
        let k = guard_kernel(64);
        let l = launch(&k, 1 << 22, vec![1 << 22], 0, 0);
        let token = Arc::new(AtomicBool::new(true));
        let budget = ExecBudget::default().with_cancel(token);
        match simulate_launch_budgeted(&k, &l, &dev, &budget) {
            Err(ExecError::Cancelled { step, .. }) => {
                // observed within the documented bound: the representative
                // execution checks at step 0, the wave loop within
                // SIM_CANCEL_CHECK_EVENTS events
                assert!(
                    step <= SIM_CANCEL_CHECK_EVENTS,
                    "cancel observed only after {step} events"
                );
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn untripped_budget_matches_unbudgeted_simulation() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let dev = gtx_1080_ti();
        let k = guard_kernel(16);
        let l = launch(&k, 1 << 18, vec![200_000], 1 << 22, 1 << 20);
        let plain = simulate_launch(&k, &l, &dev).unwrap();
        let budget = ExecBudget::default().with_cancel(Arc::new(AtomicBool::new(false)));
        let budgeted = simulate_launch_budgeted(&k, &l, &dev, &budget).unwrap();
        assert_eq!(plain.cycles, budgeted.cycles);
        assert_eq!(plain.warp_instructions, budgeted.warp_instructions);
    }

    #[test]
    fn wave_event_fuel_catches_runaway() {
        // a tiny step fuel trips the wave loop's StepLimit backstop. The
        // kernel needs a long trace but few registers (so occupancy stays
        // high and events = warps x trace overwhelms the fuel): a counted
        // loop reusing one register, ~3.5k steps per thread.
        let mut kb = KernelBuilder::new("runaway", 256);
        let p_n = kb.param("n", Type::U32);
        let n = kb.ld_param(&p_n, Type::U32);
        let (_gid, exit) = kb.guard_gid(n);
        let f = kb.f();
        kb.counted_loop(Operand::ImmI(700), |kb, _i| {
            kb.mov(Type::F32, f, Operand::ImmF(1.0));
        });
        kb.place_label(exit);
        kb.ret();
        let k = kb.finish();
        let l = launch(&k, 1 << 22, vec![1 << 22], 0, 0);
        let budget = ExecBudget::default().with_max_steps(SIM_CANCEL_CHECK_EVENTS);
        // representative execution fits in the fuel; the wave loop (many
        // warps x trace) does not
        match simulate_launch_budgeted(&k, &l, &gtx_1080_ti(), &budget) {
            Err(ExecError::StepLimit { .. }) => {}
            other => panic!("expected StepLimit, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_kernel_is_rejected_not_simulated() {
        // a block demanding more shared memory than the SM owns used to be
        // silently simulated as one resident block; it must now surface as
        // an explicit Unlaunchable error
        let dev = gtx_1080_ti();
        let mut kb = KernelBuilder::new("shared_hog", 64);
        kb.shared(dev.shared_mem_per_sm_kb * 1024 + 1);
        kb.ret();
        let k = kb.finish();
        let l = launch(&k, 1 << 12, vec![], 0, 0);
        match simulate_launch(&k, &l, &dev) {
            Err(ExecError::Unlaunchable { kernel, .. }) => assert_eq!(kernel, "shared_hog"),
            other => panic!("expected Unlaunchable, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let dev = gtx_1080_ti();
        let k = guard_kernel(16);
        let l = launch(&k, 1 << 18, vec![200_000], 1 << 22, 1 << 20);
        let a = simulate_launch(&k, &l, &dev).unwrap();
        let b = simulate_launch(&k, &l, &dev).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.warp_instructions, b.warp_instructions);
    }
}
