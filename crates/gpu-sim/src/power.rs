//! Power and energy estimation — the companion capability of the authors'
//! own prior work (Metz et al., CODES+ISSS'21 / MLCAD'22: PTX-category
//! instruction counts + architectural details → power), included here as an
//! implemented extension.
//!
//! The model is the standard decomposition `P = P_idle + P_dynamic`, with
//! dynamic energy charged per issued warp instruction by category and per
//! DRAM byte. Coefficients are scaled from each device's TDP so the model
//! stays plausible across the whole spec database.

use crate::machine::SimReport;
use crate::specs::DeviceSpec;
use ptx::inst::Category;
use ptx_analysis::{PlanCount, NCAT};
use serde::{Deserialize, Serialize};

/// Energy/power estimate for one inference pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerReport {
    pub model_name: String,
    pub device_name: String,
    /// Average power over the run, watts.
    pub avg_power_w: f64,
    /// Total energy, millijoules.
    pub energy_mj: f64,
    /// Energy-delay product, mJ·ms (the HW/SW co-design ranking metric).
    pub edp: f64,
    /// Share of energy from DRAM traffic.
    pub dram_energy_fraction: f64,
}

/// Board power limits per device (TDP and estimated idle), watts.
pub fn board_power(dev: &DeviceSpec) -> (f64, f64) {
    let tdp = match dev.name.as_str() {
        "GTX 1080 Ti" => 250.0,
        "V100S" => 250.0,
        "Quadro P1000" => 47.0,
        "Titan Xp" => 250.0,
        "RTX 2080 Ti" => 260.0,
        "Tesla T4" => 70.0,
        "A100" => 250.0,
        "GTX 1050 Ti" => 75.0,
        // unknown device: scale from compute resources
        _ => 40.0 + 0.04 * dev.cuda_cores() as f64,
    };
    (tdp, 0.18 * tdp)
}

/// Per-warp-instruction dynamic energy by category, in nanojoules, scaled
/// so a fully FMA-bound kernel at peak throughput draws ~TDP.
fn energy_table(dev: &DeviceSpec) -> [f64; NCAT] {
    let (tdp, idle) = board_power(dev);
    // peak issue rate of FMA warp instructions per second (whole chip)
    let peak_fma_rate =
        dev.sm_count as f64 * (dev.cores_per_sm as f64 / 32.0) * dev.boost_clock_mhz as f64 * 1e6;
    let e_fma_nj = (tdp - idle) / peak_fma_rate * 1e9;
    let mut table = [e_fma_nj; NCAT];
    let idx = |c: Category| Category::ALL.iter().position(|x| *x == c).expect("cat");
    table[idx(Category::SpecialFunc)] = e_fma_nj * 2.0;
    table[idx(Category::LoadGlobal)] = e_fma_nj * 1.6;
    table[idx(Category::StoreGlobal)] = e_fma_nj * 1.6;
    table[idx(Category::LoadShared)] = e_fma_nj * 1.1;
    table[idx(Category::StoreShared)] = e_fma_nj * 1.1;
    table[idx(Category::LoadParam)] = e_fma_nj * 0.4;
    table[idx(Category::Control)] = e_fma_nj * 0.3;
    table[idx(Category::Sync)] = e_fma_nj * 0.3;
    table[idx(Category::Move)] = e_fma_nj * 0.5;
    table[idx(Category::Compare)] = e_fma_nj * 0.5;
    table[idx(Category::Convert)] = e_fma_nj * 0.6;
    table
}

/// DRAM access energy per byte (pJ/byte): HBM2 devices are cheaper per byte
/// than GDDR.
fn dram_pj_per_byte(dev: &DeviceSpec) -> f64 {
    if dev.mem_bus_bits >= 1024 {
        7.0 // HBM2
    } else {
        22.0 // GDDR5/5X/6
    }
}

/// Estimate power/energy for a simulated inference pass. `counts` supplies
/// the warp-level instruction mix; `sim` the cycles and DRAM traffic.
pub fn estimate(sim: &SimReport, counts: &PlanCount, dev: &DeviceSpec) -> PowerReport {
    let (_tdp, idle) = board_power(dev);
    let seconds = sim.cycles / (dev.boost_clock_mhz as f64 * 1e6);

    // dynamic instruction energy: thread-level mix scaled to warp issues
    let table = energy_table(dev);
    let thread_total: u64 = counts.by_category.iter().sum();
    let scale = if thread_total > 0 {
        counts.warp_issues as f64 / thread_total as f64
    } else {
        0.0
    };
    let instr_j: f64 = counts
        .by_category
        .iter()
        .zip(&table)
        .map(|(&n, &e_nj)| n as f64 * scale * e_nj * 1e-9)
        .sum();

    let dram_j = sim.dram_bytes * dram_pj_per_byte(dev) * 1e-12;
    let idle_j = idle * seconds;
    let total_j = instr_j + dram_j + idle_j;

    let avg_power_w = if seconds > 0.0 {
        total_j / seconds
    } else {
        0.0
    };
    PowerReport {
        model_name: sim.model_name.clone(),
        device_name: dev.name.clone(),
        avg_power_w,
        energy_mj: total_j * 1e3,
        edp: total_j * 1e3 * sim.latency_ms,
        dram_energy_fraction: dram_j / total_j.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{SimMode, Simulator};
    use crate::specs::{gtx_1080_ti, quadro_p1000, v100s};

    fn run(name: &str, dev: &DeviceSpec) -> (SimReport, PlanCount) {
        let model = cnn_ir::zoo::build(name).expect("zoo model");
        let plan = ptx_codegen::lower(&model, &dev.sm_target()).expect("lowering");
        let sim = Simulator::new(dev.clone(), SimMode::Detailed)
            .simulate_plan(&plan)
            .expect("simulation");
        let counts = ptx_analysis::count_plan(&plan, true).expect("counts");
        (sim, counts)
    }

    #[test]
    fn power_stays_between_idle_and_tdp() {
        for dev in [gtx_1080_ti(), v100s(), quadro_p1000()] {
            let (sim, counts) = run("mobilenet", &dev);
            let p = estimate(&sim, &counts, &dev);
            let (tdp, idle) = board_power(&dev);
            assert!(
                p.avg_power_w >= idle * 0.99 && p.avg_power_w <= tdp * 1.3,
                "{}: {} W outside [{idle}, {tdp}]",
                dev.name,
                p.avg_power_w
            );
        }
    }

    #[test]
    fn bigger_model_costs_more_energy() {
        let dev = gtx_1080_ti();
        let (s1, c1) = run("mobilenet", &dev);
        let (s2, c2) = run("vgg16", &dev);
        let e1 = estimate(&s1, &c1, &dev).energy_mj;
        let e2 = estimate(&s2, &c2, &dev).energy_mj;
        assert!(e2 > 2.0 * e1, "vgg {e2} !>> mobilenet {e1}");
    }

    #[test]
    fn edp_combines_energy_and_latency() {
        let dev = gtx_1080_ti();
        let (sim, counts) = run("alexnet", &dev);
        let p = estimate(&sim, &counts, &dev);
        assert!((p.edp - p.energy_mj * sim.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn hbm_devices_spend_less_on_dram() {
        assert!(dram_pj_per_byte(&v100s()) < dram_pj_per_byte(&gtx_1080_ti()));
    }

    #[test]
    fn report_is_deterministic() {
        let dev = gtx_1080_ti();
        let (s1, c1) = run("alexnet", &dev);
        let (s2, c2) = run("alexnet", &dev);
        assert_eq!(
            estimate(&s1, &c1, &dev).energy_mj,
            estimate(&s2, &c2, &dev).energy_mj
        );
    }
}
