//! Per-category issue throughputs (CPI) and dependent-use latencies of the
//! modeled SM pipelines, derived from the device specification. Numbers
//! follow published microbenchmark studies of Pascal/Volta/Turing pipelines
//! (Jia et al., "Dissecting the NVIDIA GPU architectures").

use crate::specs::DeviceSpec;
use ptx::inst::Category;
use ptx_analysis::NCAT;

/// Timing tables for one device.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Reciprocal throughput: cycles the issuing pipe stays busy per
    /// warp-instruction, per category.
    pub cpi: [f64; NCAT],
    /// Dependent-use latency in cycles, per category. Global loads carry
    /// the L2-hit latency; misses add DRAM latency at simulation time.
    pub latency: [f64; NCAT],
    /// L2 hit latency (cycles).
    pub l2_latency: f64,
    /// DRAM latency (cycles).
    pub dram_latency: f64,
    /// Issue-port reciprocal throughput (instructions per cycle per SM).
    pub issue_cpi: f64,
}

fn idx(c: Category) -> usize {
    Category::ALL
        .iter()
        .position(|x| *x == c)
        .expect("category")
}

/// Build the timing tables for `dev`.
pub fn timing_for(dev: &DeviceSpec) -> Timing {
    let alu_cpi = 32.0 / dev.cores_per_sm as f64;
    let sfu_cpi = 32.0 / dev.sfu_per_sm as f64;
    let lsu_cpi = 32.0 / dev.lsu_per_sm as f64;
    let volta_plus = dev.compute_capability.0 >= 7;
    let alu_lat = if volta_plus { 4.0 } else { 6.0 };

    let mut cpi = [alu_cpi; NCAT];
    let mut latency = [alu_lat; NCAT];

    cpi[idx(Category::IntAlu)] = alu_cpi;
    cpi[idx(Category::FloatAlu)] = alu_cpi;
    cpi[idx(Category::FloatFma)] = alu_cpi;
    cpi[idx(Category::SpecialFunc)] = sfu_cpi;
    cpi[idx(Category::LoadGlobal)] = lsu_cpi;
    cpi[idx(Category::StoreGlobal)] = lsu_cpi;
    cpi[idx(Category::LoadShared)] = lsu_cpi;
    cpi[idx(Category::StoreShared)] = lsu_cpi;
    cpi[idx(Category::LoadParam)] = 0.25;
    cpi[idx(Category::Control)] = 0.25;
    cpi[idx(Category::Sync)] = 1.0;
    cpi[idx(Category::Move)] = alu_cpi;
    cpi[idx(Category::Convert)] = alu_cpi;
    cpi[idx(Category::Compare)] = alu_cpi;

    latency[idx(Category::SpecialFunc)] = if volta_plus { 12.0 } else { 16.0 };
    latency[idx(Category::LoadShared)] = if volta_plus { 19.0 } else { 24.0 };
    latency[idx(Category::StoreShared)] = 2.0;
    latency[idx(Category::StoreGlobal)] = 2.0;
    latency[idx(Category::LoadParam)] = 8.0;
    latency[idx(Category::Control)] = 2.0;
    latency[idx(Category::Sync)] = 2.0;
    // LoadGlobal latency is resolved per access (L2 hit vs DRAM)
    let l2_latency = if volta_plus { 190.0 } else { 220.0 };
    latency[idx(Category::LoadGlobal)] = l2_latency;

    Timing {
        cpi,
        latency,
        l2_latency,
        dram_latency: dev.dram_latency_cycles as f64,
        issue_cpi: 1.0 / dev.warp_schedulers_per_sm as f64,
    }
}

/// Deterministic L2 hit-rate estimate for a launch touching `bytes_read`
/// bytes of input on a device with `l2_kb` of cache: full reuse while the
/// working set fits, square-root decay beyond.
pub fn l2_hit_rate(bytes_read: u64, l2_kb: u32) -> f64 {
    let l2 = l2_kb as f64 * 1024.0;
    let b = bytes_read.max(1) as f64;
    if b <= l2 {
        0.90
    } else {
        (0.90 * (l2 / b).sqrt()).clamp(0.15, 0.90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{gtx_1080_ti, v100s};

    #[test]
    fn pascal_fma_cpi() {
        let t = timing_for(&gtx_1080_ti());
        assert!((t.cpi[idx(Category::FloatFma)] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn volta_fma_cpi_and_latency() {
        let t = timing_for(&v100s());
        assert!((t.cpi[idx(Category::FloatFma)] - 0.5).abs() < 1e-9);
        assert!((t.latency[idx(Category::FloatFma)] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l2_hit_rate_behaviour() {
        // fits in cache
        assert!((l2_hit_rate(1 << 20, 2816) - 0.90).abs() < 1e-9);
        // far exceeds cache
        let h = l2_hit_rate(1 << 30, 2816);
        assert!((0.15..0.5).contains(&h), "{h}");
        // monotone in cache size (inside the unclamped region)
        assert!(l2_hit_rate(1 << 24, 6144) > l2_hit_rate(1 << 24, 1024));
    }

    #[test]
    fn issue_cpi_from_schedulers() {
        let t = timing_for(&gtx_1080_ti());
        assert!((t.issue_cpi - 0.25).abs() < 1e-9);
    }
}
