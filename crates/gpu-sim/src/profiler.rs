//! An `nvprof`-like profiling facade over the simulator.
//!
//! [`profile`] "runs" a CNN on a device the way the paper's naive approach
//! does — full detailed simulation of every launch — and reports the IPC
//! metric with a small deterministic run-to-run jitter emulating real
//! profiler variance. The jitter is seeded by (model, device, run) so
//! experiments are reproducible.

use crate::machine::{SimMode, SimReport, Simulator};
use crate::specs::DeviceSpec;
use ptx::kernel::LaunchPlan;
use ptx_analysis::ExecError;
use serde::{Deserialize, Serialize};

/// Relative standard deviation of the measurement jitter.
const JITTER_REL: f64 = 0.015;

/// One profiling measurement, as `nvprof --metrics ipc` would report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRecord {
    pub model_name: String,
    pub device_name: String,
    /// Measured IPC (jittered ground truth).
    pub ipc: f64,
    /// Noise-free IPC from the simulator.
    pub ipc_clean: f64,
    pub cycles: f64,
    pub latency_ms: f64,
    pub thread_instructions: u64,
    pub warp_instructions: u64,
    /// Wall-clock seconds the profiling itself took (the `t_p` of the
    /// paper's Table IV).
    pub profiling_wall_s: f64,
}

/// FNV-1a over the seed material: deterministic per (model, device, run).
fn hash_seed(model: &str, device: &str, run: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in model
        .bytes()
        .chain(device.bytes())
        .chain(run.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Standard-normal sample from two xorshift draws (Box-Muller).
fn gaussian(seed: u64) -> f64 {
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let u1 = next().max(1e-12);
    let u2 = next();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Profile one lowered model on one device (run index 0).
pub fn profile(plan: &LaunchPlan, dev: &DeviceSpec) -> Result<ProfileRecord, ExecError> {
    profile_run(plan, dev, 0)
}

/// Profile with an explicit run index (distinct jitter per run).
pub fn profile_run(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    run: u32,
) -> Result<ProfileRecord, ExecError> {
    let t0 = std::time::Instant::now();
    let report: SimReport =
        Simulator::new(dev.clone(), SimMode::Detailed).simulate_plan(plan)?;
    let wall = t0.elapsed().as_secs_f64();

    let seed = hash_seed(&plan.model_name, &dev.name, run);
    let noise = 1.0 + JITTER_REL * gaussian(seed);
    Ok(ProfileRecord {
        model_name: report.model_name.clone(),
        device_name: report.device_name.clone(),
        ipc: report.ipc * noise,
        ipc_clean: report.ipc,
        cycles: report.cycles,
        latency_ms: report.latency_ms,
        thread_instructions: report.thread_instructions,
        warp_instructions: report.warp_instructions,
        profiling_wall_s: wall,
    })
}

/// Aggregate over repeated profiling runs (real profiling protocols take
/// the mean of several `nvprof` replicates; so does this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileStats {
    pub model_name: String,
    pub device_name: String,
    pub runs: u32,
    pub ipc_mean: f64,
    pub ipc_std: f64,
    pub records: Vec<ProfileRecord>,
}

/// Profile `runs` replicates and aggregate. The simulation runs once; only
/// the measurement jitter differs per replicate (as on quiet hardware).
pub fn profile_stats(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    runs: u32,
) -> Result<ProfileStats, ExecError> {
    assert!(runs >= 1);
    let mut records = Vec::with_capacity(runs as usize);
    for r in 0..runs {
        records.push(profile_run(plan, dev, r)?);
    }
    let n = runs as f64;
    let mean = records.iter().map(|r| r.ipc).sum::<f64>() / n;
    let var = records
        .iter()
        .map(|r| (r.ipc - mean) * (r.ipc - mean))
        .sum::<f64>()
        / n;
    Ok(ProfileStats {
        model_name: plan.model_name.clone(),
        device_name: dev.name.clone(),
        runs,
        ipc_mean: mean,
        ipc_std: var.sqrt(),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::gtx_1080_ti;

    fn plan() -> LaunchPlan {
        let model = cnn_ir::zoo::build("alexnet").unwrap();
        ptx_codegen::lower(&model, "sm_61").unwrap()
    }

    #[test]
    fn jitter_is_small_and_deterministic() {
        let p = plan();
        let dev = gtx_1080_ti();
        let a = profile_run(&p, &dev, 0).unwrap();
        let b = profile_run(&p, &dev, 0).unwrap();
        assert_eq!(a.ipc, b.ipc, "same run index must reproduce exactly");
        let c = profile_run(&p, &dev, 1).unwrap();
        assert_ne!(a.ipc, c.ipc, "different runs must differ");
        let rel = (a.ipc - a.ipc_clean).abs() / a.ipc_clean;
        assert!(rel < 0.10, "jitter {rel} too large");
    }

    #[test]
    fn wall_time_is_recorded() {
        let p = plan();
        let r = profile(&p, &gtx_1080_ti()).unwrap();
        assert!(r.profiling_wall_s > 0.0);
    }

    #[test]
    fn replicate_stats_center_on_clean_ipc() {
        let p = plan();
        let s = profile_stats(&p, &gtx_1080_ti(), 16).unwrap();
        assert_eq!(s.records.len(), 16);
        let clean = s.records[0].ipc_clean;
        // mean of 16 jittered replicates within ~2% of the clean value
        assert!(
            ((s.ipc_mean - clean) / clean).abs() < 0.02,
            "mean {} vs clean {clean}",
            s.ipc_mean
        );
        assert!(s.ipc_std > 0.0 && s.ipc_std / clean < 0.05);
    }
}
