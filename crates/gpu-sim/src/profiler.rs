//! An `nvprof`-like profiling facade over the simulator.
//!
//! [`profile`] "runs" a CNN on a device the way the paper's naive approach
//! does — full detailed simulation of every launch — and reports the IPC
//! metric with a small deterministic run-to-run jitter emulating real
//! profiler variance. The jitter is seeded by (model, device, run) so
//! experiments are reproducible.

use crate::faults::{FaultInjector, FaultOutcome};
use crate::machine::{SimMode, SimReport, Simulator};
use crate::specs::DeviceSpec;
use ptx::kernel::LaunchPlan;
use ptx_analysis::{ExecBudget, ExecError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Robustly profiled (model, device) cells entered.
static PROFILE_CELLS: obs::LazyCounter = obs::LazyCounter::new("profile.cells");
/// Cells where every run exhausted its retry budget (`NoValidRuns`).
static PROFILE_CELLS_FAILED: obs::LazyCounter = obs::LazyCounter::new("profile.cells.failed");
/// Fault-injector verdicts, by kind.
static PROFILE_FAULT_CLEAN: obs::LazyCounter = obs::LazyCounter::new("profile.fault.clean");
static PROFILE_FAULT_TRANSIENT: obs::LazyCounter = obs::LazyCounter::new("profile.fault.transient");
static PROFILE_FAULT_HANG: obs::LazyCounter = obs::LazyCounter::new("profile.fault.hang");
static PROFILE_FAULT_OUTLIER: obs::LazyCounter = obs::LazyCounter::new("profile.fault.outlier");
/// Runs dropped after exhausting the per-run retry budget.
static PROFILE_FAILED_RUNS: obs::LazyCounter = obs::LazyCounter::new("profile.failed_runs");
/// Measurements rejected by the median/MAD outlier filter.
static PROFILE_OUTLIERS_REJECTED: obs::LazyCounter =
    obs::LazyCounter::new("profile.outliers.rejected");
/// Wall time of whole robust-profiling cells, in microseconds.
static PROFILE_CELL_US: obs::LazyHistogram = obs::LazyHistogram::new("profile.cell_us");

/// Relative standard deviation of the measurement jitter.
const JITTER_REL: f64 = 0.015;

/// One profiling measurement, as `nvprof --metrics ipc` would report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRecord {
    pub model_name: String,
    pub device_name: String,
    /// Measured IPC (jittered ground truth).
    pub ipc: f64,
    /// Noise-free IPC from the simulator.
    pub ipc_clean: f64,
    pub cycles: f64,
    pub latency_ms: f64,
    pub thread_instructions: u64,
    pub warp_instructions: u64,
    /// Wall-clock seconds the profiling itself took (the `t_p` of the
    /// paper's Table IV).
    pub profiling_wall_s: f64,
}

/// FNV-1a over the seed material: deterministic per (model, device, run).
fn hash_seed(model: &str, device: &str, run: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in model.bytes().chain(device.bytes()).chain(run.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Standard-normal sample from two xorshift draws (Box-Muller).
fn gaussian(seed: u64) -> f64 {
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let u1 = next().max(1e-12);
    let u2 = next();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Profile one lowered model on one device (run index 0).
pub fn profile(plan: &LaunchPlan, dev: &DeviceSpec) -> Result<ProfileRecord, ExecError> {
    profile_run(plan, dev, 0)
}

/// Profile with an explicit run index (distinct jitter per run).
pub fn profile_run(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    run: u32,
) -> Result<ProfileRecord, ExecError> {
    profile_run_budgeted(plan, dev, run, &ExecBudget::default())
}

/// [`profile_run`] under an execution budget: the budget's cancellation
/// token and step fuel bound the underlying detailed simulation, so a
/// deadline-driven caller (the resilient estimation engine's detailed
/// tier) can kill a wedged profile instead of waiting forever.
pub fn profile_run_budgeted(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    run: u32,
    budget: &ExecBudget,
) -> Result<ProfileRecord, ExecError> {
    let t0 = std::time::Instant::now();
    let report: SimReport =
        Simulator::new(dev.clone(), SimMode::Detailed).simulate_plan_budgeted(plan, budget)?;
    let wall = t0.elapsed().as_secs_f64();

    let seed = hash_seed(&plan.model_name, &dev.name, run);
    let noise = 1.0 + JITTER_REL * gaussian(seed);
    Ok(ProfileRecord {
        model_name: report.model_name.clone(),
        device_name: report.device_name.clone(),
        ipc: report.ipc * noise,
        ipc_clean: report.ipc,
        cycles: report.cycles,
        latency_ms: report.latency_ms,
        thread_instructions: report.thread_instructions,
        warp_instructions: report.warp_instructions,
        profiling_wall_s: wall,
    })
}

/// Aggregate over repeated profiling runs (real profiling protocols take
/// the mean of several `nvprof` replicates; so does this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileStats {
    pub model_name: String,
    pub device_name: String,
    pub runs: u32,
    pub ipc_mean: f64,
    pub ipc_std: f64,
    pub records: Vec<ProfileRecord>,
}

/// Profile `runs` replicates and aggregate. The simulation runs once; only
/// the measurement jitter differs per replicate (as on quiet hardware).
pub fn profile_stats(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    runs: u32,
) -> Result<ProfileStats, ExecError> {
    assert!(runs >= 1);
    let mut records = Vec::with_capacity(runs as usize);
    for r in 0..runs {
        records.push(profile_run(plan, dev, r)?);
    }
    let n = runs as f64;
    let mean = records.iter().map(|r| r.ipc).sum::<f64>() / n;
    let var = records
        .iter()
        .map(|r| (r.ipc - mean) * (r.ipc - mean))
        .sum::<f64>()
        / n;
    Ok(ProfileStats {
        model_name: plan.model_name.clone(),
        device_name: dev.name.clone(),
        runs,
        ipc_mean: mean,
        ipc_std: var.sqrt(),
        records,
    })
}

// ---------------------------------------------------------------------------
// robust measurement protocol
// ---------------------------------------------------------------------------

/// Why a robust profiling attempt (or the whole cell) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileFault {
    /// A run died with an injected transient error (retryable).
    Transient {
        model: String,
        device: String,
        run: u32,
        attempt: u32,
    },
    /// A run hung and was killed by the watchdog (retryable).
    Hang {
        model: String,
        device: String,
        run: u32,
        attempt: u32,
    },
    /// The simulator/analysis itself failed (permanent: retrying a
    /// deterministic simulation cannot help).
    Sim(ExecError),
    /// Every requested run exhausted its retry budget.
    NoValidRuns {
        model: String,
        device: String,
        runs: u32,
    },
    /// Strict-mode abort: the cell produced an estimate but only by
    /// losing information (retries, killed hangs, rejected outliers, or
    /// dead runs), which fail-fast mode does not tolerate.
    Degraded {
        model: String,
        device: String,
        detail: String,
    },
    /// The cell went silent past the supervision timeout and its
    /// cancellation token was fired by the watchdog (permanent: the same
    /// deterministic work would wedge again).
    Timeout {
        model: String,
        device: String,
        waited_ms: u64,
    },
    /// A permanent fault replayed from a build journal; only the original
    /// error text survives the round-trip.
    Replayed { error: String },
}

impl ProfileFault {
    /// Retryable failures: another attempt may succeed.
    pub fn transient(&self) -> bool {
        matches!(
            self,
            ProfileFault::Transient { .. } | ProfileFault::Hang { .. }
        )
    }

    /// Permanent failures: retrying is pointless.
    pub fn permanent(&self) -> bool {
        !self.transient()
    }
}

impl fmt::Display for ProfileFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileFault::Transient {
                model,
                device,
                run,
                attempt,
            } => write!(
                f,
                "transient failure profiling {model} on {device} (run {run}, attempt {attempt})"
            ),
            ProfileFault::Hang {
                model,
                device,
                run,
                attempt,
            } => write!(
                f,
                "hung run killed profiling {model} on {device} (run {run}, attempt {attempt})"
            ),
            ProfileFault::Sim(e) => write!(f, "simulation error: {e}"),
            ProfileFault::NoValidRuns {
                model,
                device,
                runs,
            } => write!(
                f,
                "no valid measurement in {runs} runs of {model} on {device}"
            ),
            ProfileFault::Degraded {
                model,
                device,
                detail,
            } => write!(
                f,
                "strict mode: measurement of {model} on {device} degraded ({detail})"
            ),
            ProfileFault::Timeout {
                model,
                device,
                waited_ms,
            } => write!(
                f,
                "cell {model} on {device} cancelled by watchdog after {waited_ms} ms of silence"
            ),
            ProfileFault::Replayed { error } => write!(f, "replayed from journal: {error}"),
        }
    }
}

impl std::error::Error for ProfileFault {}

impl From<ExecError> for ProfileFault {
    fn from(e: ExecError) -> Self {
        ProfileFault::Sim(e)
    }
}

/// Retry discipline for transient profiling failures. Backoff is
/// deterministic (exponential, capped), so a replayed campaign spends the
/// same wall time waiting and — more importantly — takes the same retry
/// decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per run, counting the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base * 2^(k-1)` milliseconds...
    pub backoff_base_ms: u64,
    /// ...capped here.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 5,
            backoff_cap_ms: 40,
        }
    }
}

impl RetryPolicy {
    /// Same retry decisions, zero waiting — for tests.
    pub fn no_backoff() -> Self {
        RetryPolicy {
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            ..Default::default()
        }
    }

    /// Deterministic backoff before retry attempt `attempt` (1-based).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        self.backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.backoff_cap_ms)
    }
}

/// Scale factor turning a MAD into a consistent estimate of sigma for
/// Gaussian cores.
pub const MAD_SIGMA: f64 = 1.4826;

/// Rejection threshold in robust sigmas: |x - median| > K * MAD_SIGMA * MAD.
pub const MAD_K: f64 = 3.5;

/// Median of a non-empty sample (mean of the middle two for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Median absolute deviation around a given center.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let dev: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&dev)
}

/// Result of the median/MAD outlier filter.
#[derive(Debug, Clone)]
pub struct RobustFilter {
    /// Median of the *retained* samples.
    pub estimate: f64,
    /// MAD of the full sample around its median.
    pub mad: f64,
    /// Per-sample retain decision, index-aligned with the input.
    pub keep: Vec<bool>,
}

/// Median/MAD outlier rejection: drop samples further than `k` robust
/// sigmas from the median. Degenerate cases (fewer than 4 samples, or a
/// zero MAD) retain everything — there is not enough spread information to
/// call anything an outlier.
pub fn robust_filter(xs: &[f64], k: f64) -> RobustFilter {
    let m = median(xs);
    let d = mad(xs, m);
    if xs.len() < 4 || d == 0.0 {
        return RobustFilter {
            estimate: m,
            mad: d,
            keep: vec![true; xs.len()],
        };
    }
    let cut = k * MAD_SIGMA * d;
    let keep: Vec<bool> = xs.iter().map(|x| (x - m).abs() <= cut).collect();
    let retained: Vec<f64> = xs
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(x, _)| *x)
        .collect();
    RobustFilter {
        estimate: median(&retained),
        mad: d,
        keep,
    }
}

/// Outcome of the robust profiling protocol for one (model, device) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustProfile {
    pub model_name: String,
    pub device_name: String,
    pub runs_requested: u32,
    /// Robust IPC estimate: median of the outlier-filtered runs.
    pub ipc: f64,
    /// Noise-free IPC from the simulator.
    pub ipc_clean: f64,
    /// MAD of the measured runs (spread diagnostic).
    pub ipc_mad: f64,
    pub latency_ms: f64,
    pub profiling_wall_s: f64,
    /// Retained (post-filter) measurements.
    pub records: Vec<ProfileRecord>,
    pub rejected_outliers: u32,
    pub transient_retries: u32,
    pub hangs: u32,
    /// Runs that exhausted their retry budget and produced no measurement.
    pub failed_runs: u32,
}

impl RobustProfile {
    /// Did this cell lose any information (retries, rejections, dead runs)?
    pub fn degraded(&self) -> bool {
        self.rejected_outliers > 0
            || self.transient_retries > 0
            || self.hangs > 0
            || self.failed_runs > 0
    }
}

/// Robust measurement protocol: take `runs` repeated measurements, retry
/// injected transient failures per [`RetryPolicy`], then reject outliers
/// with the median/MAD filter and report the median of the survivors.
///
/// The detailed simulation runs once (the hardware is deterministic);
/// per-run measurement noise and injected faults are replayed on top of
/// it, exactly as [`profile_run`] would produce for each run index — so a
/// fault-free robust profile of run 0 equals `profile_run(plan, dev, 0)`.
///
/// Permanent failures ([`ProfileFault::Sim`]) propagate immediately; runs
/// whose retry budget is exhausted are dropped, and only if *every* run
/// dies does the whole cell fail with [`ProfileFault::NoValidRuns`].
pub fn profile_robust(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    runs: u32,
    policy: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<RobustProfile, ProfileFault> {
    profile_robust_budgeted(plan, dev, runs, policy, injector, &ExecBudget::default())
}

/// [`profile_robust`] under an explicit execution budget: the budget's
/// cancellation token and heartbeat observer bound and instrument the
/// underlying detailed simulation, so a supervising watchdog can detect a
/// wedged cell and cancel it instead of hanging the whole corpus build.
pub fn profile_robust_budgeted(
    plan: &LaunchPlan,
    dev: &DeviceSpec,
    runs: u32,
    policy: &RetryPolicy,
    injector: &FaultInjector,
    budget: &ExecBudget,
) -> Result<RobustProfile, ProfileFault> {
    assert!(runs >= 1);
    assert!(policy.max_attempts >= 1);
    PROFILE_CELLS.inc();
    let _cell_span = PROFILE_CELL_US.span();
    let t0 = std::time::Instant::now();
    let report: SimReport = Simulator::new(dev.clone(), SimMode::Detailed)
        .simulate_plan_budgeted(plan, budget)
        .map_err(ProfileFault::Sim)?;

    let mut records: Vec<ProfileRecord> = Vec::with_capacity(runs as usize);
    let mut transient_retries = 0u32;
    let mut hangs = 0u32;
    let mut failed_runs = 0u32;

    for run in 0..runs {
        let mut measured = false;
        for attempt in 0..policy.max_attempts {
            let outcome = injector.outcome(&plan.model_name, &dev.name, run, attempt);
            match outcome {
                FaultOutcome::Clean => PROFILE_FAULT_CLEAN.inc(),
                FaultOutcome::Transient => PROFILE_FAULT_TRANSIENT.inc(),
                FaultOutcome::Hang => PROFILE_FAULT_HANG.inc(),
                FaultOutcome::Outlier(_) => PROFILE_FAULT_OUTLIER.inc(),
            }
            let scale = match outcome {
                FaultOutcome::Transient | FaultOutcome::Hang => {
                    if matches!(outcome, FaultOutcome::Hang) {
                        hangs += 1;
                    } else {
                        transient_retries += 1;
                    }
                    if attempt + 1 < policy.max_attempts {
                        let wait = policy.backoff_ms(attempt + 1);
                        if wait > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(wait));
                        }
                    }
                    continue;
                }
                FaultOutcome::Clean => 1.0,
                FaultOutcome::Outlier(factor) => factor,
            };
            let seed = hash_seed(&plan.model_name, &dev.name, run);
            let noise = 1.0 + JITTER_REL * gaussian(seed);
            records.push(ProfileRecord {
                model_name: report.model_name.clone(),
                device_name: report.device_name.clone(),
                ipc: report.ipc * noise * scale,
                ipc_clean: report.ipc,
                cycles: report.cycles,
                latency_ms: report.latency_ms,
                thread_instructions: report.thread_instructions,
                warp_instructions: report.warp_instructions,
                profiling_wall_s: 0.0,
            });
            measured = true;
            break;
        }
        if !measured {
            failed_runs += 1;
        }
    }

    PROFILE_FAILED_RUNS.add(failed_runs as u64);
    if records.is_empty() {
        PROFILE_CELLS_FAILED.inc();
        return Err(ProfileFault::NoValidRuns {
            model: plan.model_name.clone(),
            device: dev.name.clone(),
            runs,
        });
    }

    let ipcs: Vec<f64> = records.iter().map(|r| r.ipc).collect();
    let filter = robust_filter(&ipcs, MAD_K);
    let rejected_outliers = filter.keep.iter().filter(|&&k| !k).count() as u32;
    PROFILE_OUTLIERS_REJECTED.add(rejected_outliers as u64);
    let retained: Vec<ProfileRecord> = records
        .into_iter()
        .zip(&filter.keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r)
        .collect();

    let wall = t0.elapsed().as_secs_f64();
    Ok(RobustProfile {
        model_name: plan.model_name.clone(),
        device_name: dev.name.clone(),
        runs_requested: runs,
        ipc: filter.estimate,
        ipc_clean: report.ipc,
        ipc_mad: filter.mad,
        latency_ms: report.latency_ms,
        profiling_wall_s: wall,
        records: retained,
        rejected_outliers,
        transient_retries,
        hangs,
        failed_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultProfile;
    use crate::specs::gtx_1080_ti;

    fn plan() -> LaunchPlan {
        let model = cnn_ir::zoo::build("alexnet").unwrap();
        ptx_codegen::lower(&model, "sm_61").unwrap()
    }

    #[test]
    fn jitter_is_small_and_deterministic() {
        let p = plan();
        let dev = gtx_1080_ti();
        let a = profile_run(&p, &dev, 0).unwrap();
        let b = profile_run(&p, &dev, 0).unwrap();
        assert_eq!(a.ipc, b.ipc, "same run index must reproduce exactly");
        let c = profile_run(&p, &dev, 1).unwrap();
        assert_ne!(a.ipc, c.ipc, "different runs must differ");
        let rel = (a.ipc - a.ipc_clean).abs() / a.ipc_clean;
        assert!(rel < 0.10, "jitter {rel} too large");
    }

    #[test]
    fn wall_time_is_recorded() {
        let p = plan();
        let r = profile(&p, &gtx_1080_ti()).unwrap();
        assert!(r.profiling_wall_s > 0.0);
    }

    #[test]
    fn robust_matches_single_run_without_faults() {
        let p = plan();
        let dev = gtx_1080_ti();
        let injector = FaultInjector::new(FaultProfile::none());
        let robust = profile_robust(&p, &dev, 1, &RetryPolicy::no_backoff(), &injector).unwrap();
        let single = profile_run(&p, &dev, 0).unwrap();
        assert_eq!(robust.ipc, single.ipc, "fault-free run 0 must be identical");
        assert!(!robust.degraded());
    }

    #[test]
    fn robust_survives_harsh_faults_near_clean_ipc() {
        let p = plan();
        let dev = gtx_1080_ti();
        let injector = FaultInjector::new(FaultProfile::harsh().with_seed(11));
        let r = profile_robust(&p, &dev, 9, &RetryPolicy::no_backoff(), &injector).unwrap();
        let rel = (r.ipc - r.ipc_clean).abs() / r.ipc_clean;
        assert!(rel < 0.02, "robust estimate off by {rel}");
        assert!(r.records.len() as u32 + r.rejected_outliers + r.failed_runs == 9);
    }

    #[test]
    fn robust_is_deterministic_under_faults() {
        let p = plan();
        let dev = gtx_1080_ti();
        let injector = FaultInjector::new(FaultProfile::harsh().with_seed(5));
        let a = profile_robust(&p, &dev, 7, &RetryPolicy::no_backoff(), &injector).unwrap();
        let b = profile_robust(&p, &dev, 7, &RetryPolicy::no_backoff(), &injector).unwrap();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.transient_retries, b.transient_retries);
        assert_eq!(a.rejected_outliers, b.rejected_outliers);
        assert_eq!(a.failed_runs, b.failed_runs);
    }

    #[test]
    fn all_runs_failing_reports_no_valid_runs() {
        let p = plan();
        let dev = gtx_1080_ti();
        let always_fail = FaultInjector::new(FaultProfile {
            transient_rate: 1.0,
            ..FaultProfile::none()
        });
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::no_backoff()
        };
        let err = profile_robust(&p, &dev, 3, &policy, &always_fail).unwrap_err();
        assert!(matches!(err, ProfileFault::NoValidRuns { runs: 3, .. }));
        assert!(err.permanent(), "giving up after retries is terminal");
    }

    #[test]
    fn fault_classification_drives_retries() {
        assert!(ProfileFault::Transient {
            model: "m".into(),
            device: "d".into(),
            run: 0,
            attempt: 0
        }
        .transient());
        assert!(ProfileFault::Hang {
            model: "m".into(),
            device: "d".into(),
            run: 0,
            attempt: 0
        }
        .transient());
        assert!(ProfileFault::Sim(ExecError::BadLabel { pc: 3 }).permanent());
    }

    #[test]
    fn mad_filter_rejects_planted_outliers() {
        let mut xs: Vec<f64> = (0..20).map(|i| 1.0 + 0.001 * i as f64).collect();
        xs.push(5.0);
        xs.push(0.01);
        let f = robust_filter(&xs, MAD_K);
        assert!(!f.keep[20] && !f.keep[21], "planted outliers must go");
        assert!(f.keep[..20].iter().all(|&k| k), "inliers must stay");
        assert!((f.estimate - median(&xs[..20])).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1), 5);
        assert_eq!(p.backoff_ms(2), 10);
        assert_eq!(p.backoff_ms(10), 40, "capped");
        assert_eq!(RetryPolicy::no_backoff().backoff_ms(3), 0);
    }

    #[test]
    fn replicate_stats_center_on_clean_ipc() {
        let p = plan();
        let s = profile_stats(&p, &gtx_1080_ti(), 16).unwrap();
        assert_eq!(s.records.len(), 16);
        let clean = s.records[0].ipc_clean;
        // mean of 16 jittered replicates within ~2% of the clean value
        assert!(
            ((s.ipc_mean - clean) / clean).abs() < 0.02,
            "mean {} vs clean {clean}",
            s.ipc_mean
        );
        assert!(s.ipc_std > 0.0 && s.ipc_std / clean < 0.05);
    }
}
