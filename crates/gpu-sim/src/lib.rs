//! # gpu-sim — a GPGPU performance simulator
//!
//! The "hardware" substitute of this reproduction: since the paper measures
//! ground-truth IPC by running CNNs on real GPUs under `nvprof`, and no GPU
//! exists in this environment, this crate provides a cycle-approximate
//! GPGPU model to play that role.
//!
//! - [`specs`] — architectural database (GTX 1080 Ti, V100S, Quadro P1000
//!   and five more devices)
//! - [`occupancy`] — blocks/warps-per-SM calculator
//! - [`timing`] — per-pipeline throughput/latency tables and the L2 model
//! - [`detailed`] — event-driven per-warp SM simulation (ground truth)
//! - [`analytical`] — closed-form roofline estimate (ablation)
//! - [`machine`] — whole-plan simulation and the IPC metric
//! - [`profiler`] — `nvprof`-like facade with deterministic measurement
//!   jitter
//!
//! ```no_run
//! let model = cnn_ir::zoo::build("mobilenet").unwrap();
//! let plan = ptx_codegen::lower(&model, "sm_61").unwrap();
//! let rec = gpu_sim::profile(&plan, &gpu_sim::specs::gtx_1080_ti()).unwrap();
//! println!("IPC = {:.3}", rec.ipc);
//! ```

pub mod analytical;
pub mod detailed;
pub mod faults;
pub mod machine;
pub mod occupancy;
pub mod power;
pub mod profiler;
pub mod specs;
pub mod timing;

pub use detailed::{simulate_launch, simulate_launch_budgeted, SIM_CANCEL_CHECK_EVENTS};
pub use faults::{
    ChaosInjector, ChaosProfile, FaultInjector, FaultOutcome, FaultProfile, TierFaultKind,
};
pub use machine::{SimMode, SimReport, Simulator};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use power::{estimate as estimate_power, PowerReport};
pub use profiler::{
    mad, median, profile, profile_robust, profile_robust_budgeted, profile_run,
    profile_run_budgeted, profile_stats, robust_filter, ProfileFault, ProfileRecord, ProfileStats,
    RetryPolicy, RobustFilter, RobustProfile, MAD_K, MAD_SIGMA,
};
pub use specs::{all_devices, device_by_name, training_devices, DeviceSpec};
