//! SM occupancy calculation: how many blocks/warps of a kernel fit on one
//! streaming multiprocessor, limited by warp slots, registers, shared
//! memory and the block cap — the same arithmetic as NVIDIA's occupancy
//! calculator (simplified allocation granularity).

use crate::specs::DeviceSpec;
use ptx::kernel::Kernel;

/// Occupancy of one kernel on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM; **zero** means the kernel cannot launch at
    /// all (a single block already exceeds the [`Limiter`] resource).
    pub blocks_per_sm: u32,
    pub warps_per_sm: u32,
    /// Fraction of the device's warp slots in use.
    pub occupancy: f64,
    /// Which resource bounds the result.
    pub limiter: Limiter,
}

impl Occupancy {
    /// Whether at least one block fits on an SM. Callers must check this
    /// before treating the kernel as resident; an infeasible kernel used
    /// to be silently modeled as one block, skewing every downstream
    /// cycle estimate.
    pub fn feasible(&self) -> bool {
        self.blocks_per_sm > 0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    WarpSlots,
    Registers,
    SharedMemory,
    BlockCap,
}

/// Compute occupancy for `kernel` on `dev`.
pub fn occupancy(kernel: &Kernel, dev: &DeviceSpec) -> Occupancy {
    let threads = kernel.block_threads().max(1);
    let warps_per_block = threads.div_ceil(32);
    let regs_per_thread = kernel.regs_per_thread();
    let shared_per_block = kernel.shared_bytes.max(1);

    let by_warps = dev.max_warps_per_sm / warps_per_block.max(1);
    let by_regs = dev.registers_per_sm / (regs_per_thread * threads).max(1);
    let by_shared = (dev.shared_mem_per_sm_kb * 1024) / shared_per_block;
    let by_cap = dev.max_blocks_per_sm;

    let (blocks, limiter) = [
        (by_warps, Limiter::WarpSlots),
        (by_regs, Limiter::Registers),
        (by_shared, Limiter::SharedMemory),
        (by_cap, Limiter::BlockCap),
    ]
    .into_iter()
    .min_by_key(|(b, _)| *b)
    .expect("non-empty");

    // zero blocks means even one block overflows the limiting resource:
    // report the infeasibility honestly instead of clamping to one
    // resident block and silently mis-modeling an unlaunchable kernel
    if blocks == 0 {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter,
        };
    }
    let warps = (blocks * warps_per_block).min(dev.max_warps_per_sm);
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::gtx_1080_ti;
    use ptx::builder::KernelBuilder;
    use ptx::types::Type;

    fn kernel_with(block: u32, shared: u32, regs: u32) -> Kernel {
        let mut kb = KernelBuilder::new("k", block);
        if shared > 0 {
            kb.shared(shared);
        }
        // burn registers to raise the estimate
        for _ in 0..regs {
            let r = kb.r();
            kb.mov(Type::U32, r, ptx::inst::Operand::ImmI(1));
        }
        kb.ret();
        kb.finish()
    }

    #[test]
    fn warp_slot_limit() {
        // 256-thread blocks, minimal resources: 64 warps / 8 warps-per-block
        let k = kernel_with(256, 0, 4);
        let o = occupancy(&k, &gtx_1080_ti());
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
        assert_eq!(o.limiter, Limiter::WarpSlots);
    }

    #[test]
    fn register_limit_kicks_in() {
        // 128 registers x 256 threads = 32768 regs per block: 2 blocks/SM
        let k = kernel_with(256, 0, 128);
        let o = occupancy(&k, &gtx_1080_ti());
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn shared_memory_limit() {
        // 48 KB shared per block on a 96 KB SM: 2 blocks
        let k = kernel_with(64, 48 * 1024, 4);
        let o = occupancy(&k, &gtx_1080_ti());
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn small_blocks_hit_block_cap() {
        let k = kernel_with(32, 0, 4);
        let o = occupancy(&k, &gtx_1080_ti());
        assert_eq!(o.limiter, Limiter::BlockCap);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.warps_per_sm, 32);
    }

    #[test]
    fn oversubscribed_shared_memory_is_infeasible() {
        // one block demands more shared memory than the whole SM owns:
        // must be reported as zero resident blocks, not clamped to one
        let dev = gtx_1080_ti();
        let k = kernel_with(64, dev.shared_mem_per_sm_kb * 1024 + 1, 4);
        let o = occupancy(&k, &dev);
        assert!(!o.feasible());
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.warps_per_sm, 0);
        assert_eq!(o.occupancy, 0.0);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn oversubscribed_registers_are_infeasible() {
        // a single block's register file demand exceeds the SM's budget
        let dev = gtx_1080_ti();
        let regs_per_thread = dev.registers_per_sm / 1024 + 1;
        let k = kernel_with(1024, 0, regs_per_thread);
        let o = occupancy(&k, &dev);
        assert!(!o.feasible());
        assert_eq!(o.blocks_per_sm, 0);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn gemm_template_has_decent_occupancy() {
        let k = ptx_codegen::Template::GemmTiled.build();
        let o = occupancy(&k, &gtx_1080_ti());
        assert!(o.occupancy >= 0.25, "{:?}", o);
    }
}
