//! GPGPU architectural specifications — the hardware-feature predictors of
//! the paper (CUDA cores, memory bandwidth, L2 cache, clocks, registers).
//!
//! The database covers the devices the paper profiles (GTX 1080 Ti, V100S,
//! Quadro P1000) plus five more spanning Pascal through Ampere, enabling the
//! Table IV `n = 1..7` sweep and hold-one-GPU-out cross-platform
//! experiments.

use serde::{Deserialize, Serialize};

/// Static description of one GPGPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 CUDA cores per SM.
    pub cores_per_sm: u32,
    pub base_clock_mhz: u32,
    pub boost_clock_mhz: u32,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    pub l2_cache_kb: u32,
    pub mem_bus_bits: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    pub shared_mem_per_sm_kb: u32,
    pub max_warps_per_sm: u32,
    pub max_blocks_per_sm: u32,
    /// Special-function units per SM.
    pub sfu_per_sm: u32,
    /// Load/store units per SM.
    pub lsu_per_sm: u32,
    pub warp_schedulers_per_sm: u32,
    pub compute_capability: (u32, u32),
    /// Average DRAM access latency in core cycles.
    pub dram_latency_cycles: u32,
}

impl DeviceSpec {
    /// Total CUDA cores.
    pub fn cuda_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak FP32 TFLOPS at boost clock (2 ops per FMA).
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.cuda_cores() as f64 * self.boost_clock_mhz as f64 * 1e6 / 1e12
    }

    /// `sm_NN` target string for the PTX module header.
    pub fn sm_target(&self) -> String {
        format!(
            "sm_{}{}",
            self.compute_capability.0, self.compute_capability.1
        )
    }

    /// DRAM bytes deliverable per core cycle (whole chip).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9 / (self.boost_clock_mhz as f64 * 1e6)
    }

    /// A copy with scaled core clocks (dynamic frequency scaling — the
    /// paper's future-work item).
    pub fn with_clock_scale(&self, factor: f64) -> DeviceSpec {
        let mut s = self.clone();
        s.base_clock_mhz = (s.base_clock_mhz as f64 * factor) as u32;
        s.boost_clock_mhz = (s.boost_clock_mhz as f64 * factor) as u32;
        s.name = format!("{}@x{:.2}", s.name, factor);
        s
    }

    /// The (name, value) feature vector used as GPGPU predictors in the
    /// training dataset — the `c_1..c_m` of the paper's Eq. (1): the
    /// architectural quantities the paper names (memory bandwidth, CUDA
    /// cores, base frequency, L2 cache). With two training devices every
    /// GPU feature separates them equally well; split tie-breaks resolve
    /// to the first feature, so bandwidth leads the list as in the paper's
    /// Table III.
    pub fn features(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("mem_bandwidth_gbs", self.mem_bandwidth_gbs),
            ("cuda_cores", self.cuda_cores() as f64),
            ("base_clock_mhz", self.base_clock_mhz as f64),
            ("l2_cache_kb", self.l2_cache_kb as f64),
        ]
    }

    /// The extended feature vector (every modeled architectural quantity) —
    /// used by the feature-set ablation.
    pub fn features_extended(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("sm_count", self.sm_count as f64),
            ("cuda_cores", self.cuda_cores() as f64),
            ("base_clock_mhz", self.base_clock_mhz as f64),
            ("boost_clock_mhz", self.boost_clock_mhz as f64),
            ("mem_bandwidth_gbs", self.mem_bandwidth_gbs),
            ("l2_cache_kb", self.l2_cache_kb as f64),
            ("mem_bus_bits", self.mem_bus_bits as f64),
            ("registers_per_sm", self.registers_per_sm as f64),
            ("shared_mem_per_sm_kb", self.shared_mem_per_sm_kb as f64),
            ("peak_tflops", self.peak_tflops()),
        ]
    }
}

#[allow(clippy::too_many_arguments)]
fn spec(
    name: &str,
    sm_count: u32,
    cores_per_sm: u32,
    base: u32,
    boost: u32,
    bw: f64,
    l2_kb: u32,
    bus: u32,
    cc: (u32, u32),
) -> DeviceSpec {
    DeviceSpec {
        name: name.to_string(),
        sm_count,
        cores_per_sm,
        base_clock_mhz: base,
        boost_clock_mhz: boost,
        mem_bandwidth_gbs: bw,
        l2_cache_kb: l2_kb,
        mem_bus_bits: bus,
        registers_per_sm: 65_536,
        shared_mem_per_sm_kb: 96,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        sfu_per_sm: if cores_per_sm >= 128 { 32 } else { 16 },
        lsu_per_sm: 32,
        warp_schedulers_per_sm: 4,
        compute_capability: cc,
        dram_latency_cycles: if cc.0 >= 7 { 400 } else { 350 },
    }
}

/// The two training GPUs of the paper.
pub fn training_devices() -> Vec<DeviceSpec> {
    vec![gtx_1080_ti(), v100s()]
}

/// All modeled devices (eight, used for the Table IV `n = 1..7` sweep and
/// cross-platform experiments).
pub fn all_devices() -> Vec<DeviceSpec> {
    vec![
        gtx_1080_ti(),
        v100s(),
        quadro_p1000(),
        titan_xp(),
        rtx_2080_ti(),
        tesla_t4(),
        a100(),
        gtx_1050_ti(),
    ]
}

/// Look up a device by name (case-insensitive).
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    all_devices()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// NVIDIA GeForce GTX 1080 Ti (Pascal, GP102).
pub fn gtx_1080_ti() -> DeviceSpec {
    spec("GTX 1080 Ti", 28, 128, 1481, 1582, 484.0, 2816, 352, (6, 1))
}

/// NVIDIA Tesla V100S PCIe 32 GB (Volta, GV100).
pub fn v100s() -> DeviceSpec {
    spec("V100S", 80, 64, 1245, 1597, 1134.0, 6144, 4096, (7, 0))
}

/// NVIDIA Quadro P1000 (Pascal, GP107).
pub fn quadro_p1000() -> DeviceSpec {
    spec("Quadro P1000", 5, 128, 1266, 1480, 82.0, 1024, 128, (6, 1))
}

/// NVIDIA Titan Xp (Pascal, GP102).
pub fn titan_xp() -> DeviceSpec {
    spec("Titan Xp", 30, 128, 1405, 1582, 547.6, 3072, 384, (6, 1))
}

/// NVIDIA GeForce RTX 2080 Ti (Turing, TU102).
pub fn rtx_2080_ti() -> DeviceSpec {
    spec("RTX 2080 Ti", 68, 64, 1350, 1545, 616.0, 5632, 352, (7, 5))
}

/// NVIDIA Tesla T4 (Turing, TU104).
pub fn tesla_t4() -> DeviceSpec {
    spec("Tesla T4", 40, 64, 585, 1590, 320.0, 4096, 256, (7, 5))
}

/// NVIDIA A100 PCIe 40 GB (Ampere, GA100).
pub fn a100() -> DeviceSpec {
    spec("A100", 108, 64, 765, 1410, 1555.0, 40_960, 5120, (8, 0))
}

/// NVIDIA GeForce GTX 1050 Ti (Pascal, GP107).
pub fn gtx_1050_ti() -> DeviceSpec {
    spec("GTX 1050 Ti", 6, 128, 1290, 1392, 112.1, 1024, 128, (6, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_covers_paper_devices() {
        assert!(device_by_name("GTX 1080 Ti").is_some());
        assert!(device_by_name("V100S").is_some());
        assert!(device_by_name("Quadro P1000").is_some());
        assert_eq!(all_devices().len(), 8);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<String> = all_devices().into_iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn known_totals() {
        assert_eq!(gtx_1080_ti().cuda_cores(), 3584);
        assert_eq!(v100s().cuda_cores(), 5120);
        assert_eq!(quadro_p1000().cuda_cores(), 640);
        // 1080 Ti peak ~11.3 TFLOPS
        let t = gtx_1080_ti().peak_tflops();
        assert!((11.0..11.7).contains(&t), "{t}");
        // V100S ~16.4 TFLOPS
        let t = v100s().peak_tflops();
        assert!((16.0..16.7).contains(&t), "{t}");
    }

    #[test]
    fn sm_target_strings() {
        assert_eq!(gtx_1080_ti().sm_target(), "sm_61");
        assert_eq!(v100s().sm_target(), "sm_70");
        assert_eq!(a100().sm_target(), "sm_80");
    }

    #[test]
    fn clock_scaling() {
        let d = gtx_1080_ti().with_clock_scale(0.5);
        assert_eq!(d.boost_clock_mhz, 791);
        assert!(d.name.contains("@x0.50"));
    }

    #[test]
    fn feature_vector_is_stable() {
        let f = gtx_1080_ti().features();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].0, "mem_bandwidth_gbs");
        assert_eq!(f[0].1, 484.0);
        assert_eq!(gtx_1080_ti().features_extended().len(), 10);
    }
}
