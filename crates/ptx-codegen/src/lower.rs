//! Lowering a [`cnn_ir::ModelGraph`] to a PTX [`LaunchPlan`]: one ordered
//! kernel-launch sequence per forward pass (batch 1), with realistic grid
//! sizes, parameter values and global-memory traffic accounting.

use crate::templates::{self, Template, BLOCK, TILE};
use cnn_ir::{ActKind, GraphError, Layer, ModelGraph, PoolKind, TensorShape};
use ptx::kernel::{KernelLaunch, LaunchPlan, Module};

/// Base of the synthetic device-memory arena used for tensor addresses.
const ARENA_BASE: u64 = 0x1000_0000;

struct Lowerer {
    module: Module,
    launches: Vec<KernelLaunch>,
    cursor: u64,
    gemm: GemmVariant,
}

impl Lowerer {
    fn new(target: &str, gemm: GemmVariant) -> Self {
        let mut module = Module::new(target);
        module.kernels = templates::build_all();
        Self {
            module,
            launches: Vec::new(),
            cursor: ARENA_BASE,
            gemm,
        }
    }

    /// Allocate a device buffer of `elems` fp32 values, 256-byte aligned.
    fn alloc(&mut self, elems: u64) -> u64 {
        let addr = self.cursor;
        self.cursor += (elems * 4 + 255) & !255;
        addr
    }

    fn launch(
        &mut self,
        t: Template,
        tag: String,
        threads: u64,
        args: Vec<u64>,
        bytes_read: u64,
        bytes_written: u64,
    ) {
        let blocks = threads.div_ceil(BLOCK as u64);
        assert!(blocks <= u32::MAX as u64, "grid overflow in {tag}");
        self.launches.push(KernelLaunch {
            kernel: templates::template_index(t),
            tag,
            grid: (blocks as u32, 1, 1),
            args,
            bytes_read,
            bytes_written,
        });
    }

    /// Single-block launch (softmax reductions).
    fn launch_one_block(
        &mut self,
        t: Template,
        tag: String,
        args: Vec<u64>,
        bytes_read: u64,
        bytes_written: u64,
    ) {
        self.launches.push(KernelLaunch {
            kernel: templates::template_index(t),
            tag,
            grid: (1, 1, 1),
            args,
            bytes_read,
            bytes_written,
        });
    }
}

fn act_template(a: ActKind) -> Option<Template> {
    Some(match a {
        ActKind::Relu => Template::ActRelu,
        ActKind::Relu6 => Template::ActRelu6,
        ActKind::Sigmoid => Template::ActSigmoid,
        ActKind::Tanh => Template::ActTanh,
        ActKind::Swish => Template::ActSwish,
        ActKind::HardSwish => Template::ActHardSwish,
        ActKind::Softmax => return None, // handled as a 3-kernel sequence
    })
}

/// GEMM kernel flavor used by the lowering (codegen ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmVariant {
    /// One thread per output element, 16x16 shared tiles.
    #[default]
    Tiled,
    /// One thread per 2x2 output quad, register microtiling.
    Micro2x2,
}

/// Emit a GEMM (`m x k` times `k x n`) with an optional fused bias
/// (`bias != 0`); traffic model: every block stages `2 * BLOCK` elements
/// per K-tile (both variants stage the same volume — the micro variant
/// just covers 4x the output per block).
#[allow(clippy::too_many_arguments)]
fn emit_gemm(
    lo: &mut Lowerer,
    tag: &str,
    a: u64,
    b: u64,
    c_out: u64,
    m: u64,
    n: u64,
    k: u64,
    bias: u64,
) {
    let tiles = k.div_ceil(TILE as u64);
    let has_bias = u64::from(bias != 0);
    let bias_bytes = if bias != 0 { n * 4 } else { 0 };
    match lo.gemm {
        GemmVariant::Tiled => {
            let threads = m * n;
            let blocks = threads.div_ceil(BLOCK as u64);
            lo.launch(
                Template::GemmTiled,
                format!("{tag}.gemm"),
                threads,
                vec![a, b, c_out, m, n, k, tiles, bias, has_bias],
                blocks * tiles * (2 * BLOCK as u64) * 4 + bias_bytes,
                m * n * 4,
            );
        }
        GemmVariant::Micro2x2 => {
            let nq = n.div_ceil(2);
            let threads = m.div_ceil(2) * nq;
            let blocks = threads.div_ceil(BLOCK as u64);
            lo.launch(
                Template::GemmMicro,
                format!("{tag}.gemm"),
                threads,
                vec![a, b, c_out, m, n, k, tiles, nq, bias, has_bias],
                blocks * tiles * (4 * BLOCK as u64) * 4 + bias_bytes,
                m * n * 4,
            );
        }
    }
}

/// Emit the per-channel affine kernel (BN / GN / conv bias).
fn emit_affine(lo: &mut Lowerer, tag: &str, x: u64, out: u64, n: u64, c: u64) {
    let scale = lo.alloc(c);
    let shift = lo.alloc(c);
    lo.launch(
        Template::AffineCh,
        format!("{tag}.affine"),
        n,
        vec![x, scale, shift, out, n, c],
        (n + 2 * c) * 4,
        n * 4,
    );
}

/// Lower a model at batch size 1 (inference latency, as the paper
/// profiles). The `target` names the PTX target architecture written into
/// the module header (e.g. `sm_61`).
pub fn lower(model: &ModelGraph, target: &str) -> Result<LaunchPlan, GraphError> {
    lower_batched(model, target, 1)
}

/// Lower a model at an explicit batch size (throughput experiments; an
/// extension beyond the paper's batch-1 protocol). Per-sample kernels are
/// batched along the GEMM row dimension / elementwise extent; the softmax
/// reductions are emitted once per sample, as a framework would.
pub fn lower_batched(
    model: &ModelGraph,
    target: &str,
    batch: u32,
) -> Result<LaunchPlan, GraphError> {
    lower_with(model, target, batch, GemmVariant::default())
}

/// Fully parameterized lowering: batch size and GEMM kernel variant.
pub fn lower_with(
    model: &ModelGraph,
    target: &str,
    batch: u32,
    gemm: GemmVariant,
) -> Result<LaunchPlan, GraphError> {
    assert!(batch >= 1, "batch must be positive");
    let shapes = model.infer_shapes()?;
    let mut lo = Lowerer::new(target, gemm);
    let batch = batch as u64;

    // device address of every node's output tensor
    let mut addr: Vec<u64> = Vec::with_capacity(model.len());

    for node in model.nodes() {
        let out_shape = shapes[node.id.index()];
        // all buffers and launch extents scale with the batch dimension
        let out_elems = out_shape.elements() * batch;
        let in_shapes: Vec<TensorShape> = node.inputs.iter().map(|i| shapes[i.index()]).collect();
        let in_addrs: Vec<u64> = node.inputs.iter().map(|i| addr[i.index()]).collect();
        let tag = node.name.clone();

        let out_addr = match &node.layer {
            Layer::Input { .. } => lo.alloc(out_elems),

            Layer::Conv2d(c) => {
                let i = in_shapes[0];
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let (kh, kw) = c.kernel;
                let (sh, sw) = c.stride;
                let m = out_shape.h as u64 * out_shape.w as u64 * batch;
                let window = kh as u64 * kw as u64;
                let k_full = window * i.c as u64;

                // 1x1 stride-1 convolutions read the input as the GEMM A
                // matrix directly; everything else goes through im2col.
                let a_matrix = if kh == 1 && kw == 1 && sh == 1 && sw == 1 {
                    x
                } else {
                    let cols = lo.alloc(m * k_full);
                    let total = m * i.c as u64;
                    let pad_t = c.padding.pad_h(i.h, kh, sh) / 2;
                    let pad_l = c.padding.pad_w(i.w, kw, sw) / 2;
                    lo.launch(
                        Template::Im2col,
                        format!("{tag}.im2col"),
                        total,
                        vec![
                            x,
                            cols,
                            total,
                            window,
                            i.c as u64,
                            i.w as u64,
                            out_shape.h as u64,
                            out_shape.w as u64,
                            kw as u64,
                            sh as u64,
                            sw as u64,
                            pad_t as u64,
                            pad_l as u64,
                            i.h as u64,
                        ],
                        total * window * 4,
                        m * k_full * 4,
                    );
                    cols
                };

                // grouped convolution: one GEMM per group over column and
                // output slices; conv bias fuses into the GEMM epilogue
                let g = c.groups as u64;
                let weights = lo.alloc(k_full * c.out_channels as u64);
                let bias = if c.use_bias {
                    lo.alloc(c.out_channels as u64)
                } else {
                    0
                };
                if g == 1 {
                    emit_gemm(
                        &mut lo,
                        &tag,
                        a_matrix,
                        weights,
                        out,
                        m,
                        c.out_channels as u64,
                        k_full,
                        bias,
                    );
                } else {
                    let kg = k_full / g;
                    let ng = c.out_channels as u64 / g;
                    for gi in 0..g {
                        emit_gemm(
                            &mut lo,
                            &format!("{tag}.g{gi}"),
                            a_matrix + gi * kg * 4,
                            weights + gi * kg * ng * 4,
                            out + gi * ng * 4,
                            m,
                            ng,
                            kg,
                            if bias != 0 { bias + gi * ng * 4 } else { 0 },
                        );
                    }
                }
                out
            }

            Layer::DepthwiseConv2d(c) => {
                assert_eq!(
                    c.multiplier, 1,
                    "depthwise multiplier > 1 not lowered (unused by the zoo)"
                );
                let i = in_shapes[0];
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let (kh, kw) = c.kernel;
                let (sh, sw) = c.stride;
                let window = kh as u64 * kw as u64;
                let weights = lo.alloc(window * i.c as u64);
                let bias = if c.use_bias {
                    lo.alloc(out_shape.c as u64)
                } else {
                    0
                };
                let pad_t = c.padding.pad_h(i.h, kh, sh) / 2;
                let pad_l = c.padding.pad_w(i.w, kw, sw) / 2;
                lo.launch(
                    Template::Depthwise,
                    format!("{tag}.dw"),
                    out_elems,
                    vec![
                        x,
                        weights,
                        out,
                        out_elems,
                        window,
                        i.c as u64,
                        i.w as u64,
                        out_shape.w as u64,
                        kw as u64,
                        sh as u64,
                        sw as u64,
                        pad_t as u64,
                        pad_l as u64,
                        i.h as u64,
                        bias,
                        u64::from(bias != 0),
                    ],
                    out_elems * window * 2 * 4,
                    out_elems * 4,
                );
                out
            }

            Layer::Dense(d) => {
                let k = in_shapes[0].elements();
                let units = d.units as u64;
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let weights = lo.alloc(units * k);
                let bias = if d.use_bias { lo.alloc(units) } else { 0 };
                if batch == 1 {
                    lo.launch(
                        Template::Gemv,
                        format!("{tag}.gemv"),
                        units,
                        vec![weights, x, out, units, k, bias, u64::from(bias != 0)],
                        (units * k + k) * 4,
                        units * 4,
                    );
                } else {
                    // batched dense = GEMM: [batch, k] x [k, units]
                    emit_gemm(&mut lo, &tag, x, weights, out, batch, units, k, bias);
                }
                out
            }

            Layer::Pool2d(p) => {
                let i = in_shapes[0];
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let (kh, kw) = p.pool;
                let (sh, sw) = p.stride;
                let window = kh as u64 * kw as u64;
                let t = match p.kind {
                    PoolKind::Max => Template::PoolMax,
                    PoolKind::Avg => Template::PoolAvg,
                };
                let pad_t = p.padding.pad_h(i.h, kh, sh) / 2;
                let pad_l = p.padding.pad_w(i.w, kw, sw) / 2;
                let inv = (1.0f32 / window as f32).to_bits() as u64;
                lo.launch(
                    t,
                    format!("{tag}.pool"),
                    out_elems,
                    vec![
                        x,
                        out,
                        out_elems,
                        window,
                        i.c as u64,
                        i.w as u64,
                        out_shape.w as u64,
                        kw as u64,
                        sh as u64,
                        sw as u64,
                        pad_t as u64,
                        pad_l as u64,
                        i.h as u64,
                        inv,
                    ],
                    out_elems * window * 4,
                    out_elems * 4,
                );
                out
            }

            Layer::GlobalPool { kind } => {
                let i = in_shapes[0];
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let hw = i.h as u64 * i.w as u64;
                let c = i.c as u64 * batch;
                let t = match kind {
                    PoolKind::Avg => Template::GapAvg,
                    PoolKind::Max => Template::GapMax,
                };
                let inv = (1.0f32 / hw as f32).to_bits() as u64;
                lo.launch(
                    t,
                    format!("{tag}.gap"),
                    c,
                    vec![x, out, c, hw, inv],
                    c * hw * 4,
                    c * 4,
                );
                out
            }

            Layer::BatchNorm(_) | Layer::GroupNorm { .. } => {
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                emit_affine(&mut lo, &tag, x, out, out_elems, out_shape.c as u64);
                out
            }

            Layer::Activation(a) => {
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                match act_template(*a) {
                    Some(t) => {
                        lo.launch(
                            t,
                            format!("{tag}.act"),
                            out_elems,
                            vec![x, out, out_elems],
                            out_elems * 4,
                            out_elems * 4,
                        );
                    }
                    None => {
                        // softmax: max-reduce, exp+sum, divide (per sample)
                        let n = out_shape.elements();
                        let expv = lo.alloc(n * batch);
                        for s in 0..batch {
                            let off = s * n * 4;
                            let mx = lo.alloc(1);
                            let sum = lo.alloc(1);
                            lo.launch_one_block(
                                Template::SoftmaxMax,
                                format!("{tag}.softmax_max"),
                                vec![x + off, 0, 0, mx, n],
                                n * 4,
                                4,
                            );
                            lo.launch_one_block(
                                Template::SoftmaxExpSum,
                                format!("{tag}.softmax_expsum"),
                                vec![x + off, mx, expv + off, sum, n],
                                n * 4 + 4,
                                n * 4 + 4,
                            );
                            lo.launch(
                                Template::SoftmaxDiv,
                                format!("{tag}.softmax_div"),
                                n,
                                vec![expv + off, sum, out + off, n],
                                n * 4 + 4,
                                n * 4,
                            );
                        }
                    }
                }
                out
            }

            Layer::Add => {
                let out = lo.alloc(out_elems);
                let mut acc = in_addrs[0];
                for (j, &b) in in_addrs[1..].iter().enumerate() {
                    lo.launch(
                        Template::EwAdd,
                        format!("{tag}.add{j}"),
                        out_elems,
                        vec![acc, b, out, out_elems],
                        2 * out_elems * 4,
                        out_elems * 4,
                    );
                    acc = out;
                }
                out
            }

            Layer::Multiply => {
                let out = lo.alloc(out_elems);
                let (a_sh, b_sh) = (in_shapes[0], in_shapes[1]);
                // channel-broadcast gating (SE blocks) vs plain elementwise
                if a_sh == b_sh {
                    lo.launch(
                        Template::EwMul,
                        format!("{tag}.mul"),
                        out_elems,
                        vec![in_addrs[0], in_addrs[1], out, out_elems],
                        2 * out_elems * 4,
                        out_elems * 4,
                    );
                } else {
                    let (full, gate) = if b_sh.is_flat() {
                        (0usize, 1usize)
                    } else {
                        (1, 0)
                    };
                    lo.launch(
                        Template::EwMulBcast,
                        format!("{tag}.se_mul"),
                        out_elems,
                        vec![
                            in_addrs[full],
                            in_addrs[gate],
                            out,
                            out_elems,
                            out_shape.c as u64,
                        ],
                        (out_elems + out_shape.c as u64) * 4,
                        out_elems * 4,
                    );
                }
                out
            }

            Layer::Concat => {
                let out = lo.alloc(out_elems);
                let rows = out_shape.h as u64 * out_shape.w as u64;
                let out_row = out_shape.c as u64;
                let mut ch_off = 0u64;
                for (j, (&x, sh)) in in_addrs.iter().zip(&in_shapes).enumerate() {
                    let n = sh.elements() * batch;
                    let row = sh.c as u64;
                    lo.launch(
                        Template::PadCopy,
                        format!("{tag}.concat{j}"),
                        n,
                        vec![x, out, n, row, out_row, ch_off],
                        n * 4,
                        n * 4,
                    );
                    ch_off += row;
                }
                debug_assert_eq!(rows * out_row, out_elems);
                out
            }

            Layer::ZeroPad {
                top,
                bottom: _,
                left,
                right: _,
            } => {
                let i = in_shapes[0];
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                lo.launch(
                    Template::FillF32,
                    format!("{tag}.fill"),
                    out_elems,
                    vec![out, out_elems, 0],
                    0,
                    out_elems * 4,
                );
                let n = i.elements() * batch;
                let row = i.w as u64 * i.c as u64;
                let out_row = out_shape.w as u64 * out_shape.c as u64;
                let dst_off = *top as u64 * out_row + *left as u64 * i.c as u64;
                lo.launch(
                    Template::PadCopy,
                    format!("{tag}.copy"),
                    n,
                    vec![x, out, n, row, out_row, dst_off],
                    n * 4,
                    n * 4,
                );
                out
            }

            Layer::ChannelShuffle { .. } => {
                // a permuted copy: identical instruction structure to the
                // strided copy kernel (per-element index arithmetic + move)
                let x = in_addrs[0];
                let out = lo.alloc(out_elems);
                let c = out_shape.c as u64;
                lo.launch(
                    Template::PadCopy,
                    format!("{tag}.shuffle"),
                    out_elems,
                    vec![x, out, out_elems, c, c, 0],
                    out_elems * 4,
                    out_elems * 4,
                );
                out
            }

            // shape-only ops: no kernel, alias the input buffer
            Layer::Flatten | Layer::Dropout { .. } => in_addrs[0],
        };
        addr.push(out_addr);
    }

    Ok(LaunchPlan {
        model_name: model.name().to_string(),
        module: lo.module,
        launches: lo.launches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_ir::{Conv2d, Dense, GraphBuilder, Padding, Pool2d};

    fn tiny() -> ModelGraph {
        let mut b = GraphBuilder::new("tiny", 3);
        let x = b.input(TensorShape::square(8, 3));
        let x = b.layer(Layer::Conv2d(Conv2d::new(4, 3, 1, Padding::Same)), &[x]);
        let x = b.layer(Layer::Activation(ActKind::Relu), &[x]);
        let x = b.layer(Layer::Pool2d(Pool2d::max(2, 2, Padding::Valid)), &[x]);
        let x = b.layer(Layer::Flatten, &[x]);
        let x = b.layer(Layer::Dense(Dense::new(10)), &[x]);
        let x = b.layer(Layer::Activation(ActKind::Softmax), &[x]);
        b.finish(x)
    }

    #[test]
    fn tiny_plan_launch_sequence() {
        let plan = lower(&tiny(), "sm_61").unwrap();
        let tags: Vec<&str> = plan.launches.iter().map(|l| l.tag.as_str()).collect();
        // conv -> im2col + gemm (bias fused); relu; pool; gemv (bias
        // fused); softmax x3
        assert!(tags[0].ends_with(".im2col"), "{tags:?}");
        assert!(tags[1].ends_with(".gemm"));
        assert!(tags[2].ends_with(".act"));
        assert!(tags[3].ends_with(".pool"));
        assert!(tags[4].ends_with(".gemv"));
        assert!(tags[5].ends_with(".softmax_max"));
        assert!(tags[6].ends_with(".softmax_expsum"));
        assert!(tags[7].ends_with(".softmax_div"));
        assert_eq!(plan.launches.len(), 8);
        // the gemm carries a live bias pointer
        let gemm = &plan.launches[1];
        assert_ne!(gemm.args[7], 0, "bias pointer");
        assert_eq!(gemm.args[8], 1, "has_bias flag");
    }

    #[test]
    fn one_by_one_conv_skips_im2col() {
        let mut b = GraphBuilder::new("pw", 1);
        let x = b.input(TensorShape::square(8, 16));
        let x = b.layer(
            Layer::Conv2d(Conv2d::new(32, 1, 1, Padding::Same).no_bias()),
            &[x],
        );
        let g = b.finish(x);
        let plan = lower(&g, "sm_61").unwrap();
        assert_eq!(plan.launches.len(), 1);
        assert!(plan.launches[0].tag.ends_with(".gemm"));
    }

    #[test]
    fn grouped_conv_emits_per_group_gemms() {
        let mut b = GraphBuilder::new("grp", 1);
        let x = b.input(TensorShape::square(8, 16));
        let mut conv = Conv2d::new(32, 3, 1, Padding::Same).no_bias();
        conv.groups = 2;
        let x = b.layer(Layer::Conv2d(conv), &[x]);
        let g = b.finish(x);
        let plan = lower(&g, "sm_61").unwrap();
        let gemms = plan
            .launches
            .iter()
            .filter(|l| l.tag.contains(".g"))
            .count();
        assert_eq!(gemms, 2);
    }

    #[test]
    fn gemm_args_are_consistent() {
        let plan = lower(&tiny(), "sm_61").unwrap();
        let gemm = plan
            .launches
            .iter()
            .find(|l| l.tag.ends_with(".gemm"))
            .unwrap();
        // args: a, b, c_out, m, n, k, tiles
        let (m, n, k, tiles) = (gemm.args[3], gemm.args[4], gemm.args[5], gemm.args[6]);
        assert_eq!(m, 64); // 8x8 output pixels
        assert_eq!(n, 4);
        assert_eq!(k, 27); // 3x3x3
        assert_eq!(tiles, 2);
        let kernel = &plan.module.kernels[gemm.kernel];
        assert_eq!(kernel.name, "k_gemm_tiled_f32");
    }

    #[test]
    fn launch_plan_for_resnet50_is_substantial() {
        let model = cnn_ir::zoo::build("resnet50").unwrap();
        let plan = lower(&model, "sm_61").unwrap();
        assert!(plan.launches.len() > 150, "{}", plan.launches.len());
        assert!(plan.total_threads() > 10_000_000);
        assert!(plan.total_bytes() > 100_000_000);
    }

    #[test]
    fn every_zoo_model_lowers() {
        for e in cnn_ir::zoo::all() {
            let g = (e.build)();
            let plan = lower(&g, "sm_61").unwrap();
            assert!(!plan.launches.is_empty(), "{} produced no launches", e.name);
            // all kernel indices valid
            for l in &plan.launches {
                assert!(l.kernel < plan.module.kernels.len());
            }
        }
    }

    #[test]
    fn flatten_and_dropout_are_free() {
        let plan = lower(&tiny(), "sm_61").unwrap();
        assert!(!plan.launches.iter().any(|l| l.tag.contains("flatten")));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use cnn_ir::zoo;

    #[test]
    fn batch_scales_threads_roughly_linearly() {
        let model = zoo::build("mobilenet").unwrap();
        let b1 = lower_batched(&model, "sm_61", 1).unwrap();
        let b8 = lower_batched(&model, "sm_61", 8).unwrap();
        let t1 = b1.total_threads();
        let t8 = b8.total_threads();
        assert!(
            t8 > 7 * t1 && t8 < 9 * t1,
            "batch-8 threads {t8} not ~8x batch-1 {t1}"
        );
    }

    #[test]
    fn batch_one_equals_default_lowering() {
        let model = zoo::build("alexnet").unwrap();
        let a = lower(&model, "sm_61").unwrap();
        let b = lower_batched(&model, "sm_61", 1).unwrap();
        assert_eq!(a.launches.len(), b.launches.len());
        assert_eq!(a.total_threads(), b.total_threads());
    }

    #[test]
    fn batched_dense_uses_gemm() {
        let model = zoo::build("vgg16").unwrap();
        let plan = lower_batched(&model, "sm_61", 4).unwrap();
        let dense_launches: Vec<&str> = plan
            .launches
            .iter()
            .filter(|l| l.tag.starts_with("dense"))
            .map(|l| l.tag.as_str())
            .collect();
        assert!(
            dense_launches.iter().any(|t| t.ends_with(".gemm")),
            "batched dense should lower to GEMM: {dense_launches:?}"
        );
        assert!(!dense_launches.iter().any(|t| t.ends_with(".gemv")));
    }

    #[test]
    fn softmax_emitted_per_sample() {
        let model = zoo::build("alexnet").unwrap();
        let plan = lower_batched(&model, "sm_61", 3).unwrap();
        let n = plan
            .launches
            .iter()
            .filter(|l| l.tag.ends_with(".softmax_max"))
            .count();
        assert_eq!(n, 3);
    }
}

#[cfg(test)]
mod gemm_variant_tests {
    use super::*;
    use cnn_ir::zoo;

    #[test]
    fn micro_variant_quarters_gemm_threads() {
        let model = zoo::build("resnet50").unwrap();
        let tiled = lower_with(&model, "sm_61", 1, GemmVariant::Tiled).unwrap();
        let micro = lower_with(&model, "sm_61", 1, GemmVariant::Micro2x2).unwrap();
        let gemm_threads = |plan: &ptx::kernel::LaunchPlan, name: &str| -> u64 {
            plan.launches
                .iter()
                .filter(|l| plan.module.kernels[l.kernel].name == name)
                .map(|l| l.blocks() * 256)
                .sum()
        };
        let t = gemm_threads(&tiled, "k_gemm_tiled_f32");
        let m = gemm_threads(&micro, "k_gemm_micro2x2_f32");
        assert!(t > 0 && m > 0);
        assert!(m * 3 < t, "micro threads {m} should be ~1/4 of tiled {t}");
    }

    #[test]
    fn micro_kernel_counts_and_verifies() {
        let k = Template::GemmMicro.build();
        assert!(ptx::verify::verify_kernel(&k).is_empty());
        // exact count equivalence on an odd-edged GEMM
        let l = KernelLaunch {
            kernel: 0,
            tag: "t".into(),
            grid: (1, 1, 1),
            args: vec![0x1000, 0x2000, 0x3000, 7, 11, 40, 3, 6, 0x9000, 1],
            bytes_read: 0,
            bytes_written: 0,
        };
        let fast = ptx_analysis::count_launch(&k, &l, true).unwrap();
        let brute = ptx_analysis::count_launch_bruteforce(&k, &l).unwrap();
        assert_eq!(fast.thread_instructions, brute.thread_instructions);
        assert_eq!(fast.warp_issues, brute.warp_issues);
    }

    #[test]
    fn micro_variant_reduces_total_instructions() {
        // fewer threads doing denser work: total PTX instructions drop
        let model = zoo::build("mobilenet").unwrap();
        let tiled = lower_with(&model, "sm_61", 1, GemmVariant::Tiled).unwrap();
        let micro = lower_with(&model, "sm_61", 1, GemmVariant::Micro2x2).unwrap();
        let ct = ptx_analysis::count_plan(&tiled, true).unwrap();
        let cm = ptx_analysis::count_plan(&micro, true).unwrap();
        assert!(
            cm.thread_instructions < ct.thread_instructions,
            "micro {} !< tiled {}",
            cm.thread_instructions,
            ct.thread_instructions
        );
    }
}
